"""What-if grids: a parameter lattice of scenario specs, run and cached.

A :class:`GridSpec` is a base :class:`~repro.scenarios.spec.ScenarioSpec`
plus *axes* — dotted knob paths mapped to value lists, e.g.::

    axes = {"fabric_year": [2013, 2014, 2015, 2016, 2017],
            "hazard.CORE": [1.0, 1.5, 2.0]}

Expansion takes the cartesian product (axes in sorted-path order,
values in the given order) and applies each combination to the base
spec's canonical payload, re-validating through the strict loader — a
typo'd axis path fails exactly like a typo'd spec file.

:class:`GridRunner` runs each cell through the existing
:class:`~repro.runtime.executor.Executor` (any backend, sharded and
columnar included) and keys the :class:`~repro.runtime.ResultCache` on
the **cell spec digest**, so re-running a sweep is all cache hits and
overlapping grids share cells.  Per-cell results carry the cell's spec
digest and its report digest; the grid's ``summary_digest`` hashes the
ordered (spec digest, report digest) pairs, so two runs agree on an
entire sweep with one comparison — including runs that survived a
crashed cell, which is retried once and then re-run with the
``grid.cell`` fault site suppressed (the eighth chaos drill).
"""

from __future__ import annotations

import copy
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.scenarios.spec import (
    ScenarioError,
    ScenarioSpec,
    canonical_spec_json,
    spec_from_dict,
)

__all__ = [
    "GRID_FORMAT",
    "GridCell",
    "GridRunner",
    "GridSpec",
    "grid_diff",
]

#: Format tag of the grid report payload.
GRID_FORMAT = "repro.grid-report/1"


@dataclass(frozen=True)
class GridCell:
    """One lattice point: the base spec with one axis combination."""

    index: int
    overrides: Dict[str, Any]
    spec: ScenarioSpec


def _apply_override(payload: Dict[str, Any], path: str, value: Any,
                    source: str) -> None:
    """Set one dotted knob path in a raw spec payload."""
    parts = path.split(".")
    node = payload
    for depth, part in enumerate(parts[:-1]):
        child = node.get(part)
        if child is None:
            child = {}
            node[part] = child
        if not isinstance(child, dict):
            raise ScenarioError(
                "axis path descends into a non-object knob",
                source, ".".join(parts[: depth + 1]),
            )
        node = child
    node[parts[-1]] = value


@dataclass(frozen=True)
class GridSpec:
    """A base scenario spec swept along axes of knob values."""

    base: ScenarioSpec
    axes: Dict[str, List[Any]]

    def __post_init__(self) -> None:
        if not self.axes:
            raise ScenarioError("a grid needs at least one axis",
                                "<grid>", "axes")
        for path, values in self.axes.items():
            if not isinstance(values, (list, tuple)) or not values:
                raise ScenarioError(
                    "axis must map to a non-empty list of values",
                    "<grid>", f"axes.{path}",
                )
        # Fail fast on a bad axis path or value: expansion validates
        # every cell through the strict spec loader.
        self.cells()

    @property
    def axis_paths(self) -> List[str]:
        return sorted(self.axes)

    def cell_count(self) -> int:
        count = 1
        for values in self.axes.values():
            count *= len(values)
        return count

    def cells(self) -> List[GridCell]:
        """Expand the lattice, sorted-path-major, given value order."""
        combos: List[Dict[str, Any]] = [{}]
        for path in self.axis_paths:
            combos = [
                {**combo, path: value}
                for combo in combos
                for value in self.axes[path]
            ]
        cells = []
        for index, overrides in enumerate(combos):
            payload = self.base.to_dict()
            for path, value in overrides.items():
                _apply_override(payload, path, value, "<grid>")
            spec = spec_from_dict(payload, source=f"<grid cell {index}>")
            cells.append(GridCell(index=index, overrides=overrides,
                                  spec=spec))
        return cells

    def to_dict(self) -> Dict[str, Any]:
        return {
            "base": self.base.to_dict(),
            "axes": {path: list(self.axes[path])
                     for path in self.axis_paths},
        }

    def digest(self) -> str:
        """Content digest of the whole lattice description."""
        return hashlib.sha256(
            canonical_spec_json(self.to_dict()).encode()
        ).hexdigest()


def _summary_digest(cells: List[Dict[str, Any]]) -> str:
    """Hash the ordered (spec digest, report digest) pairs.

    The grid-level identity: bit-identical cells on any backend — or
    a run that recovered from a crashed cell — summarize identically.
    """
    pairs = [[cell["spec_digest"], cell["report_digest"]]
             for cell in cells]
    return hashlib.sha256(canonical_spec_json(pairs).encode()).hexdigest()


@dataclass
class GridRunner:
    """Run every cell of a grid through the analysis executor.

    ``backend``/``jobs``/``use_processes`` are honored exactly as the
    single-report entry points honor them; ``cache`` (optional) keys
    whole cells on their spec digest — a repeated sweep costs zero
    corpus passes, and the same cache also serves the per-analysis
    entries inside each cell.
    """

    backend: str = "batch"
    jobs: int = 4
    use_processes: bool = False
    cache: Optional[Any] = None
    #: Counters over this runner's lifetime.
    cell_hits: int = field(default=0, init=False)
    cell_misses: int = field(default=0, init=False)
    cell_retries: int = field(default=0, init=False)

    # -- single cells -------------------------------------------------

    def run_cell(self, spec: ScenarioSpec) -> Dict[str, Any]:
        """One cell, standalone: materialize, simulate, analyze.

        The result is a JSON-able record carrying the spec digest and
        the full-report digest; it is what the cache stores, so a grid
        run and a standalone run of the same spec are *the same
        computation* — bit-identical output, shared cache entry.
        """
        from repro.runtime import ResultCache

        key = ResultCache.key(spec.digest(), "grid.cell", self.backend,
                              None, None)
        if self.cache is not None:
            hit, value = self.cache.lookup(key)
            if hit:
                self.cell_hits += 1
                return copy.deepcopy(value)
        self.cell_misses += 1
        result = self._execute_cell_resilient(spec)
        if self.cache is not None:
            self.cache.store(key, result)
        return copy.deepcopy(result)

    def _execute_cell_resilient(self, spec: ScenarioSpec) -> Dict[str, Any]:
        """Execute one cell, surviving a crashed cell worker.

        The recovery contract of the ``grid.cell`` fault site mirrors
        the sharded fold's: a crashed cell is retried once, and a
        second crash re-runs the cell with the site suppressed.  Every
        attempt starts from a fresh simulation, so the recovered
        result — and therefore the grid summary digest — is
        bit-identical to a healthy run's.
        """
        from repro.faultline import hooks
        from repro.faultline.plan import GridCellCrash

        for attempt in range(2):
            try:
                if hooks.fire("grid.cell"):
                    raise GridCellCrash("injected grid-cell crash")
                return self._execute_cell(spec)
            except GridCellCrash:
                self.cell_retries += 1
                continue
        with hooks.suppressed("grid.cell"):
            return self._execute_cell(spec)

    def _execute_cell(self, spec: ScenarioSpec) -> Dict[str, Any]:
        if spec.kind == "backbone":
            return self._execute_backbone_cell(spec)
        return self._execute_intra_cell(spec)

    def _execute_intra_cell(self, spec: ScenarioSpec) -> Dict[str, Any]:
        from repro.faultline.oracle import report_digest
        from repro.runtime import RunContext, run_intra_report
        from repro.simulation.generator import IntraSimulator
        from repro.topology.devices import DeviceType, NetworkDesign

        scenario = spec.materialize()
        store = IntraSimulator(scenario).run()
        context = RunContext(
            store=store, fleet=scenario.fleet, corpus_seed=scenario.seed,
            scenario_digest=scenario.spec_digest,
        )
        report = run_intra_report(
            context, backend=self.backend, jobs=self.jobs,
            use_processes=self.use_processes, cache=self.cache,
        )
        last = report.last_year
        fabric = sum(
            report.designs.count(year, NetworkDesign.FABRIC)
            for year in report.designs.years
        )
        cluster = sum(
            report.designs.count(year, NetworkDesign.CLUSTER)
            for year in report.designs.years
        )
        record = {
            "kind": "intra",
            "name": spec.name,
            "spec_digest": spec.digest(),
            "report_digest": report_digest(report),
            "metrics": {
                "rows": len(store),
                "growth": report.growth,
                "last_year": last,
                "csa_rate_last": report.rates.rate(last, DeviceType.CSA),
                "rsw_rate_last": report.rates.rate(last, DeviceType.RSW),
                "fabric_incidents": fabric,
                "cluster_incidents": cluster,
            },
        }
        if spec.correlated is not None:
            self._add_survivability(record, spec, scenario)
        return record

    def _add_survivability(self, record: Dict[str, Any],
                           spec: ScenarioSpec, scenario) -> None:
        """Ride the survivability workload along an intra cell.

        A cell with a ``correlated`` block also runs the trial corpus
        (a pure function of the cell's seed and knobs) through the
        same backend; its digest folds into the cell's report digest,
        so the grid summary digest covers survivability too and the
        correlated knobs are sweepable axes like any other.
        """
        from repro.faultline.oracle import report_digest
        from repro.runtime import RunContext
        from repro.survivability import (
            generate_trials,
            run_survivability_report,
        )

        trials = generate_trials(seed=scenario.seed,
                                 correlated=spec.correlated)
        context = RunContext(
            trials=trials, corpus_seed=scenario.seed,
            scenario_digest=scenario.spec_digest,
        )
        report = run_survivability_report(
            context, backend=self.backend, jobs=self.jobs,
            use_processes=self.use_processes, cache=self.cache,
        )
        digest = report_digest(report)
        record["survivability_digest"] = digest
        record["report_digest"] = hashlib.sha256(
            (record["report_digest"] + digest).encode()
        ).hexdigest()
        summary = report.summary
        record["metrics"]["fabric_advantage"] = summary.fabric_advantage
        for row in summary.designs:
            record["metrics"][f"{row.design}_connectivity_auc"] = (
                row.connectivity_auc
            )

    def _execute_backbone_cell(self, spec: ScenarioSpec) -> Dict[str, Any]:
        from repro.backbone.monitor import BackboneMonitor
        from repro.faultline.oracle import report_digest
        from repro.runtime import RunContext, run_backbone_report
        from repro.simulation.backbone_sim import BackboneSimulator

        scenario = spec.materialize()
        corpus = BackboneSimulator(scenario).run()
        context = RunContext(
            monitor=BackboneMonitor(corpus.topology, corpus.tickets),
            topology=corpus.topology, window_h=corpus.window_h,
            corpus_seed=scenario.seed, tickets=corpus.tickets,
            scenario_digest=scenario.spec_digest,
        )
        report = run_backbone_report(
            context, backend=self.backend, jobs=self.jobs,
            use_processes=self.use_processes, cache=self.cache,
        )
        return {
            "kind": "backbone",
            "name": spec.name,
            "spec_digest": spec.digest(),
            "report_digest": report_digest(report),
            "metrics": {
                "tickets": len(corpus.tickets.completed()),
                "edges": len(corpus.topology.edges),
                "links": len(corpus.topology.links),
                "window_h": corpus.window_h,
            },
        }

    # -- whole grids --------------------------------------------------

    def run(self, grid: GridSpec) -> Dict[str, Any]:
        """Run the full lattice; emit the comparative grid report.

        Cells run in lattice order (cache hits skip the simulation
        entirely); the report carries per-cell digests and metrics,
        the grid digest, the summary digest over all cells, and this
        run's cache counters.
        """
        results = []
        for cell in grid.cells():
            record = self.run_cell(cell.spec)
            record["cell"] = cell.index
            record["params"] = dict(cell.overrides)
            results.append(record)
        return {
            "format": GRID_FORMAT,
            "grid_digest": grid.digest(),
            "backend": self.backend,
            "axes": {path: list(grid.axes[path])
                     for path in grid.axis_paths},
            "cells": results,
            "summary_digest": _summary_digest(results),
            "cache": {
                "cell_hits": self.cell_hits,
                "cell_misses": self.cell_misses,
                "cell_retries": self.cell_retries,
            },
        }


def grid_diff(left: Dict[str, Any], right: Dict[str, Any]) -> Dict[str, Any]:
    """Compare two grid reports cell by cell.

    Cells pair up by their axis parameters (not by index, so two
    grids with different axis orders or extra axes still align where
    they overlap).  Returns the overlapping cells whose report digests
    differ, plus the parameter sets unique to each side.
    """
    def keyed(report):
        return {
            canonical_spec_json(cell["params"]): cell
            for cell in report.get("cells", [])
        }

    lcells, rcells = keyed(left), keyed(right)
    changed = []
    for params in sorted(set(lcells) & set(rcells)):
        a, b = lcells[params], rcells[params]
        if a["report_digest"] != b["report_digest"]:
            changed.append({
                "params": a["params"],
                "left": {"spec_digest": a["spec_digest"],
                         "report_digest": a["report_digest"]},
                "right": {"spec_digest": b["spec_digest"],
                          "report_digest": b["report_digest"]},
            })
    return {
        "identical": (not changed
                      and set(lcells) == set(rcells)
                      and left.get("summary_digest")
                      == right.get("summary_digest")),
        "changed": changed,
        "only_left": sorted(set(lcells) - set(rcells)),
        "only_right": sorted(set(rcells) - set(lcells)),
    }
