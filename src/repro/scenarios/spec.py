"""Declarative scenario specs.

A :class:`ScenarioSpec` is the *serializable* description of a study
scenario — the what-if knobs (fleet scale, per-type hazard
multipliers, fabric-rollout year and pace, severity-mix overrides, the
drain-policy toggle, backbone vendor mix, region loss, a correlated
storm) — separated from the calibrated dataclasses that the simulators
consume.  The split buys three things:

* **identity**: every spec has a canonical JSON form and a SHA-256
  content digest, so two runs can agree they studied the same
  scenario with one string comparison, and the result cache can key
  on it (:func:`repro.runtime.cache.corpus_fingerprint`);
* **files**: scenarios load from JSON documents (YAML too, when
  PyYAML happens to be importable — it is never required), with
  strict validation: unknown keys, wrong-typed values, and torn files
  raise a typed :class:`ScenarioError` naming the file and key path,
  mirroring :class:`repro.storage.ManifestError`;
* **grids**: a spec is a point; :mod:`repro.scenarios.grid` sweeps
  axes of them.

:meth:`ScenarioSpec.materialize` turns a spec into the
:class:`~repro.simulation.scenarios.IntraScenario` or
:class:`~repro.simulation.scenarios.BackboneScenario` the simulators
run.  The shipped presets under ``presets/`` re-express the legacy
constructors — ``paper_scenario``, ``no_drain_policy_scenario``,
``shifted_fabric_scenario``, ``paper_backbone_scenario`` — as spec
files; the legacy functions now route through this layer, so their
corpora (and every digest derived from them) are preserved bit for
bit.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro import paperdata
from repro.incidents.sev import Severity
from repro.topology.backbone import Continent
from repro.topology.devices import DeviceType

__all__ = [
    "SPEC_FORMAT",
    "ScenarioError",
    "ScenarioSpec",
    "canonical_spec_json",
    "list_presets",
    "load_spec",
    "preset",
    "spec_from_dict",
]

#: Format tag embedded in every serialized spec (and its digest).
SPEC_FORMAT = "repro.scenario-spec/1"

PathLike = Union[str, Path]

_PRESET_DIR = Path(__file__).parent / "presets"

_DEVICE_NAMES = tuple(t.name for t in DeviceType)
_SEVERITY_NAMES = tuple(s.label for s in sorted(Severity))
_CONTINENT_NAMES = tuple(c.name for c in Continent)


class ScenarioError(ValueError):
    """A spec that cannot be trusted: unknown key, wrong type, torn file.

    Carries ``source`` (the file path, or ``"<dict>"`` for in-memory
    payloads) and ``path`` (the dotted key path of the offending
    value) so a bad spec names exactly what to fix — the scenario
    layer's :class:`~repro.storage.manifest.ManifestError`.
    """

    def __init__(self, message: str, source: str = "<dict>",
                 path: str = "") -> None:
        location = source if not path else f"{source}: {path}"
        super().__init__(f"{location}: {message}")
        self.source = source
        self.path = path


# -- field validators ---------------------------------------------------


def _want(kind, value, source: str, path: str, what: str):
    """Type-check one scalar; bool is never accepted for a number."""
    if kind in (int, float) and isinstance(value, bool):
        raise ScenarioError(
            f"expected {what}, got a boolean", source, path
        )
    if kind is float and isinstance(value, int):
        value = float(value)
    if not isinstance(value, kind):
        raise ScenarioError(
            f"expected {what}, got {type(value).__name__} "
            f"({value!r})", source, path,
        )
    return value


def _want_mapping(value, source: str, path: str) -> dict:
    if not isinstance(value, dict):
        raise ScenarioError(
            f"expected an object, got {type(value).__name__}",
            source, path,
        )
    return value


def _check_keys(payload: dict, allowed: Tuple[str, ...],
                source: str, path: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        where = f"{path}.{unknown[0]}" if path else unknown[0]
        raise ScenarioError(
            f"unknown key (expected among {sorted(allowed)})",
            source, where,
        )


def _device_map(value, source: str, path: str) -> Dict[str, float]:
    """A ``{DEVICE_NAME: number}`` mapping, keys validated."""
    mapping = _want_mapping(value, source, path)
    out: Dict[str, float] = {}
    for key in sorted(mapping):
        where = f"{path}.{key}"
        if key not in _DEVICE_NAMES:
            raise ScenarioError(
                f"unknown device type (expected among "
                f"{list(_DEVICE_NAMES)})", source, where,
            )
        out[key] = _want(float, mapping[key], source, where,
                         "a number")
    return out


def _severity_map(value, source: str, path: str) -> Dict[str, Dict[str, float]]:
    """Per-type severity-mix overrides; each mix must sum to 1."""
    mapping = _want_mapping(value, source, path)
    out: Dict[str, Dict[str, float]] = {}
    for key in sorted(mapping):
        where = f"{path}.{key}"
        if key not in _DEVICE_NAMES:
            raise ScenarioError(
                f"unknown device type (expected among "
                f"{list(_DEVICE_NAMES)})", source, where,
            )
        mix = _want_mapping(mapping[key], source, where)
        _check_keys(mix, _SEVERITY_NAMES, source, where)
        out[key] = {
            level: _want(float, mix[level], source, f"{where}.{level}",
                         "a number")
            for level in sorted(mix)
        }
        total = sum(out[key].values())
        if abs(total - 1.0) > 1e-6:
            raise ScenarioError(
                f"severity mix sums to {total}, expected 1.0",
                source, where,
            )
    return out


_STORM_KEYS = ("year", "multiplier")
_VENDOR_KEYS = ("include_flaky", "flaky_mtbf_h", "flaky_mttr_h")
_REGION_KEYS = ("continent", "fraction")
_CORRELATED_KEYS = (
    "maintenance_clustering", "power_domain_size", "storm_bias", "trials",
)


def _storm_knob(value, source: str, path: str) -> Dict[str, Any]:
    storm = _want_mapping(value, source, path)
    _check_keys(storm, _STORM_KEYS, source, path)
    for key in _STORM_KEYS:
        if key not in storm:
            raise ScenarioError(f"missing key {key!r}", source, path)
    return {
        "year": _want(int, storm["year"], source, f"{path}.year",
                      "an integer year"),
        "multiplier": _want(float, storm["multiplier"], source,
                            f"{path}.multiplier", "a number"),
    }


def _vendor_knob(value, source: str, path: str) -> Dict[str, Any]:
    vendor = _want_mapping(value, source, path)
    _check_keys(vendor, _VENDOR_KEYS, source, path)
    out: Dict[str, Any] = {}
    if "include_flaky" in vendor:
        out["include_flaky"] = _want(
            bool, vendor["include_flaky"], source,
            f"{path}.include_flaky", "a boolean",
        )
    for key in ("flaky_mtbf_h", "flaky_mttr_h"):
        if key in vendor:
            out[key] = _want(float, vendor[key], source,
                             f"{path}.{key}", "a number")
    return out


def _correlated_knob(value, source: str, path: str) -> Dict[str, Any]:
    """The correlated-failure block; every key optional, all typed."""
    correlated = _want_mapping(value, source, path)
    _check_keys(correlated, _CORRELATED_KEYS, source, path)
    out: Dict[str, Any] = {}
    for key in ("power_domain_size", "trials"):
        if key in correlated:
            out[key] = _want(int, correlated[key], source,
                             f"{path}.{key}", "an integer")
            if out[key] < 1:
                raise ScenarioError(f"{key} must be at least 1",
                                    source, f"{path}.{key}")
    if "storm_bias" in correlated:
        out["storm_bias"] = _want(float, correlated["storm_bias"],
                                  source, f"{path}.storm_bias", "a number")
        if out["storm_bias"] < 0:
            raise ScenarioError("storm_bias must be non-negative",
                                source, f"{path}.storm_bias")
    if "maintenance_clustering" in correlated:
        out["maintenance_clustering"] = _want(
            float, correlated["maintenance_clustering"], source,
            f"{path}.maintenance_clustering", "a number",
        )
        if not 0.0 <= out["maintenance_clustering"] <= 1.0:
            raise ScenarioError(
                "maintenance_clustering outside [0, 1]",
                source, f"{path}.maintenance_clustering",
            )
    return out


def _region_knob(value, source: str, path: str) -> Dict[str, Any]:
    region = _want_mapping(value, source, path)
    _check_keys(region, _REGION_KEYS, source, path)
    for key in _REGION_KEYS:
        if key not in region:
            raise ScenarioError(f"missing key {key!r}", source, path)
    continent = _want(str, region["continent"], source,
                      f"{path}.continent", "a continent name")
    if continent not in _CONTINENT_NAMES:
        raise ScenarioError(
            f"unknown continent {continent!r} (expected among "
            f"{list(_CONTINENT_NAMES)})", source, f"{path}.continent",
        )
    fraction = _want(float, region["fraction"], source,
                     f"{path}.fraction", "a number")
    if not 0.0 <= fraction <= 1.0:
        raise ScenarioError("fraction outside [0, 1]", source,
                            f"{path}.fraction")
    return {"continent": continent, "fraction": fraction}


# -- the spec -----------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative scenario: a named point in what-if space.

    Every knob defaults to "the paper's world"; a default-valued spec
    of kind ``intra`` materializes exactly the calibrated
    ``paper_scenario`` corpus (and ``backbone`` the
    ``paper_backbone_scenario`` one).  Knobs:

    ``scale`` / ``growth``
        fleet-and-incident scale factor, and a compound per-year
        growth multiplier on incident counts (the fleet growth curve);
    ``hazard``
        per-device-type incident-count multipliers
        (``{"CORE": 1.5}``);
    ``fabric_year`` / ``fabric_pace``
        fabric rollout year (the incident series shifts with it) and
        a multiplier on the fabric-device incident volume;
    ``severity_mix``
        per-type severity-mix overrides (each must sum to 1);
    ``drain_policy``
        ``False`` removes the 2015 drain-before-maintenance practice
        (CSA incidents keep scaling with the 2014 per-device rate);
    ``storm``
        a correlated surge: every type's count in ``storm["year"]``
        is multiplied by ``storm["multiplier"]``;
    ``links_per_edge`` / ``vendor_mix`` / ``region_loss`` /
    ``maintenance_fraction``
        backbone knobs: fiber links per edge, the flaky-vendor mix,
        losing a fraction of a continent's edges, and the
        maintenance share of tickets;
    ``correlated``
        the correlated-failure block for the survivability workload
        (:mod:`repro.survivability`): ``power_domain_size`` (devices
        per shared power domain), ``storm_bias`` (blast-radius-
        weighted failure order), ``maintenance_clustering`` (the
        maintenance-window share), ``trials`` (orders per design) —
        every key optional; at the defaults the draws degrade
        bit-identically to the independent failure model.
    """

    name: str
    kind: str = "intra"
    seed: Optional[int] = None
    scale: float = 1.0
    growth: float = 1.0
    hazard: Dict[str, float] = field(default_factory=dict)
    fabric_year: int = paperdata.FABRIC_DEPLOYMENT_YEAR
    fabric_pace: float = 1.0
    severity_mix: Dict[str, Dict[str, float]] = field(default_factory=dict)
    drain_policy: bool = True
    storm: Optional[Dict[str, Any]] = None
    links_per_edge: int = 3
    vendor_mix: Optional[Dict[str, Any]] = None
    region_loss: Optional[Dict[str, Any]] = None
    maintenance_fraction: Optional[float] = None
    correlated: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        # Normalize numerics so int-vs-float spelling of the same knob
        # (scale=2 vs scale=2.0) cannot change the canonical form or
        # the digest.  The spec is frozen, hence object.__setattr__.
        for name in ("scale", "growth", "fabric_pace"):
            object.__setattr__(self, name, float(getattr(self, name)))
        if self.maintenance_fraction is not None:
            object.__setattr__(self, "maintenance_fraction",
                               float(self.maintenance_fraction))
        object.__setattr__(
            self, "hazard",
            {k: float(v) for k, v in self.hazard.items()},
        )
        if self.storm is not None:
            object.__setattr__(self, "storm", {
                "year": int(self.storm["year"]),
                "multiplier": float(self.storm["multiplier"]),
            })
        if self.correlated is not None:
            unknown = sorted(set(self.correlated) - set(_CORRELATED_KEYS))
            if unknown:
                raise ScenarioError(
                    f"unknown key (expected among "
                    f"{sorted(_CORRELATED_KEYS)})",
                    "<spec>", f"correlated.{unknown[0]}",
                )
            normalized: Dict[str, Any] = {}
            for key in ("power_domain_size", "trials"):
                if key in self.correlated:
                    normalized[key] = int(self.correlated[key])
                    if normalized[key] < 1:
                        raise ScenarioError(
                            f"{key} must be at least 1",
                            "<spec>", f"correlated.{key}",
                        )
            for key in ("storm_bias", "maintenance_clustering"):
                if key in self.correlated:
                    normalized[key] = float(self.correlated[key])
            if normalized.get("storm_bias", 0.0) < 0:
                raise ScenarioError("storm_bias must be non-negative",
                                    "<spec>", "correlated.storm_bias")
            if not 0.0 <= normalized.get(
                    "maintenance_clustering", 0.0) <= 1.0:
                raise ScenarioError(
                    "maintenance_clustering outside [0, 1]",
                    "<spec>", "correlated.maintenance_clustering",
                )
            object.__setattr__(self, "correlated", normalized)
        object.__setattr__(self, "severity_mix", {
            device: {level: float(share) for level, share in mix.items()}
            for device, mix in self.severity_mix.items()
        })
        if self.kind not in ("intra", "backbone"):
            raise ScenarioError(
                f"unknown kind {self.kind!r} (expected 'intra' or "
                f"'backbone')", "<spec>", "kind",
            )
        if not self.name:
            raise ScenarioError("name must be non-empty", "<spec>", "name")
        if self.scale <= 0:
            raise ScenarioError("scale must be positive", "<spec>", "scale")
        if self.growth < 0:
            raise ScenarioError("growth must be non-negative",
                                "<spec>", "growth")
        if self.fabric_pace < 0:
            raise ScenarioError("fabric_pace must be non-negative",
                                "<spec>", "fabric_pace")
        if self.links_per_edge < 1:
            raise ScenarioError("links_per_edge must be at least 1",
                                "<spec>", "links_per_edge")
        for device, mult in self.hazard.items():
            if mult < 0:
                raise ScenarioError(
                    "hazard multiplier must be non-negative",
                    "<spec>", f"hazard.{device}",
                )
        if self.maintenance_fraction is not None and not (
                0.0 <= self.maintenance_fraction <= 1.0):
            raise ScenarioError("maintenance_fraction outside [0, 1]",
                                "<spec>", "maintenance_fraction")

    # -- serialization ------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """The full canonical payload: every field, defaults explicit."""
        return {
            "format": SPEC_FORMAT,
            "name": self.name,
            "kind": self.kind,
            "seed": self.seed,
            "scale": self.scale,
            "growth": self.growth,
            "hazard": {k: self.hazard[k] for k in sorted(self.hazard)},
            "fabric_year": self.fabric_year,
            "fabric_pace": self.fabric_pace,
            "severity_mix": {
                device: {level: mix[level] for level in sorted(mix)}
                for device, mix in sorted(self.severity_mix.items())
            },
            "drain_policy": self.drain_policy,
            "storm": dict(self.storm) if self.storm else None,
            "links_per_edge": self.links_per_edge,
            "vendor_mix": dict(self.vendor_mix) if self.vendor_mix else None,
            "region_loss": (dict(self.region_loss)
                            if self.region_loss else None),
            "maintenance_fraction": self.maintenance_fraction,
            "correlated": (
                {k: self.correlated[k] for k in sorted(self.correlated)}
                if self.correlated else None
            ),
        }

    def canonical_json(self) -> str:
        """Canonical serialization: sorted keys, compact separators."""
        return canonical_spec_json(self.to_dict())

    def digest(self) -> str:
        """SHA-256 content digest over the canonical form.

        Two specs describing the same scenario — whatever file, key
        order, or default-elision they came from — digest identically;
        any knob change (including seed and scale) digests elsewhere.
        """
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    def with_updates(self, **updates: Any) -> "ScenarioSpec":
        """A copy with fields replaced (re-validated)."""
        return dataclasses.replace(self, **updates)

    # -- materialization ----------------------------------------------

    def materialize(self):
        """Build the simulator-facing scenario dataclass.

        Returns an :class:`~repro.simulation.scenarios.IntraScenario`
        for ``kind="intra"`` and a
        :class:`~repro.simulation.scenarios.BackboneScenario` for
        ``kind="backbone"``; the result carries this spec's digest in
        ``spec_digest`` so downstream fingerprints can key on it.
        Every knob at its default is a strict no-op: the materialized
        scenario is bit-identical to the legacy constructor's.
        """
        if self.kind == "backbone":
            return self._materialize_backbone()
        return self._materialize_intra()

    def _materialize_intra(self):
        from repro.simulation import scenarios as legacy

        seed = self.seed if self.seed is not None else 1
        scenario = legacy.build_paper_intra(seed=seed, scale=self.scale)
        if not self.drain_policy:
            legacy.apply_no_drain_policy(scenario)
        if self.fabric_year != paperdata.FABRIC_DEPLOYMENT_YEAR:
            scenario = legacy.shift_fabric_rollout(scenario,
                                                   self.fabric_year)
        if self.hazard:
            multipliers = {DeviceType[k]: v for k, v in self.hazard.items()}
            _scale_counts(scenario.incident_counts,
                          lambda year, t: multipliers.get(t, 1.0))
        if self.fabric_pace != 1.0:
            _scale_counts(
                scenario.incident_counts,
                lambda year, t: self.fabric_pace if t.is_fabric else 1.0,
            )
        if self.growth != 1.0:
            first = min(scenario.incident_counts)
            _scale_counts(scenario.incident_counts,
                          lambda year, t: self.growth ** (year - first))
        if self.storm is not None:
            storm_year = self.storm["year"]
            storm_mult = self.storm["multiplier"]
            _scale_counts(
                scenario.incident_counts,
                lambda year, t: storm_mult if year == storm_year else 1.0,
            )
        for device, mix in self.severity_mix.items():
            scenario.severity_mix[DeviceType[device]] = {
                Severity[level]: share for level, share in mix.items()
            }
        scenario.spec_digest = self.digest()
        return scenario

    def _materialize_backbone(self):
        from repro.simulation import scenarios as legacy

        seed = self.seed if self.seed is not None else 7
        scenario = legacy.build_paper_backbone(
            seed=seed, links_per_edge=self.links_per_edge,
        )
        if self.vendor_mix is not None:
            if "include_flaky" in self.vendor_mix:
                scenario.include_flaky_vendor = (
                    self.vendor_mix["include_flaky"]
                )
            if "flaky_mtbf_h" in self.vendor_mix:
                scenario.flaky_vendor_mtbf_h = (
                    self.vendor_mix["flaky_mtbf_h"]
                )
            if "flaky_mttr_h" in self.vendor_mix:
                scenario.flaky_vendor_mttr_h = (
                    self.vendor_mix["flaky_mttr_h"]
                )
        if self.region_loss is not None:
            continent = Continent[self.region_loss["continent"]]
            fraction = self.region_loss["fraction"]
            kept = int(round(
                scenario.continent_edges[continent] * (1.0 - fraction)
            ))
            scenario.continent_edges[continent] = max(0, kept)
            if scenario.edge_count < 1:
                raise ScenarioError(
                    "region_loss removes every backbone edge",
                    "<spec>", "region_loss.fraction",
                )
        if self.maintenance_fraction is not None:
            scenario.maintenance_fraction = self.maintenance_fraction
        scenario.spec_digest = self.digest()
        return scenario


def _scale_counts(counts: Dict[int, Dict[DeviceType, int]],
                  factor) -> None:
    """Multiply incident counts in place; ``factor(year, type)``."""
    for year, per_type in counts.items():
        for device_type in list(per_type):
            scaled = per_type[device_type] * factor(year, device_type)
            per_type[device_type] = max(0, int(round(scaled)))


# -- canonical JSON -----------------------------------------------------


def canonical_spec_json(payload: Dict[str, Any]) -> str:
    """Sorted-key, compact-separator JSON — the digestable form."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# -- strict loading -----------------------------------------------------

_FIELD_NAMES = (
    "format", "name", "kind", "seed", "scale", "growth", "hazard",
    "fabric_year", "fabric_pace", "severity_mix", "drain_policy",
    "storm", "links_per_edge", "vendor_mix", "region_loss",
    "maintenance_fraction", "correlated",
)


def spec_from_dict(payload: Any, source: str = "<dict>") -> ScenarioSpec:
    """Validate a raw payload into a :class:`ScenarioSpec`.

    Strict by design: unknown keys, wrong-typed values, and malformed
    nested knobs raise :class:`ScenarioError` naming ``source`` and
    the dotted key path — a spec never silently defaults past a typo.
    Missing optional keys take their defaults; ``name`` is required.
    """
    payload = _want_mapping(payload, source, "")
    _check_keys(payload, _FIELD_NAMES, source, "")
    if "format" in payload and payload["format"] != SPEC_FORMAT:
        raise ScenarioError(
            f"foreign format {payload['format']!r} "
            f"(expected {SPEC_FORMAT!r})", source, "format",
        )
    if "name" not in payload:
        raise ScenarioError("missing required key 'name'", source, "")
    fields: Dict[str, Any] = {
        "name": _want(str, payload["name"], source, "name", "a string"),
    }
    if "kind" in payload:
        kind = _want(str, payload["kind"], source, "kind", "a string")
        if kind not in ("intra", "backbone"):
            raise ScenarioError(
                f"unknown kind {kind!r} (expected 'intra' or "
                f"'backbone')", source, "kind",
            )
        fields["kind"] = kind
    if payload.get("seed") is not None:
        fields["seed"] = _want(int, payload["seed"], source, "seed",
                               "an integer")
    for key, what in (("scale", "a number"), ("growth", "a number"),
                      ("fabric_pace", "a number")):
        if key in payload:
            fields[key] = _want(float, payload[key], source, key, what)
    for key in ("fabric_year", "links_per_edge"):
        if key in payload:
            fields[key] = _want(int, payload[key], source, key,
                                "an integer")
    if "drain_policy" in payload:
        fields["drain_policy"] = _want(bool, payload["drain_policy"],
                                       source, "drain_policy", "a boolean")
    if "hazard" in payload:
        fields["hazard"] = _device_map(payload["hazard"], source, "hazard")
    if "severity_mix" in payload:
        fields["severity_mix"] = _severity_map(
            payload["severity_mix"], source, "severity_mix",
        )
    if payload.get("storm") is not None:
        fields["storm"] = _storm_knob(payload["storm"], source, "storm")
    if payload.get("vendor_mix") is not None:
        fields["vendor_mix"] = _vendor_knob(payload["vendor_mix"],
                                            source, "vendor_mix")
    if payload.get("region_loss") is not None:
        fields["region_loss"] = _region_knob(payload["region_loss"],
                                             source, "region_loss")
    if payload.get("maintenance_fraction") is not None:
        fields["maintenance_fraction"] = _want(
            float, payload["maintenance_fraction"], source,
            "maintenance_fraction", "a number",
        )
    if payload.get("correlated") is not None:
        fields["correlated"] = _correlated_knob(payload["correlated"],
                                                source, "correlated")
    try:
        return ScenarioSpec(**fields)
    except ScenarioError as exc:
        # Re-raise dataclass validation with the caller's source.
        raise ScenarioError(
            str(exc).split(": ", 2)[-1], source, exc.path
        ) from None


def load_spec(path: PathLike) -> ScenarioSpec:
    """Load and validate a spec file (JSON; YAML when importable).

    A missing, torn, or truncated file — anything that does not parse
    to a JSON/YAML object — raises :class:`ScenarioError` naming the
    file, exactly like an unknown key would.  YAML support is a
    convenience gated on PyYAML being importable; it is never a
    dependency, and a ``.yaml`` file without it raises a typed error
    telling the user to use JSON.
    """
    path = Path(path)
    source = str(path)
    if not path.exists():
        raise ScenarioError("no such spec file", source)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ScenarioError(f"unreadable spec file ({exc})", source)
    if path.suffix in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:
            raise ScenarioError(
                "YAML specs need PyYAML, which is not installed; "
                "use JSON instead", source,
            ) from None
        try:
            payload = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ScenarioError(
                f"torn or malformed YAML ({exc})", source,
            ) from None
    else:
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(
                f"torn or malformed JSON ({exc})", source,
            ) from None
    return spec_from_dict(payload, source=source)


# -- shipped presets ----------------------------------------------------


def list_presets() -> List[str]:
    """Names of the shipped preset spec files, sorted."""
    return sorted(p.stem for p in _PRESET_DIR.glob("*.json"))


def preset(name: str) -> ScenarioSpec:
    """Load one shipped preset by name (see :func:`list_presets`)."""
    path = _PRESET_DIR / f"{name}.json"
    if not path.exists():
        raise ScenarioError(
            f"unknown preset {name!r} (expected among {list_presets()})",
            str(_PRESET_DIR),
        )
    return load_spec(path)
