"""Declarative scenario specs and the what-if grid runner.

:mod:`repro.scenarios.spec` defines the serializable
:class:`ScenarioSpec` (canonical JSON, content digest, strict typed
validation, JSON/optional-YAML loaders, shipped presets);
:mod:`repro.scenarios.grid` sweeps a lattice of them through the
analysis executor with whole-cell result caching.
"""

from repro.scenarios.grid import (
    GRID_FORMAT,
    GridCell,
    GridRunner,
    GridSpec,
    grid_diff,
)
from repro.scenarios.spec import (
    SPEC_FORMAT,
    ScenarioError,
    ScenarioSpec,
    canonical_spec_json,
    list_presets,
    load_spec,
    preset,
    spec_from_dict,
)

__all__ = [
    "GRID_FORMAT",
    "GridCell",
    "GridRunner",
    "GridSpec",
    "SPEC_FORMAT",
    "ScenarioError",
    "ScenarioSpec",
    "canonical_spec_json",
    "grid_diff",
    "list_presets",
    "load_spec",
    "preset",
    "spec_from_dict",
]
