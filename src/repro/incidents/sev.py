"""SEV data model (section 4.2, Tables 2 and 3).

A SEV report records the incident's root cause(s), the offending
device, when the root cause manifested and when engineers fixed it,
and the incident's effect on services.  Severity ranges from SEV3
(lowest, no external outage) to SEV1 (highest, widespread external
outage); a SEV's level is the high-water mark and is never downgraded.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.topology.devices import DeviceType
from repro.topology.naming import device_type_from_name


class Severity(enum.IntEnum):
    """SEV severity levels.  Lower number = higher severity."""

    SEV1 = 1
    SEV2 = 2
    SEV3 = 3

    @property
    def label(self) -> str:
        return f"SEV{int(self)}"


#: Table 3 -- incident examples for each SEV level.
SEVERITY_EXAMPLES = {
    Severity.SEV3: (
        "Redundant or contained system failures, system impairments that "
        "do not affect or only minimally affect customer experience, "
        "internal tool failures."
    ),
    Severity.SEV2: (
        "Service outages that affect a particular Facebook feature, "
        "regional network impairment, critical internal tool outages "
        "that put the site at risk."
    ),
    Severity.SEV1: (
        "Entire Facebook product or service outage, data center outage, "
        "major portions of the site are unavailable, outages that affect "
        "multiple products or services."
    ),
}


class RootCause(enum.Enum):
    """Root cause categories of Table 2.

    The category is a mandatory field in the SEV authoring workflow
    (section 4.3.1).  A SEV with multiple root causes counts toward
    multiple categories; a SEV with none is counted undetermined.
    """

    MAINTENANCE = "maintenance"
    HARDWARE = "hardware"
    CONFIGURATION = "configuration"
    BUG = "bug"
    ACCIDENTS = "accidents"
    CAPACITY = "capacity"
    UNDETERMINED = "undetermined"

    @property
    def description(self) -> str:
        return _ROOT_CAUSE_DESCRIPTIONS[self]

    @property
    def human_induced(self) -> bool:
        """Bugs and misconfiguration: the paper's 'human errors' bucket
        (section 5.1 observes 2x more human errors than hardware errors).
        """
        return self in (RootCause.CONFIGURATION, RootCause.BUG)


_ROOT_CAUSE_DESCRIPTIONS = {
    RootCause.MAINTENANCE: (
        "Routine maintenance (for example, upgrading the software and "
        "firmware of network devices)."
    ),
    RootCause.HARDWARE: (
        "Failing devices (for example, faulty memory modules, processors, "
        "and ports)."
    ),
    RootCause.CONFIGURATION: (
        "Incorrect or unintended configurations (for example, routing "
        "rules blocking production traffic)."
    ),
    RootCause.BUG: "Logical errors in network device software or firmware.",
    RootCause.ACCIDENTS: (
        "Unintended actions (for example, disconnecting or power cycling "
        "the wrong network device)."
    ),
    RootCause.CAPACITY: "High load due to insufficient capacity planning.",
    RootCause.UNDETERMINED: "Inconclusive root cause.",
}


@dataclass
class SEVReport:
    """A reviewed SEV report, the unit of the intra data center study.

    Times are hours since the study epoch (2011-01-01 00:00) so the
    seven-year corpus stays cheap to bucket and difference; the
    ``opened_year`` property recovers the calendar year the analyses
    group by.
    """

    sev_id: str
    severity: Severity
    device_name: str
    opened_at_h: float
    resolved_at_h: float
    root_causes: Tuple[RootCause, ...] = ()
    description: str = ""
    service_impact: str = ""
    reviewed: bool = True

    def __post_init__(self) -> None:
        if self.resolved_at_h < self.opened_at_h:
            raise ValueError(
                f"SEV {self.sev_id!r} resolves before it opens "
                f"({self.resolved_at_h} < {self.opened_at_h})"
            )
        if self.opened_at_h < 0:
            raise ValueError(f"SEV {self.sev_id!r} opens before the epoch")

    @property
    def device_type(self) -> Optional[DeviceType]:
        """Classify by name prefix, exactly as section 4.3.1 does."""
        return device_type_from_name(self.device_name)

    @property
    def region(self) -> str:
        """The region field of the canonical device name, or ``""``.

        The naming convention puts the region last
        (``rsw.042.pod7.dc1.regionA``); the tiered store partitions on
        it.  A non-canonical name (an imported foreign corpus) has no
        region and lands in the store's catch-all partition.
        """
        parts = self.device_name.split(".")
        return parts[4] if len(parts) == 5 and parts[4] else ""

    @property
    def duration_h(self) -> float:
        """Incident resolution time in hours.

        Section 5.6: engineers document *resolution* time, which
        exceeds repair time and includes prevention work.
        """
        return self.resolved_at_h - self.opened_at_h

    @property
    def opened_year(self) -> int:
        return year_of_hours(self.opened_at_h)

    def effective_root_causes(self) -> Tuple[RootCause, ...]:
        """Root causes as counted by Table 2: none means undetermined."""
        if not self.root_causes:
            return (RootCause.UNDETERMINED,)
        return self.root_causes


#: The study epoch: the SEV database dates to January 2011 (section 4.2).
EPOCH_YEAR = 2011

_HOURS_PER_YEAR = 8760.0


def hours_of_year(year: int, offset_h: float = 0.0) -> float:
    """Hours since the epoch for the start of ``year`` plus an offset."""
    if year < EPOCH_YEAR:
        raise ValueError(f"year {year} precedes the study epoch {EPOCH_YEAR}")
    return (year - EPOCH_YEAR) * _HOURS_PER_YEAR + offset_h


def year_of_hours(hours: float) -> int:
    """Calendar year containing an hours-since-epoch timestamp."""
    if hours < 0:
        raise ValueError("timestamps precede the study epoch")
    return EPOCH_YEAR + int(hours // _HOURS_PER_YEAR)
