"""SQLite-backed SEV report store.

The production dataset "resides in a MySQL database ... we use SQL
queries to analyze the SEV report dataset" (section 4.2).  The store
keeps that shape: reports live in a relational table (plus a join
table for the multi-valued root-cause field) and the analysis layer
(:mod:`repro.incidents.query`) is written as SQL.
"""

from __future__ import annotations

import hashlib
import sqlite3
import time
from typing import Callable, Iterable, Iterator, List, Optional, TypeVar

from repro.faultline import hooks
from repro.incidents.sev import RootCause, Severity, SEVReport

_T = TypeVar("_T")

#: Bounded-backoff policy for transient SQLite write errors ("database
#: is locked" under a concurrent reader, a busy WAL): each batch is
#: attempted up to this many times, sleeping ``_RETRY_BACKOFF_S * 2**n``
#: between attempts, and the final failure propagates unchanged.
_RETRY_ATTEMPTS = 3
_RETRY_BACKOFF_S = 0.01


def _write_with_retry(attempt: Callable[[], _T]) -> _T:
    """Run a write batch, retrying transient ``OperationalError``.

    Retryable errors are raised *before* any row of the attempt is
    applied (a lock, a busy journal) or inside a transaction that
    rolled back whole, so a retry never double-applies.  Integrity
    errors (duplicate keys, constraint violations) are not transient
    and propagate immediately.  The ``store.insert`` fault site of
    :mod:`repro.faultline` injects the transient error at the top of
    an attempt.
    """
    delay = _RETRY_BACKOFF_S
    for attempts_left in range(_RETRY_ATTEMPTS - 1, -1, -1):
        try:
            if hooks.fire("store.insert"):
                raise sqlite3.OperationalError(
                    "injected transient fault: database is locked"
                )
            return attempt()
        except sqlite3.OperationalError:
            if not attempts_left:
                raise
            time.sleep(delay)
            delay *= 2
    raise AssertionError("unreachable")  # pragma: no cover

_SCHEMA = """
CREATE TABLE IF NOT EXISTS sevs (
    sev_id        TEXT PRIMARY KEY,
    severity      INTEGER NOT NULL CHECK (severity BETWEEN 1 AND 3),
    device_name   TEXT NOT NULL,
    device_type   TEXT,
    opened_at_h   REAL NOT NULL CHECK (opened_at_h >= 0),
    resolved_at_h REAL NOT NULL,
    opened_year   INTEGER NOT NULL,
    region        TEXT NOT NULL DEFAULT '',
    duration_h    REAL NOT NULL CHECK (duration_h >= 0),
    description   TEXT NOT NULL DEFAULT '',
    service_impact TEXT NOT NULL DEFAULT '',
    reviewed      INTEGER NOT NULL DEFAULT 1
);
CREATE TABLE IF NOT EXISTS sev_root_causes (
    sev_id     TEXT NOT NULL REFERENCES sevs(sev_id) ON DELETE CASCADE,
    root_cause TEXT NOT NULL,
    PRIMARY KEY (sev_id, root_cause)
);
"""

#: The query-layer indexes, by name.  ``idx_sevs_year_type`` is a
#: covering index for the hot aggregation path — every per-year,
#: per-type GROUP BY in :mod:`repro.incidents.query` is answered from
#: the index alone, no table walk.
_INDEXES = {
    "idx_sevs_year":
        "CREATE INDEX IF NOT EXISTS idx_sevs_year ON sevs(opened_year)",
    "idx_sevs_type":
        "CREATE INDEX IF NOT EXISTS idx_sevs_type ON sevs(device_type)",
    "idx_sevs_year_type":
        "CREATE INDEX IF NOT EXISTS idx_sevs_year_type "
        "ON sevs(opened_year, device_type)",
    "idx_sevs_device":
        "CREATE INDEX IF NOT EXISTS idx_sevs_device ON sevs(device_name)",
    "idx_sevs_year_region":
        "CREATE INDEX IF NOT EXISTS idx_sevs_year_region "
        "ON sevs(opened_year, region)",
    "idx_rc_cause":
        "CREATE INDEX IF NOT EXISTS idx_rc_cause "
        "ON sev_root_causes(root_cause)",
}


def ensure_region_column(conn: sqlite3.Connection) -> bool:
    """Migrate a pre-partition database to the current schema.

    Databases written before the tiered store existed have no
    ``region`` column.  Adds it (default ``''``) and backfills it from
    the canonical device names already on disk, so old corpora import
    into partitioned stores cleanly.  Returns True when a migration
    ran, False when the schema was already current.
    """
    columns = {
        row[1] for row in conn.execute("PRAGMA table_info(sevs)")
    }
    if "region" in columns:
        return False
    from repro.topology.naming import parse_device_name

    with conn:
        conn.execute(
            "ALTER TABLE sevs ADD COLUMN region TEXT NOT NULL DEFAULT ''"
        )
        rows = conn.execute(
            "SELECT sev_id, device_name FROM sevs"
        ).fetchall()
        updates = []
        for sev_id, device_name in rows:
            try:
                region = parse_device_name(device_name).region
            except ValueError:
                continue
            updates.append((region, sev_id))
        conn.executemany(
            "UPDATE sevs SET region = ? WHERE sev_id = ?", updates
        )
    return True


class SEVStore:
    """A SEV report database.

    By default the store is in-memory; pass a path to persist.  The
    store owns its connection and is also a context manager.
    """

    def __init__(self, path: str = ":memory:",
                 check_same_thread: bool = True) -> None:
        # ``check_same_thread=False`` lets a long-lived server share
        # one store across handler threads; callers doing so must
        # serialize access themselves (repro.serve holds a lock).
        self._conn = sqlite3.connect(
            path, check_same_thread=check_same_thread
        )
        self._conn.execute("PRAGMA foreign_keys = ON")
        self._conn.executescript(_SCHEMA)
        ensure_region_column(self._conn)
        self.create_indexes()

    # -- indexes -----------------------------------------------------

    @staticmethod
    def index_names() -> List[str]:
        """The names of the query-layer indexes, in creation order."""
        return list(_INDEXES)

    def create_indexes(self) -> None:
        """(Re)create every query-layer index; idempotent."""
        with self._conn:
            for statement in _INDEXES.values():
                self._conn.execute(statement)

    def drop_indexes(self) -> None:
        """Drop every query-layer index.

        Bulk loads are faster without index maintenance; call
        :meth:`create_indexes` afterwards to rebuild.  Also how the
        index micro-benchmark measures the unindexed baseline.
        """
        with self._conn:
            for name in _INDEXES:
                self._conn.execute(f"DROP INDEX IF EXISTS {name}")

    # -- lifecycle ---------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SEVStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying connection, for the SQL query layer."""
        return self._conn

    # -- writes ------------------------------------------------------

    _INSERT_SEV = (
        "INSERT INTO sevs (sev_id, severity, device_name, "
        "device_type, opened_at_h, resolved_at_h, opened_year, region, "
        "duration_h, description, service_impact, reviewed) "
        "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
    )
    _INSERT_CAUSE = (
        "INSERT INTO sev_root_causes (sev_id, root_cause) VALUES (?, ?)"
    )

    @staticmethod
    def _sev_row(report: SEVReport, default_region: str = "") -> tuple:
        device_type = report.device_type
        return (
            report.sev_id,
            int(report.severity),
            report.device_name,
            device_type.value if device_type else None,
            report.opened_at_h,
            report.resolved_at_h,
            report.opened_year,
            report.region or default_region,
            report.duration_h,
            report.description,
            report.service_impact,
            1 if report.reviewed else 0,
        )

    @staticmethod
    def _cause_rows(report: SEVReport) -> List[tuple]:
        return [(report.sev_id, rc.value) for rc in report.root_causes]

    def _insert_in_tx(self, report: SEVReport,
                      default_region: str = "") -> None:
        """Write one report; the caller owns the transaction."""
        self._conn.execute(
            self._INSERT_SEV, self._sev_row(report, default_region)
        )
        self._conn.executemany(self._INSERT_CAUSE, self._cause_rows(report))

    def insert(self, report: SEVReport) -> None:
        with self._conn:
            self._insert_in_tx(report)

    def insert_many(self, reports: Iterable[SEVReport],
                    default_region: str = "") -> int:
        """Insert reports inside one transaction; returns the count.

        One commit for the whole batch, not one per row — per-row
        commits pay journal churn and fsync for every report, which is
        the difference between thousands and hundreds of thousands of
        rows per second on durable storage.  Atomic: a failure rolls
        the whole batch back.  Transient ``OperationalError`` (a lock
        held by a concurrent reader) retries the rolled-back batch
        with bounded backoff before giving up.

        ``default_region`` fills the region column for reports whose
        device name carries none (pre-partition imports), so foreign
        corpora land in a chosen partition instead of the catch-all.
        """
        iterator = iter(reports)
        consumed: List[SEVReport] = []

        def attempt() -> int:
            # Stream rows straight into the transaction (a generator
            # source is never materialized up front), remembering each
            # consumed row so a retry after a rollback can replay the
            # full batch exactly.
            count = 0
            with self._conn:
                for report in consumed:
                    self._insert_in_tx(report, default_region)
                    count += 1
                for report in iterator:
                    consumed.append(report)
                    self._insert_in_tx(report, default_region)
                    count += 1
            return count

        return _write_with_retry(attempt)

    def bulk_load(
        self, reports: Iterable[SEVReport], batch_size: int = 2000,
        default_region: str = "",
    ) -> int:
        """Ingest-tuned fast path for loading a whole corpus.

        Drops the query-layer indexes (no per-row index maintenance),
        relaxes the durability PRAGMAs for the duration of the load
        (``synchronous=OFF``, in-memory journal), streams the reports
        through ``executemany`` in ``batch_size`` chunks inside one
        transaction, then restores the PRAGMAs and rebuilds the
        indexes.  Equivalent to :meth:`insert_many` row for row; the
        only difference is speed.

        Failure-safe: a mid-load error rolls back every row of the
        batch, and the indexes and PRAGMAs are restored either way, so
        the store stays fully usable.  ``default_region`` as in
        :meth:`insert_many`.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        conn = self._conn
        (synchronous,) = conn.execute("PRAGMA synchronous").fetchone()
        (journal_mode,) = conn.execute("PRAGMA journal_mode").fetchone()
        self.drop_indexes()
        conn.execute("PRAGMA synchronous = OFF")
        conn.execute("PRAGMA journal_mode = MEMORY")
        count = 0

        def flush(sev_rows: List[tuple], cause_rows: List[tuple]) -> None:
            # Retry the chunk on a transient lock; the injected
            # store.insert fault fires before any row is applied, so a
            # retry inside the surrounding transaction stays exact.
            _write_with_retry(lambda: (
                conn.executemany(self._INSERT_SEV, sev_rows),
                conn.executemany(self._INSERT_CAUSE, cause_rows),
            ))

        try:
            with conn:  # one transaction; rolls back on error
                sev_rows: List[tuple] = []
                cause_rows: List[tuple] = []
                for report in reports:
                    sev_rows.append(self._sev_row(report, default_region))
                    cause_rows.extend(self._cause_rows(report))
                    count += 1
                    if len(sev_rows) >= batch_size:
                        flush(sev_rows, cause_rows)
                        sev_rows.clear()
                        cause_rows.clear()
                if sev_rows:
                    flush(sev_rows, cause_rows)
        finally:
            conn.execute(f"PRAGMA journal_mode = {journal_mode}")
            conn.execute(f"PRAGMA synchronous = {int(synchronous)}")
            self.create_indexes()
        return count

    # -- reads -------------------------------------------------------

    def __len__(self) -> int:
        (n,) = self._conn.execute("SELECT COUNT(*) FROM sevs").fetchone()
        return n

    def get(self, sev_id: str) -> Optional[SEVReport]:
        row = self._conn.execute(
            "SELECT sev_id, severity, device_name, opened_at_h, "
            "resolved_at_h, description, service_impact, reviewed "
            "FROM sevs WHERE sev_id = ?",
            (sev_id,),
        ).fetchone()
        if row is None:
            return None
        causes = tuple(
            RootCause(value)
            for (value,) in self._conn.execute(
                "SELECT root_cause FROM sev_root_causes "
                "WHERE sev_id = ? ORDER BY root_cause",
                (sev_id,),
            )
        )
        return SEVReport(
            sev_id=row[0],
            severity=Severity(row[1]),
            device_name=row[2],
            opened_at_h=row[3],
            resolved_at_h=row[4],
            root_causes=causes,
            description=row[5],
            service_impact=row[6],
            reviewed=bool(row[7]),
        )

    def all_reports(self) -> Iterator[SEVReport]:
        """Every report, ordered by ``(opened_at_h, sev_id)``.

        Two queries total — the root-cause join table in one pass,
        then the sev rows streamed off a cursor — instead of two *per
        row*.  Rows come back field-identical to :meth:`get` (causes
        sorted by value, as ``ORDER BY root_cause`` returns them).
        """
        causes: dict = {}
        for sev_id, cause in self._conn.execute(
            "SELECT sev_id, root_cause FROM sev_root_causes "
            "ORDER BY sev_id, root_cause"
        ):
            causes.setdefault(sev_id, []).append(RootCause(cause))
        for row in self._conn.execute(
            "SELECT sev_id, severity, device_name, opened_at_h, "
            "resolved_at_h, description, service_impact, reviewed "
            "FROM sevs ORDER BY opened_at_h, sev_id"
        ):
            yield SEVReport(
                sev_id=row[0],
                severity=Severity(row[1]),
                device_name=row[2],
                opened_at_h=row[3],
                resolved_at_h=row[4],
                root_causes=tuple(causes.get(row[0], ())),
                description=row[5],
                service_impact=row[6],
                reviewed=bool(row[7]),
            )

    def years(self) -> List[int]:
        return [
            y
            for (y,) in self._conn.execute(
                "SELECT DISTINCT opened_year FROM sevs ORDER BY opened_year"
            )
        ]

    def regions(self) -> List[str]:
        """Distinct region values in the corpus, sorted."""
        return [
            r
            for (r,) in self._conn.execute(
                "SELECT DISTINCT region FROM sevs ORDER BY region"
            )
        ]

    def schema_hash(self) -> str:
        """Hash of the full SQL schema (tables and indexes), sorted.

        Part of the corpus fingerprint: two stores with the same row
        count and seed but different schemas (a migration landed in
        one) must hash to different cache keys.
        """
        schema = "\n".join(sorted(
            sql for (sql,) in self._conn.execute(
                "SELECT sql FROM sqlite_master WHERE sql IS NOT NULL"
            )
        ))
        return hashlib.sha256(schema.encode()).hexdigest()
