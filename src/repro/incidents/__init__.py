"""Service-level EVent (SEV) substrate.

Section 4.2: engineers document infrastructure incidents as SEVs in a
MySQL database dating to January 2011, and the study is a set of SQL
queries over that dataset.  This package reproduces that substrate:
the SEV data model with the paper's severity and root-cause
taxonomies, a SQLite-backed report store, the query layer the analyses
use, and the authoring/review workflow that enforces the mandatory
root-cause field.
"""

from repro.incidents.classifier import (
    AgreementReport,
    Classification,
    audit_labels,
    classify_description,
)
from repro.incidents.sev import (
    RootCause,
    Severity,
    SEVReport,
    SEVERITY_EXAMPLES,
)
from repro.incidents.store import SEVStore
from repro.incidents.query import SEVQuery
from repro.incidents.workflow import (
    ReviewState,
    SEVAuthoringWorkflow,
    SEVDraft,
    ValidationError,
)

__all__ = [
    "AgreementReport",
    "Classification",
    "ReviewState",
    "RootCause",
    "SEVERITY_EXAMPLES",
    "SEVAuthoringWorkflow",
    "SEVDraft",
    "SEVQuery",
    "SEVReport",
    "SEVStore",
    "Severity",
    "audit_labels",
    "classify_description",
    "ValidationError",
]
