"""SEV authoring and review workflow (sections 2 and 4.2).

Engineers who respond to a SEV write its report; each report then goes
through a review process that verifies accuracy and completeness.  Two
published properties of the workflow matter to the study and are
enforced here:

* the root cause category is a **mandatory** field (section 4.3.1) —
  authors who cannot determine a cause must mark it undetermined
  explicitly, which is why "undetermined" is a first-class Table 2
  category rather than missing data;
* severity is a high-water mark and can be raised during review but
  never downgraded (section 5.3).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.incidents.sev import RootCause, Severity, SEVReport
from repro.incidents.store import SEVStore
from repro.topology.naming import device_type_from_name


class ValidationError(ValueError):
    """A draft failed the review checklist."""


class ReviewState(enum.Enum):
    DRAFT = "draft"
    IN_REVIEW = "in_review"
    PUBLISHED = "published"
    REJECTED = "rejected"


@dataclass
class SEVDraft:
    """A SEV report being authored."""

    severity: Severity
    device_name: str
    opened_at_h: float
    resolved_at_h: float
    root_causes: List[RootCause] = field(default_factory=list)
    description: str = ""
    service_impact: str = ""
    state: ReviewState = ReviewState.DRAFT

    def escalate(self, severity: Severity) -> None:
        """Raise the severity high-water mark; never lowers it."""
        if severity < self.severity:
            self.severity = severity

    def downgrade(self, severity: Severity) -> None:
        raise ValidationError(
            "a SEV's level is never downgraded to reflect progress in "
            "resolving the SEV (section 5.3)"
        )


class SEVAuthoringWorkflow:
    """Drives drafts through review into a :class:`SEVStore`."""

    def __init__(self, store: SEVStore, id_prefix: str = "sev") -> None:
        self._store = store
        self._prefix = id_prefix
        self._counter = itertools.count(len(store))

    def validate(self, draft: SEVDraft) -> List[str]:
        """Run the review checklist; returns problems (empty = passes)."""
        problems = []
        if not draft.root_causes:
            problems.append(
                "root cause category is a mandatory field; record "
                "UNDETERMINED explicitly if the cause is inconclusive"
            )
        if device_type_from_name(draft.device_name) is None:
            problems.append(
                f"device name {draft.device_name!r} does not follow the "
                "type-prefix naming convention"
            )
        if draft.resolved_at_h < draft.opened_at_h:
            problems.append("resolution precedes the incident start")
        if not draft.description:
            problems.append("the report must describe the incident")
        return problems

    def submit(self, draft: SEVDraft) -> None:
        if draft.state is not ReviewState.DRAFT:
            raise ValidationError(f"cannot submit a draft in {draft.state}")
        draft.state = ReviewState.IN_REVIEW

    def review(self, draft: SEVDraft) -> Optional[SEVReport]:
        """Review a submitted draft; publish on success.

        Returns the published report, or None when the draft is
        rejected back to the author (its state records the problems
        implicitly -- callers re-validate to list them).
        """
        if draft.state is not ReviewState.IN_REVIEW:
            raise ValidationError(f"cannot review a draft in {draft.state}")
        if self.validate(draft):
            draft.state = ReviewState.REJECTED
            return None
        report = SEVReport(
            sev_id=f"{self._prefix}-{next(self._counter):06d}",
            severity=draft.severity,
            device_name=draft.device_name,
            opened_at_h=draft.opened_at_h,
            resolved_at_h=draft.resolved_at_h,
            root_causes=tuple(draft.root_causes),
            description=draft.description,
            service_impact=draft.service_impact,
            reviewed=True,
        )
        self._store.insert(report)
        draft.state = ReviewState.PUBLISHED
        return report

    def author_and_publish(self, draft: SEVDraft) -> SEVReport:
        """Submit and review in one step; raises on rejection."""
        self.submit(draft)
        report = self.review(draft)
        if report is None:
            problems = "; ".join(self.validate(draft))
            raise ValidationError(f"draft rejected: {problems}")
        return report
