"""SQL query layer over the SEV store.

Section 4.2: "We use SQL queries to analyze the SEV report dataset for
our study."  Each method here is one such query; the analysis modules
in :mod:`repro.core` compose them into the paper's tables and figures.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.incidents.sev import RootCause, Severity
from repro.incidents.store import SEVStore
from repro.topology.devices import DeviceType


class SEVQuery:
    """Read-only analytical queries against a :class:`SEVStore`."""

    def __init__(self, store: SEVStore) -> None:
        self._conn = store.connection

    # -- counting ------------------------------------------------------

    def total(self, year: Optional[int] = None) -> int:
        if year is None:
            (n,) = self._conn.execute("SELECT COUNT(*) FROM sevs").fetchone()
        else:
            (n,) = self._conn.execute(
                "SELECT COUNT(*) FROM sevs WHERE opened_year = ?", (year,)
            ).fetchone()
        return n

    def count_by_year(self) -> Dict[int, int]:
        return dict(
            self._conn.execute(
                "SELECT opened_year, COUNT(*) FROM sevs GROUP BY opened_year"
            )
        )

    def count_by_type(self, year: Optional[int] = None) -> Dict[DeviceType, int]:
        """Incidents attributed to each device type (section 4.3.1)."""
        if year is None:
            rows = self._conn.execute(
                "SELECT device_type, COUNT(*) FROM sevs "
                "WHERE device_type IS NOT NULL GROUP BY device_type"
            )
        else:
            rows = self._conn.execute(
                "SELECT device_type, COUNT(*) FROM sevs "
                "WHERE device_type IS NOT NULL AND opened_year = ? "
                "GROUP BY device_type",
                (year,),
            )
        return {DeviceType(t): n for (t, n) in rows}

    def count_by_year_and_type(self) -> Dict[int, Dict[DeviceType, int]]:
        out: Dict[int, Dict[DeviceType, int]] = {}
        for year, t, n in self._conn.execute(
            "SELECT opened_year, device_type, COUNT(*) FROM sevs "
            "WHERE device_type IS NOT NULL "
            "GROUP BY opened_year, device_type"
        ):
            out.setdefault(year, {})[DeviceType(t)] = n
        return out

    def count_by_severity(
        self, year: Optional[int] = None
    ) -> Dict[Severity, int]:
        if year is None:
            rows = self._conn.execute(
                "SELECT severity, COUNT(*) FROM sevs GROUP BY severity"
            )
        else:
            rows = self._conn.execute(
                "SELECT severity, COUNT(*) FROM sevs "
                "WHERE opened_year = ? GROUP BY severity",
                (year,),
            )
        return {Severity(s): n for (s, n) in rows}

    def count_by_severity_and_type(
        self, year: Optional[int] = None
    ) -> Dict[Severity, Dict[DeviceType, int]]:
        """The Figure 4 cross-tabulation."""
        sql = (
            "SELECT severity, device_type, COUNT(*) FROM sevs "
            "WHERE device_type IS NOT NULL {} GROUP BY severity, device_type"
        )
        if year is None:
            rows = self._conn.execute(sql.format(""))
        else:
            rows = self._conn.execute(
                sql.format("AND opened_year = ?"), (year,)
            )
        out: Dict[Severity, Dict[DeviceType, int]] = {}
        for s, t, n in rows:
            out.setdefault(Severity(s), {})[DeviceType(t)] = n
        return out

    def count_by_year_severity_and_type(
        self,
    ) -> Dict[Tuple[int, Severity, DeviceType], int]:
        """The full year x severity x device-type cube (typed reports).

        The per-shard pushdown query behind the runtime's
        :class:`~repro.runtime.states.SeverityTallies`: one GROUP BY
        answers the Figure 4 cross-tabulation for every year at once,
        so a partitioned store folds each SQLite shard without ever
        materializing its rows.
        """
        return {
            (year, Severity(s), DeviceType(t)): n
            for year, s, t, n in self._conn.execute(
                "SELECT opened_year, severity, device_type, COUNT(*) "
                "FROM sevs WHERE device_type IS NOT NULL "
                "GROUP BY opened_year, severity, device_type"
            )
        }

    def count_by_year_and_severity(self) -> Dict[int, Dict[Severity, int]]:
        out: Dict[int, Dict[Severity, int]] = {}
        for year, s, n in self._conn.execute(
            "SELECT opened_year, severity, COUNT(*) FROM sevs "
            "GROUP BY opened_year, severity"
        ):
            out.setdefault(year, {})[Severity(s)] = n
        return out

    # -- root causes -----------------------------------------------------

    def count_by_root_cause(
        self, year: Optional[int] = None
    ) -> Dict[RootCause, int]:
        """Root-cause counts as Table 2 defines them.

        A SEV with multiple root causes counts toward multiple
        categories; a SEV with no recorded cause counts as
        undetermined.
        """
        if year is None:
            rows = self._conn.execute(
                "SELECT root_cause, COUNT(*) FROM sev_root_causes "
                "GROUP BY root_cause"
            )
            (orphans,) = self._conn.execute(
                "SELECT COUNT(*) FROM sevs s WHERE NOT EXISTS "
                "(SELECT 1 FROM sev_root_causes rc WHERE rc.sev_id = s.sev_id)"
            ).fetchone()
        else:
            rows = self._conn.execute(
                "SELECT rc.root_cause, COUNT(*) "
                "FROM sev_root_causes rc JOIN sevs s ON s.sev_id = rc.sev_id "
                "WHERE s.opened_year = ? GROUP BY rc.root_cause",
                (year,),
            )
            (orphans,) = self._conn.execute(
                "SELECT COUNT(*) FROM sevs s WHERE s.opened_year = ? "
                "AND NOT EXISTS (SELECT 1 FROM sev_root_causes rc "
                "WHERE rc.sev_id = s.sev_id)",
                (year,),
            ).fetchone()
        counts = {RootCause(c): n for (c, n) in rows}
        if orphans:
            counts[RootCause.UNDETERMINED] = (
                counts.get(RootCause.UNDETERMINED, 0) + orphans
            )
        return counts

    def count_by_root_cause_and_type(
        self,
    ) -> Dict[RootCause, Dict[DeviceType, int]]:
        """The Figure 2 cross-tabulation."""
        out: Dict[RootCause, Dict[DeviceType, int]] = {}
        for cause, t, n in self._conn.execute(
            "SELECT rc.root_cause, s.device_type, COUNT(*) "
            "FROM sev_root_causes rc JOIN sevs s ON s.sev_id = rc.sev_id "
            "WHERE s.device_type IS NOT NULL "
            "GROUP BY rc.root_cause, s.device_type"
        ):
            out.setdefault(RootCause(cause), {})[DeviceType(t)] = n
        for t, n in self._conn.execute(
            "SELECT s.device_type, COUNT(*) FROM sevs s "
            "WHERE s.device_type IS NOT NULL AND NOT EXISTS "
            "(SELECT 1 FROM sev_root_causes rc WHERE rc.sev_id = s.sev_id) "
            "GROUP BY s.device_type"
        ):
            bucket = out.setdefault(RootCause.UNDETERMINED, {})
            bucket[DeviceType(t)] = bucket.get(DeviceType(t), 0) + n
        return out

    # -- timing ----------------------------------------------------------

    def open_times(
        self, year: int, device_type: DeviceType
    ) -> List[float]:
        """Incident start timestamps, ordered, for MTBI (section 5.6)."""
        return [
            t
            for (t,) in self._conn.execute(
                "SELECT opened_at_h FROM sevs "
                "WHERE opened_year = ? AND device_type = ? "
                "ORDER BY opened_at_h",
                (year, device_type.value),
            )
        ]

    def durations_by_cell(
        self,
    ) -> Dict[Tuple[int, DeviceType], List[float]]:
        """Resolution times for every (year, device type) cell, sorted.

        One corpus scan instead of one :meth:`durations` query per
        cell — the fan-in the batch switch-reliability analysis rides
        on.  Cells come back sorted by duration, like ``durations``.
        """
        out: Dict[Tuple[int, DeviceType], List[float]] = {}
        for year, t, duration in self._conn.execute(
            "SELECT opened_year, device_type, duration_h FROM sevs "
            "WHERE device_type IS NOT NULL "
            "ORDER BY opened_year, device_type, duration_h"
        ):
            out.setdefault((year, DeviceType(t)), []).append(duration)
        return out

    def repeat_offenders(self, min_incidents: int = 2) -> List[Tuple[str, int]]:
        """Devices implicated in multiple SEVs, most-incident first.

        Section 5.6 credits slower, more thorough fixes with reducing
        "the likelihood of repeat incidents"; this query is how that
        likelihood gets measured.
        """
        if min_incidents < 1:
            raise ValueError("min_incidents must be positive")
        return [
            (name, n)
            for (name, n) in self._conn.execute(
                "SELECT device_name, COUNT(*) AS n FROM sevs "
                "GROUP BY device_name HAVING n >= ? "
                "ORDER BY n DESC, device_name",
                (min_incidents,),
            )
        ]

    def distinct_devices(self) -> int:
        """How many distinct devices ever appear in a SEV."""
        (n,) = self._conn.execute(
            "SELECT COUNT(DISTINCT device_name) FROM sevs"
        ).fetchone()
        return n

    def durations(
        self, year: Optional[int] = None, device_type: Optional[DeviceType] = None
    ) -> List[float]:
        """Incident resolution times in hours, for p75IRT (section 5.6)."""
        clauses, params = [], []  # type: Tuple[List[str], List[object]]
        if year is not None:
            clauses.append("opened_year = ?")
            params.append(year)
        if device_type is not None:
            clauses.append("device_type = ?")
            params.append(device_type.value)
        where = f"WHERE {' AND '.join(clauses)}" if clauses else ""
        return [
            d
            for (d,) in self._conn.execute(
                f"SELECT duration_h FROM sevs {where} ORDER BY duration_h",
                params,
            )
        ]
