"""Root-cause text classification and label auditing.

Section 5.1 flags a methodology risk: "Human classification of root
causes implies SEVs can be misclassified [53, 64]" (the TroubleMiner
line of work).  This module provides the audit tool that concern
implies: a transparent keyword classifier that reads a SEV's free-text
description, proposes a root cause, and measures agreement with the
author-chosen labels — Cohen's kappa plus a per-category confusion
matrix — so the "rest of our analysis does not depend on the accuracy
of root cause classification" claim can be checked rather than
assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.incidents.sev import RootCause, SEVReport

#: Keyword evidence per category.  Order within a category is
#: irrelevant; when multiple categories match, the one with the most
#: matched keywords wins (ties resolve to UNDETERMINED, mirroring how
#: reviewers treat ambiguous reports).
_KEYWORDS: Dict[RootCause, Tuple[str, ...]] = {
    RootCause.MAINTENANCE: (
        "maintenance", "upgrade", "upgrading", "firmware update",
        "software update", "drain", "decommission", "recabl",
    ),
    RootCause.HARDWARE: (
        "faulty hardware", "hardware module", "memory module", "processor",
        "optic", "fan failure", "power supply", "faulty port", "psu",
    ),
    RootCause.CONFIGURATION: (
        "misconfig", "configuration", "config change", "routing rule",
        "load balancing policy", "acl", "bgp policy", "wrong setting",
    ),
    RootCause.BUG: (
        "software bug", "firmware bug", "crash", "logical error",
        "race condition", "memory leak", "counter allocation",
        "null pointer", "assertion",
    ),
    RootCause.ACCIDENTS: (
        "wrong device", "wrong network device", "accidental",
        "unintended action", "power cycled the wrong", "disconnect",
        "mislabel", "fat-finger",
    ),
    RootCause.CAPACITY: (
        "capacity", "overload", "insufficient", "exhausted", "high load",
        "congestion",
    ),
}


@dataclass(frozen=True)
class Classification:
    """One classified description."""

    cause: RootCause
    matched_keywords: Tuple[str, ...]

    @property
    def confident(self) -> bool:
        return (self.cause is not RootCause.UNDETERMINED
                and len(self.matched_keywords) > 0)


def classify_description(description: str) -> Classification:
    """Propose a root cause from a SEV's free text."""
    text = description.lower()
    scores: Dict[RootCause, List[str]] = {}
    for cause, keywords in _KEYWORDS.items():
        hits = [kw for kw in keywords if kw in text]
        if hits:
            scores[cause] = hits
    if not scores:
        return Classification(RootCause.UNDETERMINED, ())
    best = max(scores.values(), key=len)
    winners = [c for c, hits in scores.items() if len(hits) == len(best)]
    if len(winners) > 1:
        return Classification(RootCause.UNDETERMINED,
                              tuple(sorted(best)))
    return Classification(winners[0], tuple(sorted(scores[winners[0]])))


@dataclass
class AgreementReport:
    """Author-label vs. classifier agreement over a corpus."""

    total: int = 0
    agreements: int = 0
    confusion: Dict[Tuple[RootCause, RootCause], int] = field(
        default_factory=dict
    )

    @property
    def observed_agreement(self) -> float:
        if self.total == 0:
            raise ValueError("no classified reports")
        return self.agreements / self.total

    @property
    def kappa(self) -> float:
        """Cohen's kappa: agreement corrected for chance."""
        if self.total == 0:
            raise ValueError("no classified reports")
        po = self.observed_agreement
        author_marginals: Dict[RootCause, int] = {}
        model_marginals: Dict[RootCause, int] = {}
        for (author, model), n in self.confusion.items():
            author_marginals[author] = author_marginals.get(author, 0) + n
            model_marginals[model] = model_marginals.get(model, 0) + n
        pe = sum(
            (author_marginals.get(c, 0) / self.total)
            * (model_marginals.get(c, 0) / self.total)
            for c in RootCause
        )
        if pe >= 1.0:
            return 1.0
        return (po - pe) / (1.0 - pe)

    def disagreements(self) -> List[Tuple[RootCause, RootCause, int]]:
        """(author label, classifier label, count), largest first."""
        rows = [
            (author, model, n)
            for (author, model), n in self.confusion.items()
            if author is not model
        ]
        return sorted(rows, key=lambda r: (-r[2], r[0].value, r[1].value))


def audit_labels(reports: Iterable[SEVReport],
                 skip_undetermined: bool = True) -> AgreementReport:
    """Compare author root causes with the classifier's proposals.

    Multi-cause SEVs count as agreeing when the classifier matches any
    author cause.  Author-undetermined SEVs are skipped by default:
    there is no label to audit.
    """
    report = AgreementReport()
    for sev in reports:
        author_causes = sev.effective_root_causes()
        if skip_undetermined and author_causes == (
            RootCause.UNDETERMINED,
        ):
            continue
        proposal = classify_description(sev.description).cause
        primary = author_causes[0]
        report.total += 1
        if proposal in author_causes:
            report.agreements += 1
            key = (proposal, proposal)
        else:
            key = (primary, proposal)
        report.confusion[key] = report.confusion.get(key, 0) + 1
    return report
