"""Least-squares exponential fits (section 6.1).

The paper models MTBF(p) and MTTR(p) — the mean as a function of the
percentage of entities with that mean or lower — as exponential
functions ``a * exp(b * p)`` "built ... by fitting an exponential
function using the least squares method", and reports the R² of each
fit.  Fitting ``log y = log a + b p`` by ordinary least squares is the
standard reading of that procedure and is what this module does.  R²
is reported for that linearized regression (log space): the paper's
values (an R² of 0.98 for a vendor MTTR curve whose maximum exceeds
its model prediction five-fold) are only consistent with the
log-space convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class ExponentialModel:
    """The fitted model ``y(p) = a * exp(b * p)`` with its R².

    ``degenerate`` marks a placeholder produced from a curve that
    cannot support a fit (fewer than two positive points): a flat
    model at the only observed level, never a regression output.
    """

    a: float
    b: float
    r2: float
    degenerate: bool = False

    def predict(self, p: float) -> float:
        """Evaluate the model at percentile fraction ``p`` in [0, 1]."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"percentile fraction {p} outside [0, 1]")
        return self.a * float(np.exp(self.b * p))

    def predict_many(self, ps: Sequence[float]) -> np.ndarray:
        arr = np.asarray(ps, dtype=float)
        if arr.size and (arr.min() < 0.0 or arr.max() > 1.0):
            raise ValueError("percentile fractions must lie in [0, 1]")
        return self.a * np.exp(self.b * arr)

    def __str__(self) -> str:
        rendered = (
            f"{self.a:.4g} * exp({self.b:.4g} * p)  (R^2 = {self.r2:.2f})"
        )
        if self.degenerate:
            rendered += "  [degenerate]"
        return rendered


def r_squared(observed: np.ndarray, predicted: np.ndarray) -> float:
    """Coefficient of determination in linear space."""
    observed = np.asarray(observed, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    ss_res = float(np.sum((observed - predicted) ** 2))
    ss_tot = float(np.sum((observed - observed.mean()) ** 2))
    # A constant observation (ss_tot ~ 0) is a perfect fit when the
    # residuals are at float-noise scale, not a zero-R^2 one.
    scale = float(np.sum(observed ** 2)) + 1.0
    if ss_tot <= 1e-12 * scale:
        return 1.0 if ss_res <= 1e-9 * scale else 0.0
    return 1.0 - ss_res / ss_tot


def fit_exponential_percentile(
    ps: Sequence[float], values: Sequence[float]
) -> ExponentialModel:
    """Fit ``values ~ a * exp(b * ps)`` by least squares on log values.

    ``ps`` are percentile fractions in [0, 1]; ``values`` must be
    positive (they are means of strictly positive durations).
    """
    p_arr = np.asarray(ps, dtype=float)
    v_arr = np.asarray(values, dtype=float)
    if p_arr.shape != v_arr.shape:
        raise ValueError("ps and values must have the same length")
    if p_arr.size < 2:
        raise ValueError("an exponential fit needs at least two points")
    if np.any(v_arr <= 0):
        raise ValueError("exponential fit requires strictly positive values")
    if p_arr.min() < 0.0 or p_arr.max() > 1.0:
        raise ValueError("percentile fractions must lie in [0, 1]")

    log_v = np.log(v_arr)
    b, log_a = np.polyfit(p_arr, log_v, deg=1)
    a = float(np.exp(log_a))
    r2 = r_squared(log_v, log_a + b * p_arr)
    return ExponentialModel(a=a, b=float(b), r2=r2)


def sample_from_model(
    model: ExponentialModel, n: int, jitter: float = 0.0, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw ``n`` (p, value) points from a percentile model.

    Used by the synthetic backbone generator: entity i gets percentile
    fraction p_i = (i + 0.5) / n and the model's value there, optionally
    multiplied by lognormal noise of scale ``jitter``.
    """
    if n < 1:
        raise ValueError("need at least one sample")
    rng = np.random.default_rng(seed)
    ps = (np.arange(n) + 0.5) / n
    values = model.predict_many(ps)
    if jitter > 0.0:
        values = values * np.exp(rng.normal(0.0, jitter, size=n))
    return ps, values
