"""Exponentiality testing (section 6 headline).

"We model the reliability of a diverse set of edge networks and links
... and find that time to failure and time to repair closely follow
exponential functions."  This module tests that claim on the raw
event data: Kolmogorov-Smirnov against a rate-matched exponential, and
the coefficient-of-variation diagnostic (an exponential has CV = 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np
from scipy import stats as sps


@dataclass(frozen=True)
class ExponentialityResult:
    """Outcome of testing a sample against the exponential family."""

    n: int
    mean: float
    cv: float
    ks_statistic: float
    p_value: float

    @property
    def consistent(self) -> bool:
        """Whether the sample is consistent with an exponential at the
        5% level (fails to reject)."""
        return self.p_value >= 0.05

    @property
    def cv_near_one(self) -> bool:
        """The coefficient of variation of an exponential is 1."""
        return 0.6 <= self.cv <= 1.6


def test_exponentiality(samples: Sequence[float]) -> ExponentialityResult:
    """KS-test a positive sample against Exp(mean = sample mean).

    Fitting the rate from the data makes the plain KS p-value
    optimistic (the Lilliefors effect), which is acceptable here: the
    paper's claim is "closely follow", not a sharp hypothesis test.
    """
    arr = np.asarray(list(samples), dtype=float)
    if arr.size < 8:
        raise ValueError("exponentiality testing needs >= 8 samples")
    if np.any(arr <= 0):
        raise ValueError("samples must be strictly positive durations")
    mean = float(arr.mean())
    cv = float(arr.std(ddof=1) / mean)
    ks = sps.kstest(arr, "expon", args=(0, mean))
    return ExponentialityResult(
        n=int(arr.size),
        mean=mean,
        cv=cv,
        ks_statistic=float(ks.statistic),
        p_value=float(ks.pvalue),
    )


def interarrival_times(event_times: Sequence[float]) -> List[float]:
    """Gaps between consecutive event start times (time to failure)."""
    ordered = sorted(event_times)
    if len(ordered) < 2:
        raise ValueError("need >= 2 events for inter-arrival times")
    return [b - a for a, b in zip(ordered, ordered[1:]) if b > a]
