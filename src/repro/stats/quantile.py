"""Fixed-memory streaming quantile estimators.

The batch pipeline summarizes resolution times with exact percentiles
over the full sample list (:func:`repro.stats.mttr.percentile`).  The
streaming runtime (:mod:`repro.stream`) cannot retain the corpus, so
it needs estimators whose memory does not grow with the stream:

* :class:`P2Quantile` — the classic Jain/Chlamtac P² algorithm: five
  markers track one quantile of a single stream.  Cheap and accurate,
  but two P² states cannot be merged, so it serves live single-stream
  monitoring rather than sharded aggregation.
* :class:`QuantileSketch` — a log-spaced histogram with an exact
  small-sample spillover.  While a cell has seen at most
  ``exact_budget`` samples the sketch stores them verbatim and
  percentiles are *exactly* the batch percentiles; past the budget it
  degrades to fixed bins whose relative quantile error is bounded by
  the bin width (~0.25% at the defaults).  Sketches merge
  associatively and commutatively, which is what makes the
  N-worker-equals-1-worker guarantee of :mod:`repro.stream.sharding`
  possible.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.stats.mttr import percentile

__all__ = ["P2Quantile", "QuantileSketch"]


class P2Quantile:
    """P² (piecewise-parabolic) single-quantile estimator.

    Tracks the ``q``-quantile of a stream in O(1) memory using five
    markers (Jain & Chlamtac, CACM 1985).  Until five observations
    arrive the estimate is exact.
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile {q} outside (0, 1)")
        self.q = q
        self._initial: List[float] = []
        self._heights: List[float] = []
        self._positions: List[float] = []
        self._desired: List[float] = []
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    @property
    def n(self) -> int:
        if self._heights:
            return int(self._positions[-1])
        return len(self._initial)

    def add(self, value: float) -> None:
        if not self._heights:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0 + 4.0 * inc for inc in self._increments
                ]
            return

        h, pos = self._heights, self._positions
        if value < h[0]:
            h[0] = value
            k = 0
        elif value >= h[4]:
            h[4] = value
            k = 3
        else:
            k = 0
            while value >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]

        for i in (1, 2, 3):
            d = self._desired[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                pos[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, pos = self._heights, self._positions
        return h[i] + step / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + step)
            * (h[i + 1] - h[i]) / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - step)
            * (h[i] - h[i - 1]) / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, pos = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (pos[j] - pos[i])

    def value(self) -> float:
        """The current estimate of the tracked quantile."""
        if self._heights:
            return self._heights[2]
        if not self._initial:
            raise ValueError("no observations yet")
        return percentile(self._initial, self.q)


class QuantileSketch:
    """Mergeable fixed-memory quantile sketch over non-negative values.

    Small cells (``n <= exact_budget``) keep their samples and answer
    percentile queries exactly; large cells bin samples into
    ``bins`` log-spaced buckets spanning ``[lo, hi]``, bounding the
    relative quantile error by one bucket width.  ``merge`` is
    order-independent: the final state depends only on the multiset of
    values added across all merged sketches.
    """

    FORMAT = "repro.quantile-sketch/1"

    def __init__(
        self,
        lo: float = 1e-4,
        hi: float = 1e5,
        bins: int = 8192,
        exact_budget: int = 256,
    ) -> None:
        if lo <= 0 or hi <= lo:
            raise ValueError("need 0 < lo < hi")
        if bins < 2:
            raise ValueError("need at least two bins")
        if exact_budget < 0:
            raise ValueError("exact_budget must be non-negative")
        self.lo = lo
        self.hi = hi
        self.bins = bins
        self.exact_budget = exact_budget
        self._decades = math.log10(hi / lo)
        self.n = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._counts: Dict[int, int] = {}

    # -- ingestion ---------------------------------------------------

    @property
    def is_exact(self) -> bool:
        return self.n <= self.exact_budget

    def add(self, value: float) -> None:
        if value < 0:
            raise ValueError("the sketch covers non-negative values")
        self.n += 1
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if self._counts or self.n > self.exact_budget:
            if not self._counts and self._samples:
                self._spill()
            index = self._bin(value)
            self._counts[index] = self._counts.get(index, 0) + 1
            self._samples = []
        else:
            self._samples.append(value)

    def extend(self, values: Sequence[float]) -> None:
        """Add a block of values; equivalent to ``add`` in a loop.

        The sketch is multiset-determined — its state depends only on
        the set of values added, never their framing — so the block
        path takes one pass for ``min``/``max``/negativity and bins
        with the transcendentals inlined, skipping the per-value
        method dispatch that dominates ``add``.
        """
        values = values if isinstance(values, list) else list(values)
        if not values:
            return
        block_min = min(values)
        if block_min < 0:
            raise ValueError("the sketch covers non-negative values")
        block_max = max(values)
        self.min = block_min if self.min is None else min(self.min, block_min)
        self.max = block_max if self.max is None else max(self.max, block_max)
        self.n += len(values)
        if not self._counts and self.n <= self.exact_budget:
            self._samples.extend(values)
            return
        if self._samples:
            self._spill()
        counts = self._counts
        lo, hi, bins = self.lo, self.hi, self.bins
        decades = self._decades
        log10, top = math.log10, bins - 1
        # The binning expression must stay exactly `_bin`'s — float
        # rounding is sensitive to re-association, and a 1-ulp drift
        # here would put a value in a different bucket than `add`.
        for value in values:
            clamped = lo if value < lo else (hi if value > hi else value)
            index = int(log10(clamped / lo) / decades * bins)
            if index > top:
                index = top
            counts[index] = counts.get(index, 0) + 1

    def _bin(self, value: float) -> int:
        clamped = min(max(value, self.lo), self.hi)
        index = int(math.log10(clamped / self.lo) / self._decades * self.bins)
        return min(max(index, 0), self.bins - 1)

    def _bin_center(self, index: int) -> float:
        return self.lo * 10.0 ** ((index + 0.5) * self._decades / self.bins)

    def _spill(self) -> None:
        for sample in self._samples:
            index = self._bin(sample)
            self._counts[index] = self._counts.get(index, 0) + 1
        self._samples = []

    # -- queries -----------------------------------------------------

    def quantile(self, q: float) -> float:
        """The ``q``-quantile; exact while below the sample budget."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile fraction {q} outside [0, 1]")
        if self.n == 0:
            raise ValueError("no observations yet")
        if self._samples and not self._counts:
            return percentile(self._samples, q)
        rank = q * (self.n - 1)
        lower = self._value_at(int(rank))
        upper = self._value_at(min(int(rank) + 1, self.n - 1))
        frac = rank - int(rank)
        return lower + frac * (upper - lower)

    def _value_at(self, index: int) -> float:
        """Approximate ``index``-th order statistic from the bins."""
        seen = 0
        for bin_index in sorted(self._counts):
            seen += self._counts[bin_index]
            if seen > index:
                center = self._bin_center(bin_index)
                # The extremes are tracked exactly; use them at the ends.
                if index == 0 and self.min is not None:
                    return self.min
                if index == self.n - 1 and self.max is not None:
                    return self.max
                return center
        assert self.max is not None
        return self.max

    def p75(self) -> float:
        return self.quantile(0.75)

    # -- merging -----------------------------------------------------

    def _compatible(self, other: "QuantileSketch") -> bool:
        return (
            self.lo == other.lo
            and self.hi == other.hi
            and self.bins == other.bins
            and self.exact_budget == other.exact_budget
        )

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (in place); returns self."""
        if not self._compatible(other):
            raise ValueError("cannot merge sketches with different shapes")
        if other.n == 0:
            return self
        if self.n == 0:
            self.n = other.n
            self.min, self.max = other.min, other.max
            self._samples = list(other._samples)
            self._counts = dict(other._counts)
            return self
        self.n += other.n
        assert other.min is not None and other.max is not None
        self.min = min(self.min, other.min)  # type: ignore[type-var]
        self.max = max(self.max, other.max)  # type: ignore[type-var]
        if self._counts or other._counts or self.n > self.exact_budget:
            self._spill()
            for sample in other._samples:
                index = self._bin(sample)
                self._counts[index] = self._counts.get(index, 0) + 1
            for index, count in other._counts.items():
                self._counts[index] = self._counts.get(index, 0) + count
        else:
            self._samples = sorted(self._samples + other._samples)
        return self

    # -- serialization -----------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format": self.FORMAT,
            "lo": self.lo,
            "hi": self.hi,
            "bins": self.bins,
            "exact_budget": self.exact_budget,
            "n": self.n,
            "min": self.min,
            "max": self.max,
            "samples": sorted(self._samples),
            "counts": {str(i): c for i, c in sorted(self._counts.items())},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "QuantileSketch":
        if payload.get("format") != cls.FORMAT:
            raise ValueError(
                f"not a quantile sketch snapshot: {payload.get('format')!r}"
            )
        sketch = cls(
            lo=payload["lo"],
            hi=payload["hi"],
            bins=payload["bins"],
            exact_budget=payload["exact_budget"],
        )
        sketch.n = payload["n"]
        sketch.min = payload["min"]
        sketch.max = payload["max"]
        sketch._samples = list(payload["samples"])
        sketch._counts = {
            int(i): c for i, c in payload["counts"].items()
        }
        return sketch
