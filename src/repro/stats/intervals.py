"""Outage intervals.

Backbone analyses work on intervals: a repair ticket opens when a link
goes down and closes when the vendor confirms the repair (section
4.3.2).  Edge failures are derived by intersecting the outage
intervals of an edge's links (an edge fails only when *all* its links
are down, section 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence


@dataclass(frozen=True, order=True)
class OutageInterval:
    """A closed outage interval in hours since the study epoch."""

    start_h: float
    end_h: float

    def __post_init__(self) -> None:
        if self.end_h < self.start_h:
            raise ValueError(
                f"interval ends before it starts ({self.end_h} < {self.start_h})"
            )

    @property
    def duration_h(self) -> float:
        return self.end_h - self.start_h

    def overlaps(self, other: "OutageInterval") -> bool:
        return self.start_h < other.end_h and other.start_h < self.end_h

    def intersect(self, other: "OutageInterval") -> "OutageInterval":
        if not self.overlaps(other):
            raise ValueError("intervals do not overlap")
        return OutageInterval(
            max(self.start_h, other.start_h), min(self.end_h, other.end_h)
        )


def merge_intervals(intervals: Iterable[OutageInterval]) -> List[OutageInterval]:
    """Union of intervals: merge everything that overlaps or touches."""
    ordered = sorted(intervals)
    merged: List[OutageInterval] = []
    for interval in ordered:
        if merged and interval.start_h <= merged[-1].end_h:
            last = merged.pop()
            merged.append(
                OutageInterval(last.start_h, max(last.end_h, interval.end_h))
            )
        else:
            merged.append(interval)
    return merged


def intersect_all(
    interval_sets: Sequence[Sequence[OutageInterval]],
) -> List[OutageInterval]:
    """Intervals during which *every* input set has an outage.

    This is the edge-failure condition: the periods when all of an
    edge's links are simultaneously down.
    """
    if not interval_sets:
        return []
    current = merge_intervals(interval_sets[0])
    for intervals in interval_sets[1:]:
        merged = merge_intervals(intervals)
        current = [
            a.intersect(b)
            for a in current
            for b in merged
            if a.overlaps(b)
        ]
        if not current:
            return []
    return merge_intervals(current)


def total_downtime(intervals: Iterable[OutageInterval]) -> float:
    """Total hours covered by the union of the intervals."""
    return sum(i.duration_h for i in merge_intervals(intervals))
