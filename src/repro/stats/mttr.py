"""Mean time to recovery and percentile helpers.

MTTR for an edge or vendor is the mean duration of its outages
(section 6).  The intra data center counterpart is the *incident
resolution time*, summarized at its 75th percentile (p75IRT) "to
prevent occasional months-long incident recovery times from
dominating the mean" (section 5.6).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.stats.intervals import OutageInterval


def mean_time_to_recovery(intervals: Iterable[OutageInterval]) -> float:
    """Mean outage duration in hours."""
    durations = [i.duration_h for i in intervals]
    if not durations:
        raise ValueError("MTTR needs at least one outage interval")
    return sum(durations) / len(durations)


def percentile(values: Sequence[float], fraction: float) -> float:
    """Percentile with linear interpolation between order statistics.

    ``fraction`` is in [0, 1]; ``percentile(values, 0.75)`` is the
    paper's p75.
    """
    if not values:
        raise ValueError("percentile of an empty sequence is undefined")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"percentile fraction {fraction} outside [0, 1]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    # Formulated so equal neighbours interpolate exactly (no float
    # drift above the larger of the two order statistics).
    return ordered[lo] + frac * (ordered[hi] - ordered[lo])


def p75(values: Sequence[float]) -> float:
    """The paper's p75 summary statistic (section 5.6)."""
    return percentile(values, 0.75)
