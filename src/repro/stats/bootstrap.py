"""Bootstrap confidence intervals.

The study's percentile statistics (edge MTBF p50, vendor MTTR p90, …)
are computed from a few dozen to a few hundred entities; bootstrap
resampling quantifies how much those summaries wobble, which is what
the reproduction's tolerance bands in EXPERIMENTS.md rest on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided percentile-bootstrap interval."""

    point: float
    low: float
    high: float
    confidence: float
    resamples: int

    def __post_init__(self) -> None:
        if not self.low <= self.point <= self.high:
            raise ValueError(
                f"point {self.point} outside interval "
                f"[{self.low}, {self.high}]"
            )

    @property
    def half_width(self) -> float:
        return (self.high - self.low) / 2

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high

    def __str__(self) -> str:
        return (f"{self.point:.4g} "
                f"[{self.low:.4g}, {self.high:.4g}] "
                f"@{self.confidence:.0%}")


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile bootstrap for an arbitrary statistic.

    ``statistic`` receives a resampled numpy array and returns a
    scalar.  The point estimate is the statistic of the original
    sample; when it falls outside the resampled percentile band (a
    heavily skewed statistic on a tiny sample), the band is widened to
    include it rather than reporting an incoherent interval.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size < 2:
        raise ValueError("bootstrap needs at least two observations")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if resamples < 10:
        raise ValueError("too few resamples to form an interval")

    rng = np.random.default_rng(seed)
    point = float(statistic(arr))
    stats = np.empty(resamples)
    for i in range(resamples):
        stats[i] = statistic(rng.choice(arr, size=arr.size, replace=True))
    alpha = (1.0 - confidence) / 2
    low = float(np.quantile(stats, alpha))
    high = float(np.quantile(stats, 1.0 - alpha))
    low = min(low, point)
    high = max(high, point)
    return ConfidenceInterval(point=point, low=low, high=high,
                              confidence=confidence, resamples=resamples)


def median_ci(values: Sequence[float], confidence: float = 0.95,
              resamples: int = 2000, seed: int = 0) -> ConfidenceInterval:
    """Bootstrap CI for the median (the curves' p50 anchors)."""
    return bootstrap_ci(values, lambda a: float(np.median(a)),
                        confidence, resamples, seed)


def mean_ci(values: Sequence[float], confidence: float = 0.95,
            resamples: int = 2000, seed: int = 0) -> ConfidenceInterval:
    """Bootstrap CI for the mean (Table 4's continent averages)."""
    return bootstrap_ci(values, lambda a: float(a.mean()),
                        confidence, resamples, seed)
