"""Percentile curves of per-entity means (Figures 15-18).

Each backbone figure plots a per-entity mean (an edge's MTBF, a
vendor's MTTR, ...) against "the percentage of entities with that mean
or lower".  :class:`PercentileCurve` is that construction: sort the
per-entity means ascending and place entity ``i`` of ``n`` at
percentile fraction ``(i + 1) / n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.stats.expfit import ExponentialModel, fit_exponential_percentile


@dataclass(frozen=True)
class PercentileCurve:
    """Sorted per-entity means with their percentile fractions."""

    entities: Tuple[str, ...]
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.entities) != len(self.values):
            raise ValueError("entities and values must align")
        if len(self.values) == 0:
            raise ValueError("a percentile curve needs at least one entity")
        if any(v < 0 for v in self.values):
            raise ValueError("per-entity means must be non-negative")
        if list(self.values) != sorted(self.values):
            raise ValueError("values must be sorted ascending; use "
                             "curve_of_means to construct curves")

    @property
    def fractions(self) -> Tuple[float, ...]:
        n = len(self.values)
        return tuple((i + 1) / n for i in range(n))

    def value_at(self, fraction: float) -> float:
        """The mean at (or interpolated around) a percentile fraction."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction {fraction} outside [0, 1]")
        return float(np.interp(fraction, self.fractions, self.values))

    @property
    def p50(self) -> float:
        return self.value_at(0.50)

    @property
    def p90(self) -> float:
        return self.value_at(0.90)

    @property
    def min(self) -> float:
        return self.values[0]

    @property
    def max(self) -> float:
        return self.values[-1]

    @property
    def std(self) -> float:
        return float(np.std(np.asarray(self.values)))

    def fit_exponential(self, strict: bool = True) -> ExponentialModel:
        """The paper's least-squares exponential model of the curve.

        A regression needs at least two positive points; log-space
        fitting cannot see zeros at all.  On such degenerate curves
        (a single entity, or all-zero means) the default raises a
        clear :class:`ValueError`; with ``strict=False`` the method
        instead returns a flagged flat model
        (``ExponentialModel(degenerate=True)`` pinned at the only
        positive level observed, or zero) so report renderers can
        show *something* without crashing in ``log``.
        """
        positive = [(p, v) for p, v in zip(self.fractions, self.values)
                    if v > 0]
        if len(positive) < 2:
            if strict:
                raise ValueError(
                    "not enough positive points for a fit: an exponential "
                    "model needs at least two entities with positive means "
                    f"(got {len(positive)}); pass strict=False for a "
                    "flagged degenerate model instead"
                )
            level = positive[0][1] if positive else 0.0
            return ExponentialModel(a=level, b=0.0, r2=0.0, degenerate=True)
        ps, vs = zip(*positive)
        return fit_exponential_percentile(ps, vs)

    def rows(self) -> List[Tuple[str, float, float]]:
        """(entity, fraction, value) rows, for reports."""
        return [
            (e, f, v)
            for e, f, v in zip(self.entities, self.fractions, self.values)
        ]


def curve_of_means(per_entity: Dict[str, float]) -> PercentileCurve:
    """Build a percentile curve from a per-entity mean mapping."""
    if not per_entity:
        raise ValueError("no entities to build a curve from")
    ordered = sorted(per_entity.items(), key=lambda kv: (kv[1], kv[0]))
    entities, values = zip(*ordered)
    return PercentileCurve(entities=tuple(entities), values=tuple(values))


def curve_from_samples(
    per_entity_samples: Dict[str, Sequence[float]]
) -> PercentileCurve:
    """Build a curve from raw per-entity samples (mean of each)."""
    means = {}
    for entity, samples in per_entity_samples.items():
        if not samples:
            raise ValueError(f"entity {entity!r} has no samples")
        means[entity] = sum(samples) / len(samples)
    return curve_of_means(means)
