"""Mean time between failures / incidents.

Two estimators appear in the paper:

* **MTBI by device type** (section 5.6, Figure 12) is expressed in
  *device-hours*: the population's hours of operation in a year divided
  by the incidents it produced.  That is how 2017 RSWs reach an MTBI of
  9,958,828 hours — far longer than a year — despite RSWs producing
  more than a hundred incidents.
* **MTBF per entity** (section 6, Figures 15 and 17) is the average
  time between the starts of consecutive failures of one edge or one
  vendor's links.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.stats.intervals import OutageInterval


def mean_time_between(start_times_h: Sequence[float],
                      window_h: float = 0.0) -> float:
    """Average gap between consecutive event start times.

    With fewer than two events the gap is undefined from differences
    alone; when ``window_h`` (the observation window length) is given,
    a single event yields ``window_h`` as the unbiased scale estimate,
    mirroring how a vendor with one failure in eighteen months gets an
    MTBF of about eighteen months.  Raises ValueError when no estimate
    is possible.
    """
    times = sorted(start_times_h)
    if len(times) >= 2:
        span = times[-1] - times[0]
        return span / (len(times) - 1)
    if len(times) == 1 and window_h > 0:
        return window_h
    raise ValueError("mean time between events needs >= 2 events "
                     "(or 1 event and an observation window)")


def mtbf_from_intervals(intervals: Iterable[OutageInterval],
                        window_h: float = 0.0) -> float:
    """MTBF from outage intervals, using failure start times."""
    return mean_time_between([i.start_h for i in intervals], window_h)


def mtbi_device_hours(population: int, incidents: int,
                      hours_per_year: float = 8760.0) -> float:
    """Device-hours MTBI: population-hours per incident (Figure 12).

    Returns infinity when the type produced no incidents that year (a
    device type absent from the SEV table simply has no point on the
    figure).
    """
    if population < 0 or incidents < 0:
        raise ValueError("population and incidents must be non-negative")
    if incidents == 0:
        return float("inf")
    return population * hours_per_year / incidents
