"""Statistics toolkit.

Implements the estimators the paper uses: mean time between
failures/incidents, mean time to repair, percentile curves of
per-entity means (the x-axes of Figures 15-18), least-squares
exponential fits with coefficient of determination, and the yearly
bucketing behind the longitudinal figures.
"""

from repro.stats.bootstrap import (
    ConfidenceInterval,
    bootstrap_ci,
    mean_ci,
    median_ci,
)
from repro.stats.expfit import ExponentialModel, fit_exponential_percentile
from repro.stats.exponentiality import (
    ExponentialityResult,
    interarrival_times,
    test_exponentiality,
)
from repro.stats.intervals import (
    OutageInterval,
    merge_intervals,
    total_downtime,
)
from repro.stats.mtbf import (
    mean_time_between,
    mtbf_from_intervals,
    mtbi_device_hours,
)
from repro.stats.mttr import mean_time_to_recovery, percentile
from repro.stats.percentile import PercentileCurve, curve_of_means
from repro.stats.quantile import P2Quantile, QuantileSketch
from repro.stats.timeseries import YearlyCounts, yearly_fraction

__all__ = [
    "ConfidenceInterval",
    "ExponentialModel",
    "ExponentialityResult",
    "OutageInterval",
    "P2Quantile",
    "PercentileCurve",
    "QuantileSketch",
    "YearlyCounts",
    "bootstrap_ci",
    "curve_of_means",
    "fit_exponential_percentile",
    "interarrival_times",
    "mean_ci",
    "mean_time_between",
    "mean_time_to_recovery",
    "median_ci",
    "merge_intervals",
    "mtbf_from_intervals",
    "mtbi_device_hours",
    "percentile",
    "test_exponentiality",
    "total_downtime",
    "yearly_fraction",
]
