"""Yearly time-series helpers.

The longitudinal figures (3, 5, 7-13) bucket incidents by year and
normalize by a population or by a fixed baseline year.  These helpers
implement those normalizations once so every analysis module shares
them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, TypeVar

K = TypeVar("K", bound=Hashable)


@dataclass
class YearlyCounts:
    """Counts keyed by (year, category)."""

    counts: Dict[int, Dict[Hashable, int]] = field(default_factory=dict)

    def add(self, year: int, key: Hashable, count: int = 1) -> None:
        if count < 0:
            raise ValueError("counts must be non-negative")
        self.counts.setdefault(year, {})[key] = (
            self.counts.get(year, {}).get(key, 0) + count
        )

    @property
    def years(self) -> List[int]:
        return sorted(self.counts)

    def get(self, year: int, key: Hashable) -> int:
        return self.counts.get(year, {}).get(key, 0)

    def year_total(self, year: int) -> int:
        return sum(self.counts.get(year, {}).values())

    def fraction_of_year(self, year: int, key: Hashable) -> float:
        """Share of a year's events in one category (Figure 7)."""
        total = self.year_total(year)
        if total == 0:
            return 0.0
        return self.get(year, key) / total

    def normalized_to_baseline(
        self, year: int, key: Hashable, baseline_year: int
    ) -> float:
        """Counts normalized to a fixed baseline year's total.

        Figures 8 and 9 use the total number of SEVs in 2017 as the
        fixed baseline so growth across years stays visible.
        """
        baseline = self.year_total(baseline_year)
        if baseline == 0:
            raise ValueError(f"baseline year {baseline_year} has no events")
        return self.get(year, key) / baseline

    def per_capita(
        self, year: int, key: Hashable, population: int
    ) -> float:
        """Events per member of a population (Figures 3, 5, 10).

        A category with zero population and zero events yields 0.0; a
        category with events but no population is a calibration error
        and raises.
        """
        count = self.get(year, key)
        if population == 0:
            if count == 0:
                return 0.0
            raise ValueError(
                f"{count} events for {key!r} in {year} but population is 0"
            )
        return count / population


def yearly_fraction(
    counts: Dict[int, int], baseline_year: int
) -> Dict[int, float]:
    """Normalize a year->count mapping by a fixed baseline year."""
    if baseline_year not in counts or counts[baseline_year] == 0:
        raise ValueError(f"baseline year {baseline_year} has no events")
    base = counts[baseline_year]
    return {year: n / base for year, n in counts.items()}
