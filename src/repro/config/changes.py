"""Configuration change proposals.

A change moves through the states of the section 5.1 pipeline:
proposed -> reviewed -> canaried -> deployed, with rejection possible
at review or canary.  A change carries a latent-defect flag used by
the ablation benches: defects are what the review and canary gates
exist to catch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.config.model import DeviceConfig


class ChangeState(enum.Enum):
    PROPOSED = "proposed"
    IN_REVIEW = "in_review"
    CANARY = "canary"
    DEPLOYED = "deployed"
    REJECTED = "rejected"
    ROLLED_BACK = "rolled_back"


_TRANSITIONS = {
    ChangeState.PROPOSED: {ChangeState.IN_REVIEW},
    ChangeState.IN_REVIEW: {ChangeState.CANARY, ChangeState.REJECTED,
                            ChangeState.DEPLOYED},
    ChangeState.CANARY: {ChangeState.DEPLOYED, ChangeState.REJECTED},
    ChangeState.DEPLOYED: {ChangeState.ROLLED_BACK},
    ChangeState.REJECTED: set(),
    ChangeState.ROLLED_BACK: set(),
}


@dataclass
class ChangeProposal:
    """A proposed fleet-wide configuration change."""

    change_id: str
    author: str
    description: str
    #: Function applied to each target device's current config to
    #: produce the new one.
    transform: Callable[[DeviceConfig], DeviceConfig]
    target_types: tuple
    state: ChangeState = ChangeState.PROPOSED
    #: A latent behavioural defect not visible to static validation —
    #: the kind only a canary (or production) exposes.
    latent_defect: bool = False
    history: List[ChangeState] = field(default_factory=list)
    rejection_reason: Optional[str] = None

    def advance(self, new_state: ChangeState,
                reason: Optional[str] = None) -> None:
        allowed = _TRANSITIONS[self.state]
        if new_state not in allowed:
            raise ValueError(
                f"change {self.change_id!r}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.history.append(self.state)
        self.state = new_state
        if new_state is ChangeState.REJECTED:
            self.rejection_reason = reason or "rejected"

    @property
    def terminal(self) -> bool:
        return not _TRANSITIONS[self.state]
