"""The review-and-canary deployment pipeline (section 5.1).

"At Facebook ... all configuration changes require code review and
typically get tested on a small number of switches before being
deployed to the fleet.  These practices may contribute to the lower
misconfiguration incident rate we observe compared to Wu et al."

The pipeline runs a change through three gates:

1. **static review** — ``validate_config`` on a representative device;
2. **canary** — deploy to a small sample; latent behavioural defects
   surface here with a probability that grows with the sample size;
3. **fleet rollout** — apply to every target device.

Defects that slip through every gate become configuration-caused
incidents; the ``ReviewPolicy`` toggles let the ablation bench measure
how much each gate buys.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.config.changes import ChangeProposal, ChangeState
from repro.config.model import DeviceConfig, apply_config, validate_config


@dataclass(frozen=True)
class ReviewPolicy:
    """Which gates are active, and how hard the canary looks."""

    require_review: bool = True
    canary_size: int = 3
    #: Probability that a canaried device surfaces a latent defect.
    canary_detection_per_device: float = 0.6

    def __post_init__(self) -> None:
        if self.canary_size < 0:
            raise ValueError("canary_size must be non-negative")
        if not 0.0 <= self.canary_detection_per_device <= 1.0:
            raise ValueError("detection probability outside [0, 1]")


@dataclass
class PipelineReport:
    """Outcome counters across a batch of changes."""

    deployed: int = 0
    rejected_in_review: int = 0
    rejected_in_canary: int = 0
    defects_shipped: int = 0
    incidents: List[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return (self.deployed + self.rejected_in_review
                + self.rejected_in_canary)

    @property
    def defect_escape_rate(self) -> float:
        if self.total == 0:
            return 0.0
        return self.defects_shipped / self.total


class DeploymentPipeline:
    """Drives configuration changes onto a device fleet."""

    def __init__(
        self,
        configs: Dict[str, DeviceConfig],
        device_types: Dict[str, "object"],
        policy: Optional[ReviewPolicy] = None,
        seed: int = 0,
    ) -> None:
        if set(configs) != set(device_types):
            raise ValueError("configs and device_types must cover the "
                             "same devices")
        self._configs = dict(configs)
        self._types = dict(device_types)
        self.policy = policy or ReviewPolicy()
        self._rng = random.Random(seed)

    @property
    def configs(self) -> Dict[str, DeviceConfig]:
        return dict(self._configs)

    def targets_of(self, change: ChangeProposal) -> List[str]:
        return sorted(
            name for name, t in self._types.items()
            if t in change.target_types
        )

    def process(self, change: ChangeProposal,
                report: Optional[PipelineReport] = None) -> PipelineReport:
        """Run one change through every active gate."""
        report = report or PipelineReport()
        targets = self.targets_of(change)
        if not targets:
            change.advance(ChangeState.IN_REVIEW)
            change.advance(ChangeState.REJECTED, "no target devices")
            report.rejected_in_review += 1
            return report

        change.advance(ChangeState.IN_REVIEW)

        # Gate 1: static review on a representative target.
        if self.policy.require_review:
            sample = self._configs[targets[0]]
            problems = validate_config(change.transform(sample))
            if problems:
                change.advance(ChangeState.REJECTED, "; ".join(problems))
                report.rejected_in_review += 1
                return report

        # Gate 2: canary on a small sample.
        if self.policy.canary_size > 0:
            change.advance(ChangeState.CANARY)
            canaries = targets[: self.policy.canary_size]
            caught = change.latent_defect and any(
                self._rng.random() < self.policy.canary_detection_per_device
                for _ in canaries
            )
            if caught:
                change.advance(ChangeState.REJECTED,
                               "canary surfaced a behavioural defect")
                report.rejected_in_canary += 1
                return report
        else:
            # Without a canary the change goes straight to the fleet.
            pass

        # Gate 3: fleet rollout.
        for name in targets:
            self._configs[name] = apply_config(
                self._configs[name], change.transform(self._configs[name])
            )
        change.advance(ChangeState.DEPLOYED)
        report.deployed += 1
        statically_broken = any(
            validate_config(self._configs[name]) for name in targets
        )
        if change.latent_defect or statically_broken:
            report.defects_shipped += 1
            report.incidents.append(change.change_id)
        return report

    def process_batch(self, changes: List[ChangeProposal]) -> PipelineReport:
        report = PipelineReport()
        for change in changes:
            self.process(change, report)
        return report

    def rollback(self, change: ChangeProposal,
                 previous: Dict[str, DeviceConfig]) -> None:
        """Restore saved configs after a shipped defect."""
        if change.state is not ChangeState.DEPLOYED:
            raise ValueError("only deployed changes roll back")
        missing = set(self.targets_of(change)) - set(previous)
        if missing:
            raise ValueError(f"no saved configs for {sorted(missing)}")
        for name in self.targets_of(change):
            self._configs[name] = previous[name]
        change.advance(ChangeState.ROLLED_BACK)
