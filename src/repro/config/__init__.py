"""Network configuration management substrate.

Section 5.1 credits operational practice for Facebook's comparatively
low misconfiguration incident rate: "all configuration changes require
code review and typically get tested on a small number of switches
before being deployed to the fleet" — in contrast with Wu et al.,
where configuration dominates the incident mix (38%).

This package models that pipeline: device configurations, change
proposals, mandatory code review, canary deployment to a small switch
sample, and fleet-wide rollout, with defect detection at each gate.
"""

from repro.config.model import (
    ConfigError,
    DeviceConfig,
    RoutingRule,
    validate_config,
)
from repro.config.changes import ChangeProposal, ChangeState
from repro.config.pipeline import (
    DeploymentPipeline,
    PipelineReport,
    ReviewPolicy,
)

__all__ = [
    "ChangeProposal",
    "ChangeState",
    "ConfigError",
    "DeploymentPipeline",
    "DeviceConfig",
    "PipelineReport",
    "ReviewPolicy",
    "RoutingRule",
    "validate_config",
]
