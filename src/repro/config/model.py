"""Device configuration model.

A minimal but real switch configuration: interface states, routing
rules, and the properties whose violation produces the incident
classes Table 2 lists under *configuration* ("routing rules blocking
production traffic") and the section 4.2 SEV1 example (a load
balancing policy that routes everything onto one path).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional


class ConfigError(ValueError):
    """A configuration failed validation."""


@dataclass(frozen=True)
class RoutingRule:
    """One routing rule: a prefix forwarded to a set of next hops."""

    prefix: str
    next_hops: tuple
    action: str = "forward"  # "forward" | "drop"
    weight: int = 1

    def __post_init__(self) -> None:
        if self.action not in ("forward", "drop"):
            raise ConfigError(f"unknown action {self.action!r}")
        if self.action == "forward" and not self.next_hops:
            raise ConfigError(
                f"rule for {self.prefix!r} forwards to no next hops"
            )
        if self.weight < 1:
            raise ConfigError("rule weight must be positive")


@dataclass(frozen=True)
class DeviceConfig:
    """A versioned switch configuration."""

    device_name: str
    version: int = 1
    interfaces_enabled: Dict[int, bool] = field(default_factory=dict)
    rules: tuple = ()
    load_balance_paths: int = 4

    def with_rules(self, rules: List[RoutingRule]) -> "DeviceConfig":
        return replace(self, rules=tuple(rules), version=self.version + 1)

    def with_load_balance_paths(self, paths: int) -> "DeviceConfig":
        return replace(self, load_balance_paths=paths,
                       version=self.version + 1)

    def with_interface(self, index: int, enabled: bool) -> "DeviceConfig":
        interfaces = dict(self.interfaces_enabled)
        interfaces[index] = enabled
        return replace(self, interfaces_enabled=interfaces,
                       version=self.version + 1)


#: Production prefixes that must never be dropped (the Table 2
#: "routing rules blocking production traffic" check).
PRODUCTION_PREFIXES = ("10.0.0.0/8",)


def validate_config(config: DeviceConfig) -> List[str]:
    """Static checks a review or canary would run; empty = clean.

    Detects the misconfiguration classes the paper describes:

    * a drop rule covering production traffic;
    * a load-balancing policy concentrating traffic on a single path
      (the section 4.2 SEV1: "a DR began routing traffic on a single
      path, overloading the ports associated with the path");
    * all interfaces administratively disabled (isolated device);
    * duplicate rules for one prefix with conflicting actions.
    """
    problems = []

    for rule in config.rules:
        if rule.action == "drop" and rule.prefix in PRODUCTION_PREFIXES:
            problems.append(
                f"rule drops production prefix {rule.prefix}"
            )

    if config.load_balance_paths < 2:
        problems.append(
            "load balancing policy concentrates traffic on "
            f"{config.load_balance_paths} path(s)"
        )

    if config.interfaces_enabled and not any(
        config.interfaces_enabled.values()
    ):
        problems.append("every interface is administratively disabled")

    by_prefix: Dict[str, set] = {}
    for rule in config.rules:
        by_prefix.setdefault(rule.prefix, set()).add(rule.action)
    for prefix, actions in by_prefix.items():
        if len(actions) > 1:
            problems.append(f"conflicting actions for prefix {prefix}")

    return problems


def apply_config(
    current: Optional[DeviceConfig], new: DeviceConfig
) -> DeviceConfig:
    """Apply a new configuration version; versions must move forward."""
    if current is not None and new.version <= current.version:
        raise ConfigError(
            f"stale config for {new.device_name!r}: version "
            f"{new.version} <= deployed {current.version}"
        )
    return new
