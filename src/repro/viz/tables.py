"""Aligned text tables."""

from __future__ import annotations

from typing import List, Sequence


def _render_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 10_000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned, pipe-separated table.

    Numeric cells are compacted; column widths fit the widest cell.
    """
    if not headers:
        raise ValueError("a table needs headers")
    rendered: List[List[str]] = [[_render_cell(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} "
                "headers"
            )
        rendered.append([_render_cell(c) for c in row])

    widths = [
        max(len(r[i]) for r in rendered) for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        cell.ljust(widths[i]) for i, cell in enumerate(rendered[0])
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered[1:]:
        lines.append(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)
