"""Plain-text rendering of the paper's tables and figures.

The benchmark harness prints the same rows and series the paper
reports; these helpers render them as aligned tables and ASCII bar
charts so a terminal diff against the paper is possible.  The stream
dashboard renders the live counterparts from incremental aggregates.
"""

from repro.viz.tables import format_table
from repro.viz.ascii import bar_chart, series_chart
from repro.viz.grid_view import axis_table, grid_table
from repro.viz.report_builder import build_report, collect_artifacts
from repro.viz.stream_view import stream_dashboard
from repro.viz.survivability_view import (
    survivability_curve_table,
    survivability_table,
)
from repro.viz.ticket_view import (
    duration_table,
    scorecard_table,
    ticket_dashboard,
)

__all__ = [
    "axis_table",
    "bar_chart",
    "build_report",
    "collect_artifacts",
    "duration_table",
    "format_table",
    "grid_table",
    "scorecard_table",
    "series_chart",
    "stream_dashboard",
    "survivability_curve_table",
    "survivability_table",
    "ticket_dashboard",
]
