"""Plain-text dashboard over streamed ticket aggregates.

The section 6 counterpart of :mod:`repro.viz.stream_view`: renders a
live snapshot of the ticket-domain fold states
(:class:`~repro.runtime.states.OutageTallies` and
:class:`~repro.runtime.states.TicketDurationSketches`) as stacked text
tables — per-vendor scorecards and repair-duration percentiles.  The
same two table renderers serve the batch report
(:class:`~repro.core.reports.BackboneStudyReport`), so the streamed
and batch views of one corpus are literally the same text.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.viz.tables import format_table

__all__ = ["duration_table", "scorecard_table", "ticket_dashboard"]


def scorecard_table(cards: Dict[str, object]) -> str:
    """Vendor scorecards as an aligned table, best availability first."""
    ranked = sorted(
        cards.values(), key=lambda c: (-c.availability, c.vendor)
    )
    return format_table(
        ["Vendor", "Tickets", "MTBF (h)", "MTTR (h)", "Avail.", "Grade"],
        [
            [card.vendor, card.tickets, f"{card.mtbf_h:.0f}",
             f"{card.mttr_h:.1f}", f"{card.availability:.3%}", card.grade]
            for card in ranked
        ],
        title="Vendor scorecards (section 6.2)",
    )


def duration_table(durations) -> str:
    """Repair-duration percentiles and the ticket-type mix."""
    rows: List[List[object]] = [
        ["p50", f"{durations.p50_h:.1f}"],
        ["p90", f"{durations.p90_h:.1f}"],
        ["p99", f"{durations.p99_h:.1f}"],
    ]
    for ticket_type, count in sorted(durations.by_type.items()):
        rows.append([f"{ticket_type} tickets", count])
    return format_table(
        ["Repair durations", f"{durations.tickets} tickets"],
        rows,
        title="Repair durations (section 6, streamed percentiles)",
    )


def ticket_dashboard(
    outages,
    durations,
    window_h: Optional[float] = None,
) -> str:
    """Render a streamed ticket snapshot as stacked text tables.

    ``outages``/``durations`` are the two ticket fold states; the
    observation window defaults to the newest completion folded so far
    (the live "study window ends now" convention).
    """
    from repro.backbone.scorecards import scorecards_from_outages

    if outages.tickets == 0:
        return "stream: no completed tickets ingested yet"
    window = window_h if window_h is not None else outages.max_end_h
    sections = [
        f"stream: {outages.tickets} tickets over "
        f"{len(outages.by_link)} links and {len(outages.by_vendor)} "
        f"vendors, window {window:.0f} h"
    ]
    cards = scorecards_from_outages(outages.sorted_by_vendor(), window)
    if cards:
        sections.append(scorecard_table(cards))
    if durations is not None and durations.tickets:
        sections.append(duration_table(durations.summary()))
    return "\n\n".join(sections)
