"""Comparative views of a what-if grid report.

:func:`grid_table` lists every lattice cell with its axis parameters,
headline metrics, and report digest; :func:`axis_table` pivots one
axis against the rest — the "incident rate vs rollout pace" view: rows
are the swept axis' values, columns are the remaining-axis
combinations, cells are one chosen metric.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.viz.tables import format_table

__all__ = ["axis_table", "grid_table"]


def grid_table(report: Dict[str, Any], title: str = "What-if grid") -> str:
    """One row per lattice cell: parameters, metrics, report digest."""
    cells = report.get("cells", [])
    if not cells:
        raise ValueError("the grid report has no cells")
    axes = sorted(report.get("axes", {}))
    metric_keys = sorted(cells[0].get("metrics", {}))
    headers = ["Cell", *axes, *metric_keys, "Report digest"]
    rows = [
        [
            cell["cell"],
            *(cell["params"].get(axis, "") for axis in axes),
            *(cell["metrics"].get(key, "") for key in metric_keys),
            cell["report_digest"][:12],
        ]
        for cell in cells
    ]
    return format_table(headers, rows, title=title)


def axis_table(report: Dict[str, Any], axis: str, metric: str,
               title: str = "") -> str:
    """Pivot ``metric`` with ``axis`` as rows, other axes as columns.

    With one axis the table is a two-column series; with more, each
    remaining-axis combination becomes a column labelled by its
    parameters, which is how "incident rate vs rollout pace" reads
    when a hazard axis is swept alongside ``fabric_year``.
    """
    axes = report.get("axes", {})
    if axis not in axes:
        raise ValueError(
            f"unknown axis {axis!r}; the grid swept {sorted(axes)}"
        )
    others = [a for a in sorted(axes) if a != axis]

    def column_label(params: Dict[str, Any]) -> str:
        if not others:
            return metric
        return ", ".join(f"{a}={params[a]}" for a in others)

    columns: List[str] = []
    values: Dict[Any, Dict[str, Any]] = {}
    for cell in report.get("cells", []):
        label = column_label(cell["params"])
        if label not in columns:
            columns.append(label)
        row_key = cell["params"][axis]
        values.setdefault(row_key, {})[label] = (
            cell["metrics"].get(metric, "")
        )
    rows = [
        [row_key, *(values[row_key].get(label, "") for label in columns)]
        for row_key in sorted(values)
    ]
    return format_table(
        [axis, *columns], rows,
        title=title or f"{metric} vs {axis}",
    )
