"""Plain-text dashboard over streaming aggregates.

Renders the live counterparts of the paper's headline artifacts from a
:class:`~repro.stream.aggregates.StreamAggregates` snapshot: yearly
totals (Figure 8), the root-cause mix (Table 2), the latest year's
severity mix (Figure 4), and the latest year's per-type counts, rates,
MTBI, and streamed p75IRT (Figures 3, 7, 12, 13).
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.fleet.population import FleetModel
from repro.incidents.sev import RootCause, Severity
from repro.topology.devices import DeviceType
from repro.viz.tables import format_table


def stream_dashboard(aggregates, fleet: Optional[FleetModel] = None) -> str:
    """Render a streaming aggregate snapshot as stacked text tables.

    ``fleet`` enables the population-normalized columns (incident rate
    and MTBI); without one, the dashboard shows pure stream-derived
    numbers only.
    """
    if aggregates.events == 0:
        return "stream: no events ingested yet"
    years = aggregates.years
    latest = years[-1]
    sections: List[str] = [
        f"stream: {aggregates.events} events ingested, "
        f"years {years[0]}-{latest}"
    ]

    sections.append(format_table(
        ["Year", "SEVs"],
        [[year, aggregates.year_total(year)] for year in years],
        title="Incidents per year",
    ))

    sections.append(format_table(
        ["Root cause", "Share"],
        [
            [cause.value, f"{aggregates.root_cause_fraction(cause):.1%}"]
            for cause in RootCause
        ],
        title="Root causes (Table 2, streamed)",
    ))

    sections.append(format_table(
        ["Severity", "Share"],
        [
            [severity.label, f"{aggregates.severity_share(latest, severity):.1%}"]
            for severity in sorted(Severity)
        ],
        title=f"Severity mix, {latest} (Figure 4, streamed)",
    ))

    headers = ["Device", "SEVs", "p75 IRT (h)"]
    if fleet is not None:
        headers += ["Rate", "MTBI (h)"]
    rows = []
    for device_type in DeviceType:
        count = aggregates.incident_count(latest, device_type)
        if count == 0:
            continue
        row: List[object] = [
            device_type.value,
            count,
            f"{aggregates.p75_irt(latest, device_type):.3g}",
        ]
        if fleet is not None:
            population = fleet.count(latest, device_type)
            if population:
                mtbi = aggregates.mtbi_h(latest, device_type, fleet)
                row += [
                    f"{aggregates.incident_rate(latest, device_type, fleet):.3g}",
                    f"{mtbi:.3g}" if math.isfinite(mtbi) else "inf",
                ]
            else:
                row += ["-", "-"]
        rows.append(row)
    sections.append(format_table(
        headers, rows,
        title=f"Per-type reliability, {latest} (streamed)",
    ))
    return "\n\n".join(sections)
