"""Plain-text rendering of the survivability study.

Renders the per-design survivability curves
(:class:`~repro.survivability.analysis.SurvivabilityCurves`) and the
cross-design summary as stacked aligned tables — the terminal version
of the related work's survivability figures (curves of connectivity /
capacity remaining vs. fraction of devices failed).
"""

from __future__ import annotations

from typing import List

from repro.viz.tables import format_table

__all__ = ["survivability_curve_table", "survivability_table"]


def survivability_curve_table(curves, title: str) -> str:
    """One curve family as a table: failed % rows, one design column."""
    designs = list(curves.designs)
    by_design = {d: curves.curve(d) for d in designs}
    percents: List[int] = sorted({
        point.fraction_pct
        for curve in curves.curves
        for point in curve.points
    })
    rows = []
    for pct in percents:
        row: List[object] = [f"{pct}%"]
        for design in designs:
            try:
                row.append(f"{by_design[design].value_at(pct):.1%}")
            except KeyError:
                row.append("-")
        rows.append(row)
    return format_table(["Failed", *designs], rows, title=title)


def survivability_table(report) -> str:
    """The full survivability report as stacked text tables."""
    sections = [
        survivability_curve_table(
            report.connectivity,
            "Survivability: RSWs connected to a Core vs. fraction failed",
        ),
        survivability_curve_table(
            report.capacity,
            "Survivability: links surviving vs. fraction failed",
        ),
        format_table(
            ["Design", "Connectivity AUC", "Capacity AUC", "50% conn. at"],
            [
                [row.design,
                 f"{row.connectivity_auc:.1%}",
                 f"{row.capacity_auc:.1%}",
                 (f"{row.half_connectivity_pct}%"
                  if row.half_connectivity_pct is not None else "-")]
                for row in report.summary.designs
            ],
            title=(
                "Design summary (fabric advantage: "
                f"{report.summary.fabric_advantage:+.1%})"
            ),
        ),
    ]
    return "\n\n".join(sections)
