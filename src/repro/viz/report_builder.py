"""Combine bench artifacts into one report document.

Every bench writes its rendered table/series to ``benchmarks/out/``;
this utility stitches them into a single Markdown document ordered by
experiment id, producing the side-by-side-with-the-paper artifact.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

PathLike = Union[str, Path]

#: Render order: tables, figures by number, then the extras.
_ORDER = (
    "table1", "table2", "table3", "table4",
    "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
    "fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
    "fig17", "fig18",
    "masking", "exponentiality", "redundancy", "label_audit",
    "ablation",
)


def _sort_key(path: Path) -> tuple:
    name = path.stem
    for rank, prefix in enumerate(_ORDER):
        if name.startswith(prefix):
            return (rank, name)
    return (len(_ORDER), name)


def collect_artifacts(directory: PathLike) -> List[Path]:
    """The artifact files in render order."""
    base = Path(directory)
    if not base.is_dir():
        raise FileNotFoundError(f"no artifact directory at {base}")
    return sorted(base.glob("*.txt"), key=_sort_key)


def build_report(
    directory: PathLike,
    title: str = "Reproduction report",
    out_path: Optional[PathLike] = None,
) -> str:
    """Build (and optionally write) the combined Markdown report."""
    artifacts = collect_artifacts(directory)
    if not artifacts:
        raise FileNotFoundError(
            f"{directory} has no artifacts; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    sections = [f"# {title}", ""]
    for path in artifacts:
        body = path.read_text().rstrip()
        sections.append(f"## {path.stem}")
        sections.append("")
        sections.append("```")
        sections.append(body)
        sections.append("```")
        sections.append("")
    text = "\n".join(sections)
    if out_path is not None:
        Path(out_path).write_text(text)
    return text
