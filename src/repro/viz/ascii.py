"""ASCII charts for the figures."""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple


def bar_chart(
    values: Dict[str, float], width: int = 40, title: str = ""
) -> str:
    """Horizontal bars scaled to the largest value."""
    if not values:
        raise ValueError("nothing to chart")
    if width < 1:
        raise ValueError("width must be positive")
    peak = max(values.values())
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for key, value in values.items():
        if value < 0:
            raise ValueError("bar charts need non-negative values")
        bar = "#" * (round(width * value / peak) if peak > 0 else 0)
        lines.append(f"{key.ljust(label_w)} | {bar} {value:.4g}")
    return "\n".join(lines)


def series_chart(
    points: Sequence[Tuple[float, float]],
    height: int = 10,
    width: int = 60,
    log_y: bool = False,
    title: str = "",
) -> str:
    """A scatter rendering of (x, y) points on a character grid."""
    if not points:
        raise ValueError("nothing to chart")
    if height < 2 or width < 2:
        raise ValueError("the grid must be at least 2x2")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if log_y:
        if any(y <= 0 for y in ys):
            raise ValueError("log scale needs positive y values")
        ys = [math.log10(y) for y in ys]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = round((x - x_lo) / x_span * (width - 1))
        row = round((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = "*"

    lines = [title] if title else []
    y_label_hi = f"{(10 ** y_hi if log_y else y_hi):.3g}"
    y_label_lo = f"{(10 ** y_lo if log_y else y_lo):.3g}"
    lines.append(f"y max {y_label_hi}")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"y min {y_label_lo}; x {x_lo:.3g} .. {x_hi:.3g}")
    return "\n".join(lines)
