"""Published constants from Meza et al., IMC 2018.

Every number the paper publishes lives here, keyed to the section, table,
or figure where it appears.  The analysis pipeline (``repro.core``) never
imports this module; it is used only by

* the synthetic-workload generators (``repro.simulation``,
  ``repro.backbone``) to calibrate the corpus they emit, and
* the benchmark harness, to compare measured values against the paper.

Keeping the published targets out of the analysis code is what makes the
reproduction meaningful: the pipeline recovers these numbers from data,
it does not copy them.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Study scope (Abstract, section 4.3)
# ---------------------------------------------------------------------------

#: Years covered by the intra data center SEV study (section 4.2).
INTRA_STUDY_YEARS = tuple(range(2011, 2018))

#: First and last month of the inter data center (backbone) study
#: (section 4.3.2): October 2016 through April 2018, eighteen months.
BACKBONE_STUDY_START = (2016, 10)
BACKBONE_STUDY_END = (2018, 4)
BACKBONE_STUDY_MONTHS = 18

#: Year the data center fabric design began to be deployed (sections 5.3,
#: 5.5; marked "Fabric deployed" on Figures 3, 5, 7-13).
FABRIC_DEPLOYMENT_YEAR = 2015

#: Year automated repair of RSWs (later FSWs and some Cores) began
#: (section 4.1.1, marked on Figure 3).
AUTOMATED_REPAIR_YEAR = 2013

# ---------------------------------------------------------------------------
# Table 1 -- automated remediation (section 4.1.3)
# ---------------------------------------------------------------------------

#: Fraction of issues fixed by automated remediation, per device type.
REPAIR_RATIO = {"core": 0.75, "fsw": 0.995, "rsw": 0.997}

#: Average repair priority (0 = highest, 3 = lowest).
REPAIR_AVG_PRIORITY = {"core": 0.0, "fsw": 2.25, "rsw": 2.22}

#: Average wait before the scheduled repair runs, in seconds.
REPAIR_AVG_WAIT_S = {
    "core": 4 * 60.0,          # four minutes
    "fsw": 3 * 24 * 3600.0,    # three days
    "rsw": 1 * 24 * 3600.0,    # one day
}

#: Average time the repair itself takes, in seconds.
REPAIR_AVG_DURATION_S = {"core": 30.1, "fsw": 4.45, "rsw": 2.91}

#: Escalation ratios for April 2018 (section 4.1.2): one out of every N
#: issues could not be fixed automatically and needed a human.
ESCALATION_ONE_IN = {"rsw": 397, "fsw": 214, "core": 4}

#: Automated repair action mix (section 4.1.3): the most frequent 90% of
#: automated repairs, by remediation share.
REMEDIATION_ACTION_MIX = {
    "port_cycle": 0.50,        # port ping failure -> turn port off and on
    "config_backup": 0.324,    # config backup failure -> restart service
    "fan_alert": 0.045,        # fan failure -> alert technician
    "liveness_task": 0.040,    # device unreachable -> open technician task
    "other": 0.091,            # remaining long tail
}

# ---------------------------------------------------------------------------
# Table 2 -- root causes of intra data center incidents, 2011-2018
# ---------------------------------------------------------------------------

ROOT_CAUSE_DISTRIBUTION = {
    "maintenance": 0.17,
    "hardware": 0.13,
    "configuration": 0.13,
    "bug": 0.12,
    "accidents": 0.10,
    "capacity": 0.05,
    "undetermined": 0.29,
}

# ---------------------------------------------------------------------------
# Figures 3-8 -- incident rates, severity, distribution
# ---------------------------------------------------------------------------

#: Share of 2017 service-level incidents by device type (sections 5.4-5.5,
#: Figures 4 and 7).  The paper publishes Core ~34%, RSW ~28%, FSW 8%,
#: ESW 3%, SSW 2% explicitly; the remaining ~25% belongs to the cluster
#: types.  The CSA/CSW split of that remainder is a calibration choice
#: (CSA near zero, consistent with Figure 3's post-2015 CSA rate
#: collapse and the tiny CSA population).
INCIDENT_SHARE_2017 = {
    "core": 0.34,
    "rsw": 0.28,
    "fsw": 0.08,
    "esw": 0.03,
    "ssw": 0.02,
    "csa": 0.008,
    "csw": 0.242,
}

#: 2017 severity mix across all network SEVs (Figure 4: N=82%, 13%, 5%).
SEVERITY_MIX_2017 = {"sev3": 0.82, "sev2": 0.13, "sev1": 0.05}

#: Per-device severity mixes called out in section 5.3.
SEVERITY_MIX_CORE = {"sev3": 0.81, "sev2": 0.15, "sev1": 0.04}
SEVERITY_MIX_RSW = {"sev3": 0.85, "sev2": 0.10, "sev1": 0.05}

#: CSA incident rate exceeded 1.0 in 2013 and 2014 (section 5.2):
#: about 1.7 and 1.5 incidents per device respectively.
CSA_INCIDENT_RATE = {2013: 1.7, 2014: 1.5}

#: Total network device SEVs grew 9.4x from 2011 to 2017 (section 5.4).
SEV_GROWTH_2011_TO_2017 = 9.4

#: In 2017 fabric devices produced about half the incidents of cluster
#: devices (section 5.5).
FABRIC_TO_CLUSTER_INCIDENTS_2017 = 0.50

#: Annual incident rate for ESW/SSW/FSW/RSW/CSW in 2017 was below 1%
#: (section 5.2).
LOW_RATE_DEVICES_2017_CEILING = 0.01

# ---------------------------------------------------------------------------
# Figure 12 -- mean time between incidents (section 5.6)
# ---------------------------------------------------------------------------

#: 2017 MTBI extremes in device-hours: Cores lowest, RSWs highest.
MTBI_2017_HOURS = {"core": 39_495.0, "rsw": 9_958_828.0}

#: 2017 network-design MTBI averages in device-hours (fabric fails 3.2x
#: less often than cluster).
MTBI_2017_FABRIC_HOURS = 2_636_818.0
MTBI_2017_CLUSTER_HOURS = 822_518.0
FABRIC_MTBI_ADVANTAGE = 3.2

# ---------------------------------------------------------------------------
# Section 6.1 -- edge reliability
# ---------------------------------------------------------------------------

#: Edge MTBF percentile anchors, in hours.
EDGE_MTBF_P50_H = 1710.0
EDGE_MTBF_P90_H = 3521.0
EDGE_MTBF_STD_H = 1320.0
EDGE_MTBF_MIN_H = 253.0
EDGE_MTBF_MAX_H = 8025.0

#: Fitted model MTBF_edge(p) = 462.88 * exp(2.3408 * p), R^2 = 0.94.
EDGE_MTBF_MODEL = {"a": 462.88, "b": 2.3408, "r2": 0.94}

#: Edge MTTR percentile anchors, in hours.
EDGE_MTTR_P50_H = 10.0
EDGE_MTTR_P90_H = 71.0
EDGE_MTTR_STD_H = 112.0
EDGE_MTTR_MIN_H = 1.0
EDGE_MTTR_MAX_H = 608.0

#: Fitted model MTTR_edge(p) = 1.513 * exp(4.256 * p), R^2 = 0.87.
EDGE_MTTR_MODEL = {"a": 1.513, "b": 4.256, "r2": 0.87}

#: Minimum links per edge (section 6): an edge connects with at least
#: three links and fails only when all of them are down.
MIN_LINKS_PER_EDGE = 3

# ---------------------------------------------------------------------------
# Section 6.2 -- link reliability by fiber vendor
# ---------------------------------------------------------------------------

VENDOR_MTBF_P50_H = 2326.0
VENDOR_MTBF_P90_H = 5709.0
VENDOR_MTBF_STD_H = 2207.0
VENDOR_MTBF_MIN_H = 2.0
VENDOR_MTBF_MAX_H = 11_721.0

VENDOR_MTTR_P50_H = 13.0
VENDOR_MTTR_P90_H = 60.0
VENDOR_MTTR_STD_H = 56.0
VENDOR_MTTR_MIN_H = 1.0
VENDOR_MTTR_MAX_H = 744.0

#: Fitted model MTTR_vendor(p) = 1.1345 * exp(4.7709 * p), R^2 = 0.98.
VENDOR_MTTR_MODEL = {"a": 1.1345, "b": 4.7709, "r2": 0.98}

# ---------------------------------------------------------------------------
# Table 4 -- edge reliability by continent (section 6.3)
# ---------------------------------------------------------------------------

#: Per-continent edge share, average MTBF (hours), average MTTR (hours).
CONTINENT_TABLE = {
    "north_america": {"share": 0.37, "mtbf_h": 1848.0, "mttr_h": 17.0},
    "europe": {"share": 0.33, "mtbf_h": 2029.0, "mttr_h": 19.0},
    "asia": {"share": 0.14, "mtbf_h": 2352.0, "mttr_h": 11.0},
    "south_america": {"share": 0.10, "mtbf_h": 1579.0, "mttr_h": 9.0},
    "africa": {"share": 0.04, "mtbf_h": 5400.0, "mttr_h": 22.0},
    "australia": {"share": 0.02, "mtbf_h": 1642.0, "mttr_h": 2.0},
}

#: Standard deviation of continent-average edge MTTR (section 6.3).
CONTINENT_MTTR_STD_H = 7.0

# ---------------------------------------------------------------------------
# Figure 6 -- employees vs. switches (section 5.3)
# ---------------------------------------------------------------------------

#: Full-time Facebook employees per year (Statista [71], as used by the
#: paper to normalize Figure 6; values are public).
EMPLOYEES_BY_YEAR = {
    2011: 3200,
    2012: 4619,
    2013: 6337,
    2014: 9199,
    2015: 12_691,
    2016: 17_048,
    2017: 25_105,
}
