"""Service-level substrate.

The paper's central argument (section 2) is that network reliability
can only be understood through its *service-level effects*: most
device- and link-level faults are masked by redundancy, path
diversity, and fault-tolerance logic, and the remainder surface as
emergent misbehavior in the software systems running on the network —
web servers, caches, storage, data processing.

This package models that software layer: a service topology placed on
network devices, a failure-masking model that decides which device
faults surface at all, and the impact taxonomy (timeouts, lost
capacity, retries, latency) the SEV reports describe.
"""

from repro.services.catalog import (
    Service,
    ServiceCatalog,
    ServiceTier,
    reference_catalog,
)
from repro.services.placement import Placement, place_service, place_uniform
from repro.services.impact import (
    ImpactAssessment,
    ImpactKind,
    ImpactModel,
    ServiceImpact,
)
from repro.services.masking import MaskingReport, masking_report

__all__ = [
    "ImpactAssessment",
    "ImpactKind",
    "ImpactModel",
    "MaskingReport",
    "Placement",
    "Service",
    "ServiceCatalog",
    "ServiceImpact",
    "ServiceTier",
    "masking_report",
    "place_service",
    "place_uniform",
    "reference_catalog",
]
