"""Failure-to-impact model.

Maps a set of failed network devices to service-level symptoms — the
manifestations the SEV reports describe (section 4.2): "increased load
from lost capacity, message retries from corrupted packets, downtime
from partitioned connectivity, and increased latency from congested
links".

The model combines three published mechanisms:

* **replication masking** — a service with replicas left standing loses
  capacity, not availability (section 5.4);
* **blast radius** — a failed device only affects services whose racks
  it strands from the Cores (section 5.2's downstream argument,
  computed over the topology graph);
* **load shedding** — survivors absorb the failed replicas' traffic;
  pushing survivors past capacity reproduces the section 4.2 CSA
  example, where web and cache tiers exhausted CPU and failed 2.4% of
  requests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

import networkx as nx

from repro.services.catalog import Service, ServiceCatalog
from repro.services.placement import Placement
from repro.topology.devices import DeviceType


class ImpactKind(enum.Enum):
    """Service-level symptoms, as SEV reports categorize them."""

    NONE = "none"
    INCREASED_LATENCY = "increased_latency"
    LOST_CAPACITY = "lost_capacity"
    RETRIES = "retries"
    DOWNTIME = "downtime"


@dataclass(frozen=True)
class ServiceImpact:
    """The effect of a failure set on one service."""

    service: str
    kind: ImpactKind
    replicas_lost: int
    replicas_remaining: int
    failed_request_fraction: float

    @property
    def masked(self) -> bool:
        """True when the fault never surfaced at the service level."""
        return self.kind is ImpactKind.NONE


@dataclass
class ImpactAssessment:
    """Fleet-wide outcome of a failure set."""

    failed_devices: Set[str]
    impacts: Dict[str, ServiceImpact] = field(default_factory=dict)

    @property
    def affected_services(self) -> List[str]:
        return sorted(
            name for name, i in self.impacts.items() if not i.masked
        )

    @property
    def fully_masked(self) -> bool:
        """The failure produced no service-level symptoms at all —
        the common case the paper's remediation data implies."""
        return not self.affected_services

    @property
    def worst_kind(self) -> ImpactKind:
        order = [ImpactKind.DOWNTIME, ImpactKind.LOST_CAPACITY,
                 ImpactKind.RETRIES, ImpactKind.INCREASED_LATENCY,
                 ImpactKind.NONE]
        for kind in order:
            if any(i.kind is kind for i in self.impacts.values()):
                return kind
        return ImpactKind.NONE


class ImpactModel:
    """Assesses device-failure sets against a placed service catalog."""

    def __init__(
        self,
        catalog: ServiceCatalog,
        placement: Placement,
        graph: nx.Graph,
        overload_headroom: float = 1.5,
    ) -> None:
        if overload_headroom < 1.0:
            raise ValueError("headroom below 1.0 means always overloaded")
        self._catalog = catalog
        self._placement = placement
        self._graph = graph
        self._headroom = overload_headroom

    def assess(self, failed_devices: Iterable[str]) -> ImpactAssessment:
        """Evaluate a set of simultaneous device failures."""
        failed = set(failed_devices)
        unknown = failed - set(self._graph.nodes)
        if unknown:
            raise KeyError(f"unknown devices in failure set: {sorted(unknown)}")

        # Racks cut off from the Cores under the *joint* failure:
        # directly failed RSWs plus every rack that can no longer
        # reach a surviving Core.  Joint reachability matters —
        # correlated failures (all four FSWs of a pod) strand racks
        # that no single failure would.
        stranded = self._stranded_racks(failed)

        assessment = ImpactAssessment(failed_devices=failed)
        for service in self._catalog:
            assessment.impacts[service.name] = self._assess_service(
                service, stranded, failed
            )
        return assessment

    def _stranded_racks(self, failed: Set[str]) -> Set[str]:
        stranded = {
            d for d in failed
            if self._graph.nodes[d]["device_type"] is DeviceType.RSW
        }
        survivors = self._graph.copy()
        survivors.remove_nodes_from(failed)
        cores = {
            n for n, data in survivors.nodes(data=True)
            if data["device_type"] is DeviceType.CORE
        }
        reachable: Set[str] = set()
        for core in cores:
            reachable |= nx.node_connected_component(survivors, core)
        for node, data in survivors.nodes(data=True):
            if data["device_type"] is DeviceType.RSW and node not in reachable:
                stranded.add(node)
        return stranded

    def _assess_service(
        self, service: Service, stranded: Set[str], failed: Set[str]
    ) -> ServiceImpact:
        lost = self._placement.replicas_lost(service.name, stranded)
        remaining = service.replicas - lost

        if remaining == 0:
            return ServiceImpact(service.name, ImpactKind.DOWNTIME,
                                 lost, 0, 1.0)
        if lost == 0:
            # No replica lost.  Cross-DC services still feel a Core
            # loss as congestion on the remaining exits.
            core_failed = any(
                self._graph.nodes[d]["device_type"] is DeviceType.CORE
                for d in failed
            )
            if core_failed and service.cross_datacenter:
                return ServiceImpact(service.name,
                                     ImpactKind.INCREASED_LATENCY,
                                     0, service.replicas, 0.0)
            return ServiceImpact(service.name, ImpactKind.NONE,
                                 0, service.replicas, 0.0)

        # Survivors absorb the shed load; demand is the full-replica
        # load, capacity scales with survivors times headroom.
        demand = float(service.replicas)
        capacity = remaining * self._headroom
        if demand > capacity:
            failed_fraction = (demand - capacity) / demand
            return ServiceImpact(service.name, ImpactKind.LOST_CAPACITY,
                                 lost, remaining,
                                 round(failed_fraction, 4))
        # Absorbed, but clients retried against the dead replicas.
        return ServiceImpact(service.name, ImpactKind.RETRIES,
                             lost, remaining, 0.0)
