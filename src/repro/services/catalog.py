"""Service catalog.

Section 4.1 names the production system families whose observable
misbehavior defines a network incident: frontend web servers, caching
systems, storage systems, data processing systems, and real-time
monitoring systems.  The catalog models those families with the two
properties the impact analysis needs: how replicated the service is
(replicas across racks mask single-RSW loss, section 5.4) and whether
its traffic crosses data centers (cross-DC services feel Core and
backbone failures).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


class ServiceTier(enum.Enum):
    """The production system families of section 4.1."""

    WEB = "web"
    CACHE = "cache"
    STORAGE = "storage"
    DATA_PROCESSING = "data_processing"
    MONITORING = "monitoring"


@dataclass(frozen=True)
class Service:
    """A software service deployed on the data center network."""

    name: str
    tier: ServiceTier
    #: Independent replicas, spread across racks.  Section 5.4: at
    #: Facebook's scale it is more cost-effective to handle RSW
    #: failures in software using replication than to deploy redundant
    #: TOR switches.
    replicas: int
    #: Whether the service's traffic crosses data centers (bulk
    #: replication, consistency traffic: section 3.2).
    cross_datacenter: bool = False
    #: Requests per second served at full capacity (scaled units).
    capacity_rps: float = 1000.0

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError(f"service {self.name!r} needs >= 1 replica")
        if self.capacity_rps <= 0:
            raise ValueError(f"service {self.name!r} needs positive capacity")

    @property
    def tolerates_single_rack_loss(self) -> bool:
        """Replication across >= 2 racks masks a single RSW failure."""
        return self.replicas >= 2


class ServiceCatalog:
    """The set of services running on a network."""

    def __init__(self, services: Optional[List[Service]] = None) -> None:
        self._services: Dict[str, Service] = {}
        for service in services or []:
            self.add(service)

    def add(self, service: Service) -> None:
        if service.name in self._services:
            raise ValueError(f"duplicate service {service.name!r}")
        self._services[service.name] = service

    def get(self, name: str) -> Service:
        try:
            return self._services[name]
        except KeyError:
            raise KeyError(f"unknown service {name!r}") from None

    def __len__(self) -> int:
        return len(self._services)

    def __iter__(self) -> Iterator[Service]:
        return iter(sorted(self._services.values(), key=lambda s: s.name))

    def __contains__(self, name: str) -> bool:
        return name in self._services

    def of_tier(self, tier: ServiceTier) -> List[Service]:
        return [s for s in self if s.tier is tier]

    def cross_datacenter_services(self) -> List[Service]:
        return [s for s in self if s.cross_datacenter]


def reference_catalog() -> ServiceCatalog:
    """A catalog shaped like section 4.1's production families.

    Replica counts reflect the published fault-tolerance strategies:
    the web and cache tiers are wide and absorb rack loss by shedding
    to peers; storage replicates three ways; monitoring is deliberately
    independent of the systems it watches.
    """
    return ServiceCatalog([
        Service("frontend-web", ServiceTier.WEB, replicas=64,
                capacity_rps=50_000.0),
        Service("social-cache", ServiceTier.CACHE, replicas=32,
                capacity_rps=200_000.0),
        Service("photo-storage", ServiceTier.STORAGE, replicas=3,
                cross_datacenter=True, capacity_rps=8_000.0),
        Service("warm-blob-storage", ServiceTier.STORAGE, replicas=3,
                cross_datacenter=True, capacity_rps=4_000.0),
        Service("batch-processing", ServiceTier.DATA_PROCESSING,
                replicas=16, cross_datacenter=True, capacity_rps=2_000.0),
        Service("stream-processing", ServiceTier.DATA_PROCESSING,
                replicas=8, cross_datacenter=True, capacity_rps=6_000.0),
        Service("timeseries-monitoring", ServiceTier.MONITORING,
                replicas=4, capacity_rps=12_000.0),
    ])
