"""Service placement onto racks.

Impact analysis needs to know which racks carry which service's
replicas: a failed RSW only threatens the replicas behind it, and the
section 5.4 argument — one TOR per rack, replication in software —
only works if no service concentrates its replicas under one switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.services.catalog import Service, ServiceCatalog
from repro.topology.devices import DeviceType


@dataclass
class Placement:
    """Replica locations: service name -> list of RSW names."""

    replica_racks: Dict[str, List[str]] = field(default_factory=dict)

    def racks_of(self, service: str) -> List[str]:
        try:
            return self.replica_racks[service]
        except KeyError:
            raise KeyError(f"service {service!r} is not placed") from None

    def services_on(self, rack: str) -> Set[str]:
        return {
            name
            for name, racks in self.replica_racks.items()
            if rack in racks
        }

    def replicas_lost(self, service: str, failed_racks: Set[str]) -> int:
        return sum(1 for r in self.racks_of(service) if r in failed_racks)

    def replicas_remaining(self, service: str,
                           failed_racks: Set[str]) -> int:
        return len(self.racks_of(service)) - self.replicas_lost(
            service, failed_racks
        )

    def validate_anti_affinity(self) -> List[str]:
        """Services with two or more replicas sharing one rack.

        Co-located replicas defeat the replication-over-redundant-TOR
        strategy; a correct placement returns an empty list.
        """
        offenders = []
        for name, racks in self.replica_racks.items():
            if len(set(racks)) != len(racks):
                offenders.append(name)
        return sorted(offenders)


def place_uniform(catalog: ServiceCatalog, network) -> Placement:
    """Round-robin replicas across the network's racks.

    Raises when a service has more replicas than the network has racks
    (anti-affinity would be impossible).
    """
    racks = sorted(
        d.name for d in network.devices.values()
        if d.device_type is DeviceType.RSW
    )
    if not racks:
        raise ValueError("the network has no racks to place on")

    placement = Placement()
    offset = 0
    for service in catalog:
        if service.replicas > len(racks):
            raise ValueError(
                f"service {service.name!r} wants {service.replicas} "
                f"replicas but the network has only {len(racks)} racks"
            )
        chosen = [
            racks[(offset + i) % len(racks)] for i in range(service.replicas)
        ]
        offset += service.replicas
        placement.replica_racks[service.name] = chosen
    return placement


def place_service(placement: Placement, service: Service,
                  racks: List[str]) -> None:
    """Explicitly place one service; enforces the replica count."""
    if len(racks) != service.replicas:
        raise ValueError(
            f"{service.name!r} needs {service.replicas} racks, got "
            f"{len(racks)}"
        )
    placement.replica_racks[service.name] = list(racks)
