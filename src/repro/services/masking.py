"""Failure masking analysis.

Section 2: "all device- and link-level failures are not created equal
— many failures are masked by built-in hardware redundancy, path
diversity, and other fault-tolerance logic."  This module quantifies
that masking: given a stream of single-device failures over a
topology, how many ever surface as service-level impact?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.services.impact import ImpactKind, ImpactModel
from repro.topology.devices import DeviceType


@dataclass
class MaskingReport:
    """How single-device failures distribute across impact kinds."""

    per_type: Dict[DeviceType, Dict[ImpactKind, int]] = field(
        default_factory=dict
    )

    def masked_fraction(self, device_type: DeviceType) -> float:
        counts = self.per_type.get(device_type, {})
        total = sum(counts.values())
        if total == 0:
            raise ValueError(f"no {device_type.value} failures assessed")
        return counts.get(ImpactKind.NONE, 0) / total

    def surfaced(self, device_type: DeviceType) -> int:
        counts = self.per_type.get(device_type, {})
        return sum(
            n for kind, n in counts.items() if kind is not ImpactKind.NONE
        )

    def ordered_by_masking(self) -> List[DeviceType]:
        """Device types, best-masked first."""
        return sorted(
            self.per_type,
            key=lambda t: (-self.masked_fraction(t), t.value),
        )


def masking_report(
    model: ImpactModel, devices: Iterable, repeat: int = 1
) -> MaskingReport:
    """Assess each device failing alone, ``repeat`` times.

    ``devices`` is an iterable of :class:`~repro.topology.devices.Device`
    (or anything with ``name`` and ``device_type``).  Repeating matters
    only for models with stochastic elements; the default model is
    deterministic, so ``repeat=1`` suffices.
    """
    if repeat < 1:
        raise ValueError("repeat must be positive")
    report = MaskingReport()
    for device in devices:
        for _ in range(repeat):
            assessment = model.assess([device.name])
            kind = assessment.worst_kind
            bucket = report.per_type.setdefault(device.device_type, {})
            bucket[kind] = bucket.get(kind, 0) + 1
    return report
