"""The partition manifest of a tiered store.

One JSON document per store directory describes every partition —
keyed by ``(year, region)`` — with its row count, content digest,
storage tier, and relative file path.  The manifest is the read
planner's source of truth: corpus scans, shard planning, ``len()``,
and ``years()`` are all answered from it without opening a single
shard.

The document embeds a checksum over its own canonical body, so a torn
or hand-edited manifest fails loudly at :meth:`Manifest.load` with a
typed :class:`ManifestError` instead of silently planning reads off
garbage.  The ``storage.manifest`` fault site of
:mod:`repro.faultline` tears the save mid-JSON to exercise exactly
that path; recovery is a full rescan of the partition files
(:meth:`repro.storage.PartitionedSEVStore.recover`).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.faultline import hooks

__all__ = [
    "MANIFEST_FORMAT",
    "MANIFEST_NAME",
    "Manifest",
    "ManifestError",
    "PartitionEntry",
    "StorageError",
    "TIERS",
]

MANIFEST_FORMAT = "repro.storage-manifest/1"
MANIFEST_NAME = "manifest.json"

#: The two storage tiers: ``hot`` partitions live in the domain's
#: native random-access format, ``cold`` partitions as gzip JSONL.
TIERS = ("hot", "cold")

PathLike = Union[str, Path]
PartitionKey = Tuple[int, str]


class StorageError(RuntimeError):
    """Base class for everything repro.storage raises."""


class ManifestError(StorageError):
    """The manifest is missing, unparseable, or fails its checksum."""


@dataclass(frozen=True)
class PartitionEntry:
    """One partition of a tiered store.

    ``digest`` is tier-independent (a hash over the partition's sorted
    canonical interchange rows), so promoting or demoting a partition
    must not change it — that invariant is what lets ``verify`` prove
    a tier move lossless.
    """

    year: int
    region: str
    rows: int
    digest: str
    tier: str
    path: str

    def __post_init__(self) -> None:
        if self.tier not in TIERS:
            raise ValueError(
                f"unknown tier {self.tier!r}; expected one of {TIERS}"
            )
        if self.rows < 0:
            raise ValueError("rows must be non-negative")

    @property
    def key(self) -> PartitionKey:
        return (self.year, self.region)

    def to_json(self) -> dict:
        return {
            "year": self.year,
            "region": self.region,
            "rows": self.rows,
            "digest": self.digest,
            "tier": self.tier,
            "path": self.path,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "PartitionEntry":
        try:
            return cls(
                year=int(payload["year"]),
                region=str(payload["region"]),
                rows=int(payload["rows"]),
                digest=str(payload["digest"]),
                tier=str(payload["tier"]),
                path=str(payload["path"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ManifestError(
                f"malformed partition entry {payload!r}: {exc}"
            ) from exc


def _canonical(body: dict) -> str:
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def _checksum(body: dict) -> str:
    return hashlib.sha256(_canonical(body).encode()).hexdigest()


class Manifest:
    """The partition catalog of one store directory."""

    def __init__(
        self,
        domain: str,
        meta: Optional[dict] = None,
        partitions: Optional[List[PartitionEntry]] = None,
    ) -> None:
        self.domain = domain
        #: Provenance the store records at init (generator seed, scale)
        #: so ``--store-dir`` consumers can rebuild the matching
        #: context (fleet model, topology) without guessing.
        self.meta = dict(meta or {})
        self._partitions: Dict[PartitionKey, PartitionEntry] = {}
        for entry in partitions or []:
            self.upsert(entry)

    # -- catalog -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._partitions)

    def get(self, key: PartitionKey) -> Optional[PartitionEntry]:
        return self._partitions.get(key)

    def upsert(self, entry: PartitionEntry) -> None:
        self._partitions[entry.key] = entry

    def remove(self, key: PartitionKey) -> PartitionEntry:
        if key not in self._partitions:
            raise KeyError(f"no partition {key!r} in the manifest")
        return self._partitions.pop(key)

    def partitions(self) -> List[PartitionEntry]:
        """Every entry, ordered by (year, region)."""
        return [
            self._partitions[key] for key in sorted(self._partitions)
        ]

    def total_rows(self) -> int:
        return sum(e.rows for e in self._partitions.values())

    def years(self) -> List[int]:
        return sorted({e.year for e in self._partitions.values()})

    def regions(self) -> List[str]:
        return sorted({e.region for e in self._partitions.values()})

    # -- serialization -----------------------------------------------

    def body(self) -> dict:
        return {
            "format": MANIFEST_FORMAT,
            "domain": self.domain,
            "meta": self.meta,
            "partitions": [e.to_json() for e in self.partitions()],
        }

    def to_json(self) -> str:
        body = self.body()
        document = dict(body)
        document["checksum"] = _checksum(body)
        return json.dumps(document, indent=1, sort_keys=True)

    def save(self, root: PathLike) -> Path:
        """Write the manifest atomically; returns its path.

        The ``storage.manifest`` fault site replaces the atomic write
        with a torn one — half the JSON lands at the *real* path, as a
        crash between truncate and flush would leave it — so the
        checksum recovery in :meth:`load` is exercised against genuine
        corruption.
        """
        path = Path(root) / MANIFEST_NAME
        text = self.to_json()
        if hooks.fire("storage.manifest"):
            path.write_text(hooks.torn(text))
            return path
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(text)
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, root: PathLike) -> "Manifest":
        """Read and checksum-verify a manifest; typed errors only."""
        path = Path(root) / MANIFEST_NAME
        if not path.exists():
            raise ManifestError(f"no manifest at {path}")
        try:
            document = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ManifestError(
                f"unreadable manifest {path}: {type(exc).__name__}: {exc}"
            ) from exc
        if not isinstance(document, dict):
            raise ManifestError(f"manifest {path} is not a JSON object")
        if document.get("format") != MANIFEST_FORMAT:
            raise ManifestError(
                f"manifest {path} has format "
                f"{document.get('format')!r}, expected {MANIFEST_FORMAT!r}"
            )
        claimed = document.pop("checksum", None)
        if claimed != _checksum(document):
            raise ManifestError(
                f"manifest {path} fails its checksum "
                "(torn write or hand edit); rebuild it with recover()"
            )
        return cls(
            domain=str(document["domain"]),
            meta=dict(document.get("meta", {})),
            partitions=[
                PartitionEntry.from_json(row)
                for row in document.get("partitions", [])
            ],
        )
