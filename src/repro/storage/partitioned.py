"""Tiered, partitioned corpus stores.

One SQLite file cannot hold fleet-scale history; this module shards
each corpus into per-``(year, region)`` partitions behind a
:class:`~repro.storage.manifest.Manifest`:

* **hot tier** — the domain's native random-access format: one SQLite
  shard per partition for SEVs (the same schema as the monolithic
  :class:`~repro.incidents.store.SEVStore`, so the SQL query layer
  works on any single shard), plain JSONL for tickets;
* **cold tier** — gzip JSONL in the interchange schema of
  :mod:`repro.io`, readable by every replay/import path.

Partition digests hash the *sorted canonical interchange rows*, never
the container bytes, so a partition's digest is identical on either
tier — ``promote``/``demote`` verify themselves lossless, and
``verify`` audits the whole store against the manifest.

Reads are planned off the manifest and merged back into the exact
global order the monolithic store iterates in (``(opened_at_h,
sev_id)`` for SEVs), so every execution backend over a partitioned
store reproduces the monolithic report digests bit for bit.  The
``storage.shard`` fault site simulates losing a shard file mid-read
(raising :class:`~repro.faultline.plan.PartitionLost`); ``restore``
re-ingests one partition from a source corpus and proves the digest
matches the manifest before publishing.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.faultline import hooks
from repro.faultline.plan import PartitionLost
from repro.storage.manifest import (
    MANIFEST_NAME,
    Manifest,
    ManifestError,
    PartitionEntry,
    StorageError,
)

__all__ = ["PartitionedSEVStore", "PartitionedTicketStore"]

PathLike = Union[str, Path]
PartitionKey = Tuple[int, str]

#: The catch-all region for records whose identity carries none.
NO_REGION = "none"

_SLUG_RE = re.compile(r"[^A-Za-z0-9_-]+")


def _region_slug(region: str) -> str:
    """A filesystem-safe, collision-free file-name fragment.

    Sanitizing is lossy (``a/b`` and ``a.b`` both map to ``a-b``), so
    any region the sanitizer had to touch gets a short content hash
    appended — two distinct regions can never share a partition file.
    """
    value = region or NO_REGION
    slug = _SLUG_RE.sub("-", value)
    if slug != value or not slug:
        digest = hashlib.sha256(value.encode()).hexdigest()[:8]
        slug = f"{slug.strip('-') or 'region'}-{digest}"
    return slug


def _digest_rows(rows: List[dict]) -> str:
    """Tier-independent partition digest over sorted canonical rows."""
    payload = "\n".join(json.dumps(row, sort_keys=True) for row in rows)
    return hashlib.sha256(payload.encode()).hexdigest()


class _TieredStore:
    """Shared machinery of the two domain stores.

    Subclasses define the partition key, the interchange row codec,
    the global sort key, and the hot-tier container; everything else —
    manifest bookkeeping, tier moves, retention, recovery, the fault
    site — lives here.
    """

    domain: str = ""
    #: Duck-typing flag the runtime layer keys on (corpus planning,
    #: batch-path gating) without importing this module.
    is_partitioned = True
    #: Hot-tier file extension (cold is always ``.jsonl.gz``).
    hot_ext: str = ".jsonl"

    def __init__(self, root: PathLike, manifest: Manifest) -> None:
        self.root = Path(root)
        self.manifest = manifest

    # -- lifecycle ---------------------------------------------------

    @classmethod
    def init(cls, root: PathLike, meta: Optional[dict] = None):
        """Create an empty store (directory + manifest) at ``root``."""
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        if (root / MANIFEST_NAME).exists():
            raise StorageError(
                f"{root} already holds a store; open() or recover() it"
            )
        manifest = Manifest(cls.domain, meta=meta)
        manifest.save(root)
        return cls(root, manifest)

    @classmethod
    def open(cls, root: PathLike):
        """Attach to an existing store; ``ManifestError`` on damage."""
        manifest = Manifest.load(root)
        if manifest.domain != cls.domain:
            raise StorageError(
                f"{root} holds a {manifest.domain!r} store, "
                f"not {cls.domain!r}"
            )
        return cls(Path(root), manifest)

    @classmethod
    def recover(cls, root: PathLike, meta: Optional[dict] = None):
        """Rebuild a lost or corrupt manifest by scanning the shards.

        Every partition file is read in full; its key comes from the
        rows themselves (a partition holds exactly one key by
        construction), its tier from the extension, and its row count
        and digest are recomputed — so the rebuilt manifest describes
        what is actually on disk, not what a torn write claimed.
        ``meta`` (generator seed, scale) cannot be recovered from the
        shards; pass it when known.
        """
        root = Path(root)
        if not root.is_dir():
            raise StorageError(f"no store directory at {root}")
        manifest = Manifest(cls.domain, meta=meta)
        store = cls(root, manifest)
        for file in sorted(root.iterdir()):
            if file.name == MANIFEST_NAME or file.name.endswith(".tmp"):
                continue
            if file.name.endswith(".jsonl.gz"):
                tier = "cold"
            elif file.name.endswith(cls.hot_ext):
                tier = "hot"
            else:
                continue
            records = store._read_file(file, tier)
            if not records:
                continue
            keys = {store.partition_key(r) for r in records}
            if len(keys) != 1:
                raise StorageError(
                    f"partition file {file.name} holds {len(keys)} "
                    f"distinct (year, region) keys; expected exactly 1"
                )
            (key,) = keys
            rows = store._sorted_rows(records)
            manifest.upsert(PartitionEntry(
                year=key[0], region=key[1], rows=len(rows),
                digest=_digest_rows(rows), tier=tier, path=file.name,
            ))
        manifest.save(root)
        return store

    # -- domain hooks (subclass responsibilities) --------------------

    def partition_key(self, record) -> PartitionKey:
        raise NotImplementedError

    def _record_row(self, record) -> dict:
        raise NotImplementedError

    def _row_record(self, row: dict):
        raise NotImplementedError

    def _sort_key(self, record) -> tuple:
        raise NotImplementedError

    def _read_hot(self, path: Path) -> List:
        raise NotImplementedError

    def _write_hot(self, path: Path, records: List) -> None:
        raise NotImplementedError

    # -- partition files ---------------------------------------------

    def _partition_name(self, key: PartitionKey, tier: str) -> str:
        year, region = key
        ext = self.hot_ext if tier == "hot" else ".jsonl.gz"
        return f"{year}_{_region_slug(region)}{ext}"

    def _sorted_rows(self, records: Iterable) -> List[dict]:
        ordered = sorted(records, key=self._sort_key)
        return [self._record_row(r) for r in ordered]

    def _read_cold(self, path: Path) -> List:
        from repro.io.compression import open_text

        records = []
        with open_text(path) as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(self._row_record(json.loads(line)))
        records.sort(key=self._sort_key)
        return records

    def _write_cold(self, path: Path, records: List) -> None:
        from repro.io.compression import open_text

        ordered = sorted(records, key=self._sort_key)
        with open_text(path, "w") as handle:
            for record in ordered:
                handle.write(
                    json.dumps(self._record_row(record), sort_keys=True)
                    + "\n"
                )

    def _read_file(self, path: Path, tier: str) -> List:
        return self._read_hot(path) if tier == "hot" \
            else self._read_cold(path)

    def _check_partition(self, entry: PartitionEntry) -> Path:
        """The partition's file path, after the fault-site gauntlet.

        The ``storage.shard`` fault site simulates the shard file
        vanishing mid-plan: the file is actually deleted and a typed
        :class:`PartitionLost` names the partition, so the recovery
        drill repairs genuine damage, not a simulation of it.  Every
        planned read — row scan or direct shard attach — runs through
        here, so the columnar and SQL-pushdown paths honor the same
        fault site as the record scan.
        """
        path = self.root / entry.path
        if hooks.fire("storage.shard"):
            if path.exists():
                path.unlink()
            raise PartitionLost(
                f"injected shard loss: partition {entry.key} "
                f"({entry.path})", key=entry.key,
            )
        if not path.exists():
            raise PartitionLost(
                f"partition {entry.key} is missing its file "
                f"{entry.path}; restore() it from a source corpus",
                key=entry.key,
            )
        return path

    def _read_partition(self, entry: PartitionEntry) -> List:
        """Every record of one partition, in global sort order."""
        return self._read_file(self._check_partition(entry), entry.tier)

    # -- writes ------------------------------------------------------

    def ingest(self, records: Iterable) -> int:
        """Route records to their ``(year, region)`` partitions.

        Appends to existing partitions (a cold target is promoted
        first — the hot tier is the only writable one), recomputes
        each touched partition's row count and digest from disk, and
        publishes the manifest once at the end.  Returns how many
        records landed.
        """
        groups: Dict[PartitionKey, List] = {}
        count = 0
        for record in records:
            groups.setdefault(self.partition_key(record), []).append(record)
            count += 1
        for key in sorted(groups):
            entry = self.manifest.get(key)
            if entry is not None and entry.tier == "cold":
                entry = self._move_tier(entry, "hot", save=False)
            existing: List = []
            if entry is not None:
                existing = self._read_file(
                    self.root / entry.path, entry.tier
                )
            merged = sorted(
                existing + groups[key], key=self._sort_key
            )
            path = self.root / self._partition_name(key, "hot")
            self._write_hot(path, merged)
            rows = self._sorted_rows(merged)
            self.manifest.upsert(PartitionEntry(
                year=key[0], region=key[1], rows=len(rows),
                digest=_digest_rows(rows), tier="hot", path=path.name,
            ))
        self.manifest.save(self.root)
        return count

    # ``insert_many`` / ``bulk_load`` aliases keep the monolithic
    # store's write surface working (io importers, serve ingestion).
    def insert_many(self, records: Iterable) -> int:
        return self.ingest(records)

    def bulk_load(self, records: Iterable, **_kwargs) -> int:
        return self.ingest(records)

    def restore(self, key: PartitionKey, source: Iterable) -> int:
        """Re-ingest one lost partition from a source corpus.

        Filters ``source`` down to the records belonging to ``key``,
        rewrites the partition on its manifest tier, and — when the
        manifest still remembers the partition — refuses to publish a
        digest mismatch: a restore must reproduce exactly the rows the
        manifest attests to, or fail loudly.
        """
        entry = self.manifest.get(key)
        tier = entry.tier if entry is not None else "hot"
        records = [r for r in source if self.partition_key(r) == key]
        rows = self._sorted_rows(records)
        digest = _digest_rows(rows)
        if entry is not None and digest != entry.digest:
            raise StorageError(
                f"restore of partition {key} produced digest "
                f"{digest[:12]}, manifest expects {entry.digest[:12]}; "
                "wrong source corpus?"
            )
        path = self.root / self._partition_name(key, tier)
        with hooks.suppressed("storage.shard"):
            if tier == "hot":
                self._write_hot(path, sorted(records, key=self._sort_key))
            else:
                self._write_cold(path, records)
        self.manifest.upsert(PartitionEntry(
            year=key[0], region=key[1], rows=len(rows), digest=digest,
            tier=tier, path=path.name,
        ))
        self.manifest.save(self.root)
        return len(records)

    # -- tiering -----------------------------------------------------

    def _move_tier(self, entry: PartitionEntry, tier: str,
                   save: bool = True) -> PartitionEntry:
        records = self._read_partition(entry)
        new_path = self.root / self._partition_name(entry.key, tier)
        if tier == "hot":
            self._write_hot(new_path, records)
        else:
            self._write_cold(new_path, records)
        rows = self._sorted_rows(records)
        digest = _digest_rows(rows)
        if digest != entry.digest:
            new_path.unlink()
            raise StorageError(
                f"tier move of partition {entry.key} would change its "
                f"digest ({entry.digest[:12]} -> {digest[:12]}); "
                "refusing to publish a lossy move"
            )
        old_path = self.root / entry.path
        if old_path != new_path and old_path.exists():
            old_path.unlink()
        moved = PartitionEntry(
            year=entry.year, region=entry.region, rows=entry.rows,
            digest=entry.digest, tier=tier, path=new_path.name,
        )
        self.manifest.upsert(moved)
        if save:
            self.manifest.save(self.root)
        return moved

    def demote(self, key: PartitionKey) -> PartitionEntry:
        """Move one partition to the cold tier (gzip JSONL)."""
        entry = self._require(key)
        if entry.tier == "cold":
            return entry
        return self._move_tier(entry, "cold")

    def promote(self, key: PartitionKey) -> PartitionEntry:
        """Move one partition back to the hot tier."""
        entry = self._require(key)
        if entry.tier == "hot":
            return entry
        return self._move_tier(entry, "hot")

    def compact(self, keep_hot_years: int = 1) -> List[PartitionKey]:
        """Demote every partition older than the newest N years.

        The compaction policy of a corpus whose queries skew heavily
        recent: the paper's target year is always the newest, so
        history compresses and the working set stays hot.  Returns
        the demoted keys.
        """
        if keep_hot_years < 0:
            raise ValueError("keep_hot_years must be non-negative")
        years = self.manifest.years()
        if not years:
            return []
        threshold = max(years) - keep_hot_years + 1
        demoted = []
        for entry in self.manifest.partitions():
            if entry.tier == "hot" and entry.year < threshold:
                self._move_tier(entry, "cold", save=False)
                demoted.append(entry.key)
        self.manifest.save(self.root)
        return demoted

    def apply_retention(self, min_year: int) -> List[PartitionKey]:
        """Drop every partition older than ``min_year`` (any tier).

        The destructive half of the lifecycle: shard files are deleted
        and their manifest entries removed.  Returns the dropped keys.
        """
        dropped = []
        for entry in self.manifest.partitions():
            if entry.year < min_year:
                path = self.root / entry.path
                if path.exists():
                    path.unlink()
                self.manifest.remove(entry.key)
                dropped.append(entry.key)
        if dropped:
            self.manifest.save(self.root)
        return dropped

    # -- reads -------------------------------------------------------

    def records(self) -> Iterator:
        """Every record, in the monolithic store's global order.

        A lazy k-way merge over the per-partition iterators: each
        partition is read (and sorted) on demand, and the heads are
        merged on the domain sort key — identical output to the
        monolithic scan, one partition of memory at a time.
        """
        streams = [
            iter(self._read_partition(entry))
            for entry in self.manifest.partitions()
        ]
        return heapq.merge(*streams, key=self._sort_key)

    def partition_records(self, key: PartitionKey) -> List:
        """One partition's records, in global sort order."""
        return self._read_partition(self._require(key))

    def __len__(self) -> int:
        return self.manifest.total_rows()

    def years(self) -> List[int]:
        return self.manifest.years()

    def regions(self) -> List[str]:
        return self.manifest.regions()

    def partition_keys(self) -> List[PartitionKey]:
        return [e.key for e in self.manifest.partitions()]

    def _require(self, key: PartitionKey) -> PartitionEntry:
        entry = self.manifest.get(key)
        if entry is None:
            raise StorageError(f"no partition {key!r} in {self.root}")
        return entry

    # -- auditing ----------------------------------------------------

    def verify(self) -> Dict[PartitionKey, str]:
        """Recompute every partition against the manifest.

        Returns a mismatch report — ``{key: reason}`` — empty when the
        store is healthy.  Missing files are reported, not raised, so
        one lost shard does not hide the state of the others.
        """
        problems: Dict[PartitionKey, str] = {}
        for entry in self.manifest.partitions():
            path = self.root / entry.path
            if not path.exists():
                problems[entry.key] = f"missing file {entry.path}"
                continue
            rows = self._sorted_rows(self._read_file(path, entry.tier))
            if len(rows) != entry.rows:
                problems[entry.key] = (
                    f"row count {len(rows)} != manifest {entry.rows}"
                )
            elif _digest_rows(rows) != entry.digest:
                problems[entry.key] = "content digest mismatch"
        return problems

    def status(self) -> dict:
        """JSON-able summary: tiers, rows, bytes, per-partition rows."""
        tiers = {"hot": 0, "cold": 0}
        size = 0
        for entry in self.manifest.partitions():
            tiers[entry.tier] += 1
            path = self.root / entry.path
            if path.exists():
                size += path.stat().st_size
        return {
            "domain": self.domain,
            "partitions": len(self.manifest),
            "rows": len(self),
            "years": self.years(),
            "regions": self.regions(),
            "tiers": tiers,
            "bytes": size,
            "meta": dict(self.manifest.meta),
            "entries": [
                {"year": e.year, "region": e.region, "rows": e.rows,
                 "tier": e.tier, "path": e.path}
                for e in self.manifest.partitions()
            ],
        }


class PartitionedSEVStore(_TieredStore):
    """The SEV corpus, sharded by (opened year, device region).

    Hot partitions are full :class:`~repro.incidents.store.SEVStore`
    SQLite files — the SQL query layer works against any one shard —
    and the global scan merges shards back into the monolithic
    ``(opened_at_h, sev_id)`` order, so reports over a partitioned
    corpus are bit-identical to the single-file store's.
    """

    domain = "sev"
    hot_ext = ".db"

    _schema_hash: Optional[str] = None

    def partition_key(self, report) -> PartitionKey:
        return (report.opened_year, report.region or NO_REGION)

    def _record_row(self, report) -> dict:
        from repro.io.sev_io import _report_row

        return _report_row(report)

    def _row_record(self, row: dict):
        from repro.io.sev_io import _row_report

        return _row_report(row)

    def _sort_key(self, report) -> tuple:
        return (report.opened_at_h, report.sev_id)

    def _read_hot(self, path: Path) -> List:
        from repro.incidents.store import SEVStore

        with SEVStore(str(path)) as shard:
            return list(shard.all_reports())

    def _write_hot(self, path: Path, records: List) -> None:
        from repro.incidents.store import SEVStore

        if path.exists():
            path.unlink()
        with SEVStore(str(path)) as shard:
            shard.bulk_load(records)

    def all_reports(self) -> Iterator:
        """The monolithic store's scan API, answered off the manifest."""
        return self.records()

    def shard_stores(self) -> Iterator[tuple]:
        """Each partition as its best substrate, one at a time.

        Yields ``("store", SEVStore)`` for hot partitions — the shard
        *is* a monolithic-schema SQLite file, so the SQL query layer
        and the columnar scan run against it directly, no row
        materialization — and ``("records", list)`` for cold ones
        (gzip JSONL has no queryable form).  The caller owns each
        yielded store and must close it.  Runs the same
        ``storage.shard`` fault site as the record scan.  Partition
        order follows the manifest; any per-partition fold merges to
        the monolithic states under the merge law.
        """
        from repro.incidents.store import SEVStore

        for entry in self.manifest.partitions():
            path = self._check_partition(entry)
            if entry.tier == "hot":
                yield "store", SEVStore(str(path))
            else:
                yield "records", self._read_cold(path)

    def schema_hash(self) -> str:
        """The monolithic schema hash, by construction.

        Hot shards *are* monolithic stores, so the partitioned corpus
        fingerprints exactly as the same rows would in one file — the
        cache-key stability the tentpole demands.  Computed once from
        a fresh in-memory store and cached on the class.
        """
        if PartitionedSEVStore._schema_hash is None:
            from repro.incidents.store import SEVStore

            with SEVStore() as empty:
                PartitionedSEVStore._schema_hash = empty.schema_hash()
        return PartitionedSEVStore._schema_hash


class PartitionedTicketStore(_TieredStore):
    """The backbone repair-ticket corpus, sharded by (year, location).

    Tickets have no SQL query layer — every consumer folds them in
    memory — so the hot tier is plain JSONL in the interchange schema
    and the cold tier its gzip twin.  ``completed()`` and
    ``to_database()`` keep the :class:`TicketDatabase` surface working
    for the corpus runtime and the backbone monitor.
    """

    domain = "ticket"
    hot_ext = ".jsonl"

    def partition_key(self, ticket) -> PartitionKey:
        from repro.incidents.sev import year_of_hours

        return (
            year_of_hours(max(ticket.started_at_h, 0.0)),
            ticket.location or NO_REGION,
        )

    def _record_row(self, ticket) -> dict:
        from repro.io.ticket_io import _ticket_row

        return _ticket_row(ticket)

    def _row_record(self, row: dict):
        from repro.io.ticket_io import _row_ticket

        return _row_ticket(row)

    def _sort_key(self, ticket) -> tuple:
        return (ticket.started_at_h, ticket.ticket_id)

    def _read_hot(self, path: Path) -> List:
        records = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    records.append(self._row_record(json.loads(line)))
        records.sort(key=self._sort_key)
        return records

    def _write_hot(self, path: Path, records: List) -> None:
        ordered = sorted(records, key=self._sort_key)
        with open(path, "w", encoding="utf-8") as handle:
            for ticket in ordered:
                handle.write(
                    json.dumps(self._record_row(ticket), sort_keys=True)
                    + "\n"
                )

    def completed(self) -> List:
        """Every (completed) ticket, in global (start, id) order."""
        return list(self.records())

    def to_database(self):
        """Materialize a :class:`TicketDatabase`, ticket ids preserved.

        The backbone monitor's per-link interval queries want the
        in-memory database; ids must survive the round trip so report
        digests (which sort on them) cannot shift.
        """
        from repro.backbone.tickets import TicketDatabase

        db = TicketDatabase()
        for ticket in self.records():
            db.add_ticket(ticket)
        return db
