"""repro.storage — tiered, partitioned corpus storage.

The fleet-scale answer to the monolithic SQLite file: each corpus is
sharded into per-``(year, region)`` partitions behind a checksummed
JSON :class:`Manifest`, with a hot tier in the domain's native format
and a gzip-JSONL cold tier, plus ``compact``/``apply_retention``
lifecycle policies and digest-verified ``promote``/``demote`` moves.

The stores duck-type the surfaces the rest of the system consumes —
``all_reports``/``years``/``len``/``schema_hash`` for SEVs,
``completed`` for tickets — so the corpus runtime, the CLI, and the
serving layer run over either layout and produce bit-identical report
digests.  ``python -m repro store init|compact|status`` is the
operator surface.
"""

from repro.storage.manifest import (
    MANIFEST_FORMAT,
    MANIFEST_NAME,
    Manifest,
    ManifestError,
    PartitionEntry,
    StorageError,
    TIERS,
)
from repro.storage.partitioned import (
    PartitionedSEVStore,
    PartitionedTicketStore,
)

__all__ = [
    "MANIFEST_FORMAT",
    "MANIFEST_NAME",
    "Manifest",
    "ManifestError",
    "PartitionEntry",
    "PartitionedSEVStore",
    "PartitionedTicketStore",
    "StorageError",
    "TIERS",
]
