"""Command-line interface.

Exposes the pipeline without writing Python::

    python -m repro report intra            # the intra DC study
    python -m repro report backbone         # the backbone study
    python -m repro report backbone --backend sharded --jobs auto
    python -m repro export sevs out.csv     # generate + export SEVs
    python -m repro export tickets out.json # generate + export tickets
    python -m repro analyze sevs.csv        # analyze an imported corpus
    python -m repro analyze tickets.csv     # ticket exports work too
    python -m repro stream --jobs 4         # streaming runtime, sharded
    python -m repro stream --jobs auto      # pick workers from the corpus
    python -m repro stream --replay out.csv # incremental corpus replay
    python -m repro stream --dataset tickets  # backbone ticket feed
    python -m repro bench --quick           # benchmark suite, JSON records
    python -m repro chaos --seed 7          # seeded fault-injection drills
    python -m repro chaos --quick --out r.json  # CI smoke + JSON report
    python -m repro serve --port 8351       # reports as a long-lived HTTP
                                            # service with a job queue
    python -m repro report intra --digest   # print the canonical digest
                                            # (matches the serve endpoints)
    python -m repro store init st --seed 1  # tiered, partitioned store:
                                            # (year, region) shards behind
                                            # a checksummed manifest
    python -m repro store compact st        # gzip-compress old years
    python -m repro store status st         # manifest summary as JSON
    python -m repro report intra --store-dir st  # report off the store
                                            # (digests match generation)
    python -m repro scenario list           # shipped scenario presets
    python -m repro scenario show paper     # canonical JSON + digest
    python -m repro scenario validate s.json  # strict spec validation
    python -m repro grid expand --axes fabric_year=2013..2017
                                            # lattice cells + digests
    python -m repro grid run --axes fabric_year=2015,2016 \
        --axes hazard.CORE=1.0,1.5 --cache c --out grid.json
                                            # cached what-if sweep with
                                            # comparative tables
    python -m repro grid diff a.json b.json # cell-by-cell comparison
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import (
    BackboneMonitor,
    BackboneSimulator,
    DeviceType,
    IntraSimulator,
    paper_backbone_scenario,
    paper_fleet,
    paper_scenario,
)
from repro.incidents import RootCause, SEVStore, Severity
from repro.viz import format_table

BACKEND_CHOICES = ["batch", "stream", "sharded", "columnar"]


def _parse_jobs(value: str):
    """``--jobs`` accepts a positive worker count or ``auto``."""
    if value == "auto":
        return "auto"
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"jobs must be a positive integer or 'auto', got {value!r}"
        )
    if jobs < 1:
        raise argparse.ArgumentTypeError("jobs must be at least 1")
    return jobs


def _parse_bytes(value: str):
    """``--cache-prune`` accepts a byte count, with k/m/g suffixes."""
    text = value.strip().lower()
    multiplier = 1
    for suffix, scale in (("k", 1024), ("m", 1024 ** 2), ("g", 1024 ** 3)):
        if text.endswith(suffix):
            text, multiplier = text[: -len(suffix)], scale
            break
    try:
        count = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a byte count (optionally suffixed k/m/g), "
            f"got {value!r}"
        )
    if count < 0:
        raise argparse.ArgumentTypeError("byte count must be non-negative")
    return count * multiplier


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A Large Scale Study of Data Center "
                    "Network Reliability' (IMC 2018)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="generate a corpus and print "
                                           "the study's key results")
    report.add_argument("study",
                        choices=["intra", "backbone", "survivability",
                                 "full"])
    report.add_argument("--seed", type=int, default=None)
    report.add_argument("--scale", type=float, default=1.0,
                        help="intra corpus scale factor")
    report.add_argument("--backend", choices=BACKEND_CHOICES,
                        default="batch",
                        help="execution backend for the analyses "
                             "(all agree on every count, for both the "
                             "intra and the backbone study)")
    report.add_argument("--cache", metavar="DIR", default=None,
                        help="result cache directory: analyses of an "
                             "unchanged corpus are reused, not recomputed")
    report.add_argument("--jobs", type=_parse_jobs, default=None,
                        metavar="N",
                        help="shard count for --backend sharded (a count, "
                             "or 'auto' to size from the host); with "
                             "N > 1 the shards fold in parallel worker "
                             "processes (results are bit-identical)")
    report.add_argument("--digest", action="store_true",
                        help="also print the canonical report_digest; "
                             "bit-identical to the digest the serve "
                             "endpoints embed for the same corpus+seed")
    report.add_argument("--store-dir", metavar="DIR", default=None,
                        help="report over a tiered partitioned store "
                             "(python -m repro store init) instead of "
                             "generating a corpus; the stored corpus "
                             "yields the same digests as a freshly "
                             "generated one of the same seed")
    report.add_argument("--cache-prune", metavar="BYTES",
                        type=_parse_bytes, default=None,
                        help="after the run, evict the oldest --cache "
                             "entries until the cache directory holds at "
                             "most BYTES (k/m/g suffixes accepted)")

    export = sub.add_parser("export", help="generate a corpus and export it")
    export.add_argument("dataset", choices=["sevs", "tickets"])
    export.add_argument("path", help="output file (.csv, .json, or .jsonl)")
    export.add_argument("--seed", type=int, default=None)
    export.add_argument("--scale", type=float, default=1.0,
                        help="intra corpus scale factor (sevs only), "
                             "matching report --scale")

    analyze = sub.add_parser("analyze", help="analyze an exported corpus "
                                             "(SEVs or tickets)")
    analyze.add_argument("path", help="SEV or ticket export (.csv, .json, "
                                      "or .jsonl — every format export "
                                      "emits; the dataset kind is sniffed "
                                      "from the content)")
    analyze.add_argument("--backend", choices=BACKEND_CHOICES,
                         default="batch",
                         help="execution backend for the analyses")

    verify = sub.add_parser(
        "verify",
        help="regenerate both corpora and PASS/FAIL every paper anchor",
    )
    verify.add_argument("--seed", type=int, default=1)

    stream = sub.add_parser(
        "stream",
        help="online ingestion: generate (or replay) the corpus "
             "incrementally and print streaming aggregates",
    )
    stream.add_argument("--seed", type=int, default=1)
    stream.add_argument("--scale", type=float, default=1.0,
                        help="intra corpus scale factor")
    stream.add_argument("--jobs", type=_parse_jobs, default=1,
                        help="worker processes for sharded generation "
                             "(a count, or 'auto' to size from the corpus "
                             "and the host); any value produces identical "
                             "aggregates")
    stream.add_argument("--replay", metavar="PATH", default=None,
                        help="ingest an exported corpus (.csv/.json/"
                             ".jsonl, SEVs or tickets — sniffed from the "
                             "content) instead of generating")
    stream.add_argument("--checkpoint", metavar="PATH", default=None,
                        help="JSON snapshot: resumed from when present, "
                             "written when done (SEV streams only)")
    stream.add_argument("--dataset", choices=["sevs", "tickets"],
                        default="sevs",
                        help="which corpus to generate when not "
                             "replaying: intra SEVs or backbone repair "
                             "tickets")
    stream.add_argument("--store-dir", metavar="DIR", default=None,
                        help="replay a tiered partitioned store "
                             "(either domain) instead of generating "
                             "or reading an export")

    bench = sub.add_parser(
        "bench",
        help="run the performance benchmark suite and write "
             "repro.perf JSON records",
    )
    bench.add_argument("--quick", action="store_true",
                       help="small corpus, short worker sweep (the CI "
                            "smoke configuration)")
    bench.add_argument("--out", metavar="DIR", default="benchmarks/out",
                       help="directory for the JSON records "
                            "(default: benchmarks/out)")
    bench.add_argument("--seed", type=int, default=2)

    chaos = sub.add_parser(
        "chaos",
        help="run the seeded fault-injection drill suite "
             "(repro.faultline): inject component faults, verify "
             "every recovery path, and cross-check the backends",
    )
    chaos.add_argument("--seed", type=int, default=7,
                       help="fault plan seed; the same seed replays "
                            "the same faults (default: 7)")
    chaos.add_argument("--sites", metavar="SITE[,SITE...]", default=None,
                       help="comma-separated subset of fault sites to "
                            "inject (default: all); see "
                            "repro.faultline.SITES")
    chaos.add_argument("--quick", action="store_true",
                       help="smaller corpora, no process pools (the CI "
                            "smoke configuration)")
    chaos.add_argument("--out", metavar="PATH", default=None,
                       help="write the JSON fault report here")

    serve = sub.add_parser(
        "serve",
        help="serve both studies as a long-lived HTTP service "
             "(repro.serve): cached JSON report endpoints plus a "
             "checkpointed job queue",
    )
    serve.add_argument("--port", type=int, default=8351,
                       help="TCP port to bind (default: 8351; 0 picks "
                            "an ephemeral port)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--seed", type=int, default=1,
                       help="intra corpus seed (default: 1)")
    serve.add_argument("--backbone-seed", type=int, default=7,
                       help="backbone corpus seed (default: 7)")
    serve.add_argument("--scale", type=float, default=1.0,
                       help="intra corpus scale factor")
    serve.add_argument("--jobs", type=int, default=2, metavar="N",
                       help="job-queue worker threads (default: 2)")
    serve.add_argument("--corpus", metavar="PATH", default=None,
                       help="serve an exported SEV corpus (.jsonl/.json/"
                            ".csv) instead of generating one")
    serve.add_argument("--data-dir", metavar="DIR", default=None,
                       help="directory for the job checkpoint, artifact "
                            "registry, and result cache; restarting with "
                            "the same directory resumes pending jobs "
                            "(default: a temporary directory)")
    serve.add_argument("--no-warm", action="store_true",
                       help="skip pre-warming the report cache at startup")
    serve.add_argument("--store-dir", metavar="DIR", default=None,
                       help="serve an existing partitioned SEV store "
                            "(python -m repro store init) instead of "
                            "generating the intra corpus")

    store = sub.add_parser(
        "store",
        help="manage a tiered, partitioned corpus store "
             "(repro.storage): per-(year, region) shards behind a "
             "checksummed manifest, with a gzip cold tier",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    s_init = store_sub.add_parser(
        "init", help="create a store and ingest a generated corpus"
    )
    s_init.add_argument("dir", help="store directory (created)")
    s_init.add_argument("--dataset", choices=["sevs", "tickets"],
                        default="sevs")
    s_init.add_argument("--seed", type=int, default=1)
    s_init.add_argument("--scale", type=float, default=1.0,
                        help="intra corpus scale factor (sevs only)")

    s_compact = store_sub.add_parser(
        "compact", help="demote old partitions to the gzip cold tier "
                        "(and optionally apply a retention floor)"
    )
    s_compact.add_argument("dir", help="store directory")
    s_compact.add_argument("--keep-hot-years", type=int, default=1,
                           metavar="N",
                           help="keep the newest N years hot "
                                "(default: 1)")
    s_compact.add_argument("--retain-from", type=int, default=None,
                           metavar="YEAR",
                           help="delete partitions older than YEAR "
                                "before compacting (destructive)")

    s_status = store_sub.add_parser(
        "status", help="print the manifest summary as JSON"
    )
    s_status.add_argument("dir", help="store directory")

    scenario = sub.add_parser(
        "scenario",
        help="inspect declarative scenario specs (repro.scenarios): "
             "shipped presets and spec files with canonical JSON and "
             "content digests",
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command",
                                           required=True)
    scenario_sub.add_parser("list", help="list the shipped presets")
    sc_show = scenario_sub.add_parser(
        "show", help="print a spec's canonical JSON and digest"
    )
    sc_show.add_argument("spec", help="preset name or spec file path "
                                      "(.json, or .yaml with PyYAML)")
    sc_validate = scenario_sub.add_parser(
        "validate", help="strictly validate spec files (unknown keys, "
                         "wrong types, torn files all fail loudly)"
    )
    sc_validate.add_argument("paths", nargs="+", metavar="PATH",
                             help="spec files to validate")

    grid = sub.add_parser(
        "grid",
        help="what-if grids (repro.scenarios): sweep scenario knobs "
             "over a parameter lattice, one cached analysis run per "
             "cell, with comparative tables and per-cell digests",
    )
    grid_sub = grid.add_subparsers(dest="grid_command", required=True)

    def _grid_base_args(p):
        p.add_argument("--preset", default="paper",
                       help="base preset name (default: paper); see "
                            "'scenario list'")
        p.add_argument("--spec", metavar="PATH", default=None,
                       help="base spec file instead of --preset")
        p.add_argument("--axes", action="append", required=True,
                       metavar="PATH=V1,V2|LO..HI",
                       help="one sweep axis: a dotted knob path and "
                            "its values, e.g. 'fabric_year=2013..2017' "
                            "or 'hazard.CORE=1.0,1.5,2.0' (repeatable)")
        p.add_argument("--seed", type=int, default=None,
                       help="override the base spec's seed")
        p.add_argument("--scale", type=float, default=None,
                       help="override the base spec's corpus scale")

    g_run = grid_sub.add_parser(
        "run", help="run every lattice cell and print the comparative "
                    "tables; re-runs with --cache are cache hits"
    )
    _grid_base_args(g_run)
    g_run.add_argument("--backend", choices=BACKEND_CHOICES,
                       default="batch",
                       help="execution backend for every cell (all "
                            "backends produce bit-identical digests)")
    g_run.add_argument("--jobs", type=_parse_jobs, default=None,
                       metavar="N",
                       help="shard count for --backend sharded; with "
                            "N > 1 shards fold in worker processes")
    g_run.add_argument("--cache", metavar="DIR", default=None,
                       help="result cache directory: whole cells are "
                            "keyed on their spec digest, so repeated "
                            "and overlapping sweeps reuse cells")
    g_run.add_argument("--out", metavar="PATH", default=None,
                       help="write the JSON grid report here")
    g_run.add_argument("--table-axis", metavar="PATH", default=None,
                       help="also print a pivot of --table-metric "
                            "against this axis (default: the first "
                            "axis when more than one is swept)")
    g_run.add_argument("--table-metric", default="csa_rate_last",
                       help="metric for the pivot table "
                            "(default: csa_rate_last)")

    g_expand = grid_sub.add_parser(
        "expand", help="expand the lattice without running it: one "
                       "line per cell with its parameters and spec "
                       "digest"
    )
    _grid_base_args(g_expand)

    g_diff = grid_sub.add_parser(
        "diff", help="compare two JSON grid reports cell by cell "
                     "(cells align on their axis parameters)"
    )
    g_diff.add_argument("left", help="grid report JSON (from run --out)")
    g_diff.add_argument("right", help="grid report JSON to compare")

    return parser


def _open_partitioned(store_dir: str):
    """Open a partitioned store of either domain, from its manifest."""
    from repro.storage import (
        Manifest, PartitionedSEVStore, PartitionedTicketStore,
    )

    manifest = Manifest.load(store_dir)
    cls = (PartitionedSEVStore if manifest.domain == "sev"
           else PartitionedTicketStore)
    return cls.open(store_dir)


def _intra_report(seed: Optional[int], scale: float,
                  backend: str = "batch",
                  jobs: Optional[int] = None,
                  digest: bool = False,
                  store_dir: Optional[str] = None) -> None:
    if store_dir is not None:
        # Report over a stored corpus: the fleet model (and the cache
        # fingerprint seed) come from the generator parameters the
        # manifest recorded at `store init` time.
        store = _open_partitioned(store_dir)
        if store.domain != "sev":
            raise SystemExit(
                f"{store_dir} holds a {store.domain!r} store; "
                "'report intra' needs a SEV store"
            )
        meta = store.manifest.meta
        seed = meta.get("seed", seed if seed is not None else 1)
        scale = meta.get("scale", scale)
        scenario = paper_scenario(seed=seed, scale=scale)
    else:
        scenario = (paper_scenario(seed=seed, scale=scale)
                    if seed is not None else paper_scenario(scale=scale))
        store = IntraSimulator(scenario).run()
    fleet = scenario.fleet
    _print_intra_tables(store, fleet, backend=backend, jobs=jobs)
    if digest:
        from repro.faultline.oracle import report_digest
        from repro.runtime import RunContext, run_intra_report

        report = run_intra_report(
            RunContext(store=store, fleet=fleet,
                       corpus_seed=scenario.seed),
            backend=backend,
            jobs=jobs if jobs is not None else 4,
            use_processes=jobs is not None and jobs > 1,
        )
        print(f"\nreport_digest: {report_digest(report)}")


def _print_intra_tables(store: SEVStore, fleet,
                        backend: str = "batch",
                        jobs: Optional[int] = None) -> None:
    from repro.runtime import Executor, RunContext
    from repro.runtime.analyses import (
        DesignComparisonAnalysis,
        DistributionAnalysis,
        GrowthAnalysis,
        RootCausesAnalysis,
        SeverityByDeviceAnalysis,
        SwitchReliabilityAnalysis,
    )

    print(f"corpus: {len(store)} SEVs, years "
          f"{store.years()[0]}-{store.years()[-1]}\n")

    executor = Executor(
        backend=backend,
        jobs=jobs if jobs is not None else 4,
        use_processes=jobs is not None and jobs > 1,
    )
    context = RunContext(store=store, fleet=fleet)
    results = executor.run(
        [RootCausesAnalysis(), SeverityByDeviceAnalysis(),
         DistributionAnalysis(), GrowthAnalysis()],
        context,
    )

    t2 = results["root_causes"]
    print(format_table(
        ["Root cause", "Share"],
        [[c.value, f"{t2.fraction(c):.1%}"] for c in RootCause],
        title="Table 2: root causes",
    ))

    fig4 = results["severity_by_device"]
    last = fig4.year
    print("\n" + format_table(
        ["Severity", "Share"],
        [[s.label, f"{fig4.level_share(s):.1%}"] for s in sorted(Severity)],
        title=f"Figure 4: severity mix, {last}",
    ))

    dist = results["distribution"]
    print("\n" + format_table(
        ["Device", f"Share of {last}"],
        [[t.value, f"{dist.fraction_of_year(last, t):.1%}"]
         for t in DeviceType],
        title="Figure 7: incidents by device type",
    ))

    first = store.years()[0]
    if dist.year_total(first):
        print(f"\ngrowth {first}->{last}: {results['growth']:.1f}x")

    try:
        populated = executor.run(
            [SwitchReliabilityAnalysis(), DesignComparisonAnalysis()],
            context,
        )
        sr = populated["switch_reliability"]
        print("\n" + format_table(
            ["Device", f"MTBI {last} (device-hours)"],
            [[t.value, f"{sr.mtbi_h[last][t]:.3g}"]
             for t in DeviceType if t in sr.mtbi_h.get(last, {})],
            title="Figure 12: MTBI",
        ))
        comparison = populated["design_comparison"]
        print(f"\nfabric/cluster incidents in {last}: "
              f"{comparison.fabric_to_cluster_ratio(last):.0%}")
    except (KeyError, ValueError):
        # An imported corpus may not align with the built-in fleet
        # model; the population-normalized figures need one.
        print("\n(no fleet model for this corpus; skipping "
              "population-normalized figures)")


def _survivability_report(seed: Optional[int],
                          backend: str = "batch",
                          cache_dir: Optional[str] = None,
                          jobs: Optional[int] = None,
                          digest: bool = False) -> None:
    """The survivability study: correlated failures over both designs.

    Same executor, same cache, same backends as ``report intra`` —
    the generated trial corpus is just another record source, and
    every backend answers it bit-identically.
    """
    from repro.runtime import ResultCache, RunContext
    from repro.survivability import generate_trials, run_survivability_report

    seed = seed if seed is not None else 1
    trials = generate_trials(seed=seed)
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    context = RunContext(trials=trials, corpus_seed=seed)
    report = run_survivability_report(
        context, backend=backend,
        jobs=jobs if jobs is not None else 4,
        cache=cache,
        use_processes=jobs is not None and jobs > 1,
    )
    print(f"corpus: {len(trials)} trial records, seed {seed}, "
          f"designs cluster+fabric\n")
    print(report.render())
    from repro.core import survivable_capacity

    rows = survivable_capacity(report)
    floor = rows[0].floor if rows else 0.5
    print(f"\ncapacity floor {floor:.0%} survivable up to: " + "; ".join(
        f"{row.design} {row.max_survivable_pct}%" for row in rows
    ))
    if cache is not None and cache.hits:
        _print_cache_stats(cache)
    if digest:
        from repro.faultline.oracle import report_digest

        print(f"\nreport_digest: {report_digest(report)}")


def _backbone_report(seed: Optional[int],
                     backend: str = "batch",
                     cache_dir: Optional[str] = None,
                     jobs: Optional[int] = None,
                     digest: bool = False,
                     store_dir: Optional[str] = None) -> None:
    """The backbone study through the domain-generic runtime.

    Same executor, same cache, same backends as ``report intra`` —
    the ticket corpus is just another record source.  With
    ``store_dir`` the tickets stream from a partitioned store; the
    topology and window are rebuilt from the seed the manifest
    recorded (the ticket corpus itself is the store's, not the
    simulator's).
    """
    from repro.runtime import ResultCache, RunContext, run_backbone_report

    tickets = None
    if store_dir is not None:
        store = _open_partitioned(store_dir)
        if store.domain != "ticket":
            raise SystemExit(
                f"{store_dir} holds a {store.domain!r} store; "
                "'report backbone' needs a ticket store"
            )
        seed = store.manifest.meta.get(
            "seed", seed if seed is not None else 7
        )
        tickets = store
    scenario = (paper_backbone_scenario(seed=seed)
                if seed is not None else paper_backbone_scenario())
    corpus = BackboneSimulator(scenario).run()
    if tickets is None:
        tickets = corpus.tickets
        monitor = BackboneMonitor(corpus.topology, corpus.tickets)
    else:
        monitor = BackboneMonitor(corpus.topology, tickets.to_database())
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    context = RunContext(
        monitor=monitor, topology=corpus.topology,
        window_h=corpus.window_h, corpus_seed=scenario.seed,
        tickets=tickets,
    )
    report = run_backbone_report(
        context, cache=cache, backend=backend,
        jobs=jobs if jobs is not None else 4,
        use_processes=jobs is not None and jobs > 1,
    )

    print(f"corpus: {len(tickets)} tickets, "
          f"{len(corpus.topology.edges)} edges, "
          f"{len(corpus.topology.links)} links\n")
    print(report.render())
    if digest:
        from repro.faultline.oracle import report_digest

        print(f"\nreport_digest: {report_digest(report)}")
    if cache is not None and cache.hits:
        _print_cache_stats(cache)


def _print_cache_stats(cache) -> None:
    """The ``[cache]`` summary line, backed by ``ResultCache.stats()``."""
    stats = cache.stats()
    print(f"\n[cache] {stats['hits']} analyses reused, "
          f"{stats['misses']} computed "
          f"(hit rate {stats['hit_rate']:.0%}, "
          f"{stats['entries']} entries)")


def _export(dataset: str, path: str, seed: Optional[int],
            scale: float = 1.0) -> None:
    from repro.io import (
        export_sevs_csv, export_sevs_json, export_sevs_jsonl,
        export_tickets_csv, export_tickets_json, export_tickets_jsonl,
        strip_gz_suffix,
    )

    # ``.jsonl.gz`` dispatches like ``.jsonl``; the writer compresses
    # transparently.
    stem = strip_gz_suffix(path)
    if dataset == "sevs":
        scenario = (paper_scenario(seed=seed, scale=scale)
                    if seed is not None else paper_scenario(scale=scale))
        store = IntraSimulator(scenario).run()
        if stem.endswith(".jsonl"):
            writer = export_sevs_jsonl
        elif stem.endswith(".json"):
            writer = export_sevs_json
        else:
            writer = export_sevs_csv
        count = writer(store, path)
    else:
        scenario = (paper_backbone_scenario(seed=seed) if seed is not None
                    else paper_backbone_scenario())
        corpus = BackboneSimulator(scenario).run()
        if stem.endswith(".jsonl"):
            writer = export_tickets_jsonl
        elif stem.endswith(".json"):
            writer = export_tickets_json
        else:
            writer = export_tickets_csv
        count = writer(corpus.tickets, path)
    print(f"wrote {count} {dataset} to {path}")


def _store(args) -> int:
    """The ``store init|compact|status`` operator surface."""
    import json

    if args.store_command == "init":
        if args.dataset == "sevs":
            from repro.storage import PartitionedSEVStore

            scenario = paper_scenario(seed=args.seed, scale=args.scale)
            mono = IntraSimulator(scenario).run()
            store = PartitionedSEVStore.init(args.dir, meta={
                "dataset": "sevs", "seed": args.seed, "scale": args.scale,
            })
            count = store.ingest(mono.all_reports())
        else:
            from repro.storage import PartitionedTicketStore

            scenario = paper_backbone_scenario(seed=args.seed)
            corpus = BackboneSimulator(scenario).run()
            store = PartitionedTicketStore.init(args.dir, meta={
                "dataset": "tickets", "seed": args.seed,
                "window_h": corpus.window_h,
            })
            count = store.ingest(corpus.tickets.completed())
        print(f"initialized {store.domain} store at {args.dir}: "
              f"{count} rows in {len(store.partition_keys())} "
              f"partitions (years "
              f"{store.years()[0]}-{store.years()[-1]})")
    elif args.store_command == "compact":
        store = _open_partitioned(args.dir)
        if args.retain_from is not None:
            dropped = store.apply_retention(args.retain_from)
            print(f"retention: dropped {len(dropped)} partitions "
                  f"older than {args.retain_from}")
        demoted = store.compact(keep_hot_years=args.keep_hot_years)
        tiers = store.status()["tiers"]
        print(f"compacted: {len(demoted)} partitions demoted to cold "
              f"({tiers['hot']} hot / {tiers['cold']} cold)")
    else:
        store = _open_partitioned(args.dir)
        print(json.dumps(store.status(), indent=2, sort_keys=True))
    return 0


def _stream(seed: int, scale: float, jobs: int,
            replay: Optional[str], checkpoint: Optional[str],
            dataset: str = "sevs",
            store_dir: Optional[str] = None) -> None:
    import os

    from repro.stream import (
        StreamEngine, generate_aggregates, live_feed, replay_file,
    )
    from repro.viz import stream_dashboard

    if store_dir is not None:
        # Replay a partitioned store: the manifest plans the scan and
        # the records fold exactly as a file replay of the same rows.
        store = _open_partitioned(store_dir)
        if checkpoint is not None:
            print("(checkpointing is file-replay-only; ignoring "
                  "--checkpoint for the store replay)")
        if store.domain == "ticket":
            _stream_tickets(
                iter(store.records()),
                "ingested {count} tickets from " + store_dir,
            )
            return
        engine = StreamEngine()
        consumed = engine.run(store.records())
        print(f"ingested {consumed} events from {store_dir} "
              f"({len(store.partition_keys())} partitions)")
        print()
        print(stream_dashboard(engine.aggregates, None))
        return

    if replay is not None:
        from repro.io import sniff_dataset

        if sniff_dataset(replay) == "tickets":
            from repro.stream import replay_tickets_file

            if checkpoint is not None:
                print("(checkpointing is SEV-only; ignoring --checkpoint "
                      "for the ticket stream)")
            _stream_tickets(
                replay_tickets_file(replay),
                "ingested {count} tickets from " + replay,
            )
            return
    elif dataset == "tickets":
        from repro.stream import live_ticket_feed

        if checkpoint is not None:
            print("(checkpointing is SEV-only; ignoring --checkpoint "
                  "for the ticket stream)")
        scenario = paper_backbone_scenario(seed=seed)
        _stream_tickets(
            live_ticket_feed(scenario), "generated {count} tickets"
        )
        return

    fleet = None
    if replay is not None:
        # Incremental ingestion: replay the exported corpus event by
        # event, resuming from the checkpoint when one exists.  A
        # corrupt snapshot (torn write) is ignored with a warning and
        # the replay restarts from the beginning.
        if checkpoint is not None and os.path.exists(checkpoint):
            engine = StreamEngine.resume_or_fresh(checkpoint)
            if engine.events_ingested:
                print(f"resumed from {checkpoint} "
                      f"({engine.events_ingested} events already ingested)")
        else:
            engine = StreamEngine(checkpoint_path=checkpoint)
        consumed = engine.run(replay_file(replay))
        print(f"ingested {consumed} new events from {replay}")
        aggregates = engine.aggregates
    else:
        # Sharded parallel generation: N workers, identical output.
        scenario = paper_scenario(seed=seed, scale=scale)
        fleet = scenario.fleet
        aggregates = generate_aggregates(scenario, jobs=jobs)
        print(f"generated {aggregates.events} events "
              f"across {jobs} worker(s)")
        if checkpoint is not None:
            from repro.stream import save_checkpoint

            save_checkpoint(checkpoint, aggregates, aggregates.events)
            print(f"checkpoint written to {checkpoint}")
    print()
    print(stream_dashboard(aggregates, fleet))


def _stream_tickets(source, banner: str) -> None:
    """Fold a ticket feed into the runtime's mergeable states."""
    from repro.runtime.states import OutageTallies, TicketDurationSketches
    from repro.viz import ticket_dashboard

    outages = OutageTallies()
    durations = TicketDurationSketches()
    count = 0
    for ticket in source:
        outages.fold(ticket)
        durations.fold(ticket)
        count += 1
    print(banner.format(count=count))
    print()
    print(ticket_dashboard(outages, durations))


def _analyze(path: str, backend: str = "batch") -> None:
    from repro.io import (
        import_sevs_csv, import_sevs_json, import_sevs_jsonl,
        sniff_dataset, strip_gz_suffix,
    )

    if sniff_dataset(path) == "tickets":
        _analyze_tickets(path, backend)
        return
    stem = strip_gz_suffix(path)
    if stem.endswith(".jsonl"):
        reader = import_sevs_jsonl
    elif stem.endswith(".json"):
        reader = import_sevs_json
    else:
        reader = import_sevs_csv
    store = reader(path)
    _print_intra_tables(store, paper_fleet(), backend=backend)


def _analyze_tickets(path: str, backend: str = "batch") -> None:
    """Analyze an imported ticket corpus through the runtime.

    Without a topology there are no edge-level artifacts; the
    vendor scorecards and repair-duration percentiles cover what a
    standalone ticket export can support, on any backend.
    """
    from repro.io import (
        import_tickets_csv, import_tickets_json, import_tickets_jsonl,
        strip_gz_suffix,
    )
    from repro.runtime import Executor, RunContext
    from repro.runtime.analyses import (
        RepairDurationAnalysis,
        VendorScorecardAnalysis,
    )
    from repro.viz import duration_table, scorecard_table

    stem = strip_gz_suffix(path)
    if stem.endswith(".jsonl"):
        reader = import_tickets_jsonl
    elif stem.endswith(".json"):
        reader = import_tickets_json
    else:
        reader = import_tickets_csv
    db = reader(path)
    print(f"corpus: {len(db.completed())} completed tickets, "
          f"{len(db.links())} links, {len(db.vendors())} vendors\n")
    results = Executor(backend=backend).run(
        [VendorScorecardAnalysis(), RepairDurationAnalysis()],
        RunContext(tickets=db),
    )
    print(scorecard_table(results["vendor_scorecards"]))
    print("\n" + duration_table(results["repair_durations"]))


def _full_report(seed: Optional[int], scale: float,
                 backend: str = "batch",
                 cache_dir: Optional[str] = None,
                 jobs: Optional[int] = None,
                 digest: bool = False) -> None:
    from repro.core import backbone_study_report
    from repro.runtime import ResultCache, RunContext, run_intra_report

    scenario = (paper_scenario(seed=seed, scale=scale)
                if seed is not None else paper_scenario(scale=scale))
    store = IntraSimulator(scenario).run()
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    context = RunContext(
        store=store, fleet=scenario.fleet, corpus_seed=scenario.seed
    )
    intra = run_intra_report(
        context, backend=backend, cache=cache,
        jobs=jobs if jobs is not None else 4,
        use_processes=jobs is not None and jobs > 1,
    )
    print(intra.render())
    if digest:
        from repro.faultline.oracle import report_digest

        print(f"\nreport_digest: {report_digest(intra)}")
    if cache is not None and cache.hits:
        _print_cache_stats(cache)

    backbone_scenario = (paper_backbone_scenario(seed=seed)
                         if seed is not None else paper_backbone_scenario())
    corpus = BackboneSimulator(backbone_scenario).run()
    monitor = BackboneMonitor(corpus.topology, corpus.tickets)
    backbone = backbone_study_report(
        monitor, corpus.topology, corpus.window_h
    )
    print("\n" + backbone.render())
    if digest:
        from repro.faultline.oracle import report_digest

        print(f"\nreport_digest: {report_digest(backbone)}")

    print()
    _survivability_report(seed, backend, cache_dir, jobs, digest=digest)


def _chaos(seed: int, sites: Optional[str], quick: bool,
           out: Optional[str]) -> int:
    """Run the fault-injection drill suite and summarize it."""
    from repro.faultline.drills import chaos_suite, report_json

    chosen = None
    if sites is not None:
        chosen = [site.strip() for site in sites.split(",") if site.strip()]
    report = chaos_suite(seed=seed, quick=quick, sites=chosen)
    for drill in report["drills"]:
        status = "PASS" if drill["passed"] else "FAIL"
        detail = drill["detail"]
        fired = detail.get("faults_fired", 0)
        print(f"[{status}] {drill['name']:<13} "
              f"sites={','.join(detail['sites']) or '-'} "
              f"faults={fired}")
    print(f"\nfault report digest {report['report_digest'][:16]} "
          f"(seed {report['seed']})")
    if out is not None:
        from pathlib import Path

        Path(out).write_text(report_json(report))
        print(f"report written to {out}")
    return 0 if report["passed"] else 1


def _serve(args) -> int:
    """Start the long-lived report service (blocks until shutdown)."""
    from repro.serve import ServeApp

    app = ServeApp(
        seed=args.seed, scale=args.scale,
        backbone_seed=args.backbone_seed,
        host=args.host, port=args.port,
        data_dir=args.data_dir, job_workers=args.jobs,
        prewarm=not args.no_warm, corpus_path=args.corpus,
        store_dir=args.store_dir,
    )
    try:
        app.start()
        pending = app.queue.stats()["queued"]
        if pending:
            print(f"resumed {pending} pending job(s) from "
                  f"{app.data_dir / 'jobs.json'}")
        print(f"serving on {app.url} "
              f"(seed {args.seed}, scale {args.scale}, "
              f"{args.jobs} job worker(s))")
        print(f"  try: curl {app.url}/healthz")
        print(f"       curl {app.url}/reports/intra")
        app.serve_forever()
    finally:
        app.stop()
    return 0


def _coerce_axis_value(text: str):
    """CLI axis values: bool, int, float, then string — in that order."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _parse_axes(specs: List[str]) -> dict:
    """``--axes`` strings into a {path: values} mapping.

    Each spec is ``PATH=V1,V2,...`` or ``PATH=LO..HI`` (an inclusive
    integer range); repeated paths are rejected rather than silently
    merged.
    """
    axes: dict = {}
    for text in specs:
        path, sep, values = text.partition("=")
        path = path.strip()
        if not sep or not path or not values.strip():
            raise SystemExit(
                f"bad --axes {text!r}: expected PATH=V1,V2,... "
                f"or PATH=LO..HI"
            )
        if path in axes:
            raise SystemExit(f"duplicate --axes path {path!r}")
        values = values.strip()
        if ".." in values and "," not in values:
            lo, _, hi = values.partition("..")
            try:
                axes[path] = list(range(int(lo), int(hi) + 1))
            except ValueError:
                raise SystemExit(
                    f"bad --axes range {values!r}: LO..HI needs integers"
                )
            if not axes[path]:
                raise SystemExit(f"empty --axes range {values!r}")
        else:
            axes[path] = [
                _coerce_axis_value(v.strip()) for v in values.split(",")
            ]
    return axes


def _grid_base_spec(args):
    """Resolve the base spec of a grid command from its arguments."""
    from repro.scenarios import load_spec, preset

    base = load_spec(args.spec) if args.spec else preset(args.preset)
    updates = {}
    if args.seed is not None:
        updates["seed"] = args.seed
    if args.scale is not None:
        updates["scale"] = args.scale
    return base.with_updates(**updates) if updates else base


def _grid(args) -> int:
    import json

    from repro.scenarios import GridRunner, GridSpec, grid_diff
    from repro.viz import axis_table, grid_table

    if args.grid_command == "diff":
        with open(args.left) as fh:
            left = json.load(fh)
        with open(args.right) as fh:
            right = json.load(fh)
        diff = grid_diff(left, right)
        print(json.dumps(diff, indent=1, sort_keys=True))
        return 0 if diff["identical"] else 1

    grid = GridSpec(base=_grid_base_spec(args),
                    axes=_parse_axes(args.axes))

    if args.grid_command == "expand":
        print(f"grid: {grid.cell_count()} cells over "
              f"{len(grid.axes)} axes (digest {grid.digest()[:12]})")
        for cell in grid.cells():
            params = ", ".join(
                f"{path}={cell.overrides[path]}"
                for path in sorted(cell.overrides)
            )
            print(f"  cell {cell.index:3d}  {params}  "
                  f"spec={cell.spec.digest()[:12]}")
        return 0

    from repro.runtime import ResultCache

    cache = ResultCache(args.cache) if args.cache is not None else None
    jobs = args.jobs
    runner = GridRunner(
        backend=args.backend,
        jobs=jobs if jobs is not None else 4,
        use_processes=jobs is not None and jobs > 1,
        cache=cache,
    )
    report = runner.run(grid)
    print(grid_table(report))
    table_axis = args.table_axis
    if table_axis is None and len(grid.axes) > 1:
        table_axis = grid.axis_paths[0]
    if table_axis is not None:
        metrics = report["cells"][0]["metrics"]
        if args.table_metric in metrics:
            print()
            print(axis_table(report, table_axis, args.table_metric))
    print(f"\nsummary_digest: {report['summary_digest']}")
    print(f"[grid] {len(report['cells'])} cells, "
          f"{report['cache']['cell_hits']} cached, "
          f"{report['cache']['cell_misses']} computed")
    if args.out is not None:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
        print(f"[grid] report written to {args.out}")
    return 0


def _scenario(args) -> int:
    from pathlib import Path

    from repro.scenarios import (
        ScenarioError, list_presets, load_spec, preset,
    )

    if args.scenario_command == "list":
        for name in list_presets():
            spec = preset(name)
            print(f"{name:20s} kind={spec.kind:9s} "
                  f"digest={spec.digest()[:12]}")
        return 0
    if args.scenario_command == "show":
        if Path(args.spec).exists():
            spec = load_spec(args.spec)
        else:
            spec = preset(args.spec)
        import json

        print(json.dumps(spec.to_dict(), indent=1, sort_keys=True))
        print(f"digest: {spec.digest()}")
        return 0
    # validate
    failed = 0
    for path in args.paths:
        try:
            spec = load_spec(path)
        except ScenarioError as exc:
            print(f"[FAIL] {path}: {exc}")
            failed += 1
        else:
            print(f"[OK]   {path}: {spec.name} ({spec.kind}) "
                  f"digest={spec.digest()[:12]}")
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except KeyboardInterrupt:
        # Long-running modes (serve, stream, bench) end at Ctrl-C;
        # that is a shutdown, not a crash — no traceback.
        print("\ninterrupted", file=sys.stderr)
        return 130


def _dispatch(args) -> int:
    if args.command == "report":
        jobs = args.jobs
        if jobs == "auto":
            from repro.stream import resolve_jobs

            jobs = resolve_jobs("auto")
        if args.study == "intra":
            _intra_report(args.seed, args.scale, args.backend, jobs,
                          digest=args.digest, store_dir=args.store_dir)
        elif args.study == "backbone":
            _backbone_report(args.seed, args.backend, args.cache, jobs,
                             digest=args.digest, store_dir=args.store_dir)
        elif args.study == "survivability":
            if args.store_dir is not None:
                raise SystemExit(
                    "survivability trials are generated, not stored; "
                    "'report survivability' does not take --store-dir"
                )
            _survivability_report(args.seed, args.backend, args.cache,
                                  jobs, digest=args.digest)
        else:
            if args.store_dir is not None:
                raise SystemExit(
                    "a partitioned store holds one domain; use "
                    "--store-dir with 'report intra' or "
                    "'report backbone'"
                )
            _full_report(args.seed, args.scale, args.backend, args.cache,
                         jobs, digest=args.digest)
        if args.cache_prune is not None:
            if args.cache is None:
                raise SystemExit(
                    "--cache-prune needs --cache DIR (nothing to prune "
                    "without a persistent cache)"
                )
            from repro.runtime import ResultCache

            cache = ResultCache(args.cache)
            evicted = cache.prune(args.cache_prune)
            print(f"\n[cache] pruned {evicted} entries; "
                  f"{cache.disk_bytes()} bytes on disk "
                  f"(limit {args.cache_prune})")
    elif args.command == "export":
        _export(args.dataset, args.path, args.seed, args.scale)
    elif args.command == "analyze":
        _analyze(args.path, args.backend)
    elif args.command == "stream":
        _stream(args.seed, args.scale, args.jobs,
                args.replay, args.checkpoint, args.dataset,
                store_dir=args.store_dir)
    elif args.command == "store":
        return _store(args)
    elif args.command == "scenario":
        return _scenario(args)
    elif args.command == "grid":
        return _grid(args)
    elif args.command == "bench":
        from repro.perf import run_bench_suite

        run_bench_suite(quick=args.quick, out_dir=args.out,
                        seed=args.seed)
    elif args.command == "chaos":
        return _chaos(args.seed, args.sites, args.quick, args.out)
    elif args.command == "serve":
        return _serve(args)
    elif args.command == "verify":
        from repro.verify import render_verification, run_verification

        checks = run_verification(seed=args.seed)
        print(render_verification(checks))
        if not all(c.passed for c in checks):
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
