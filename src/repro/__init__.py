"""repro — reproduction of "A Large Scale Study of Data Center Network
Reliability" (Meza, Xu, Veeraraghavan, Mutlu; IMC 2018).

The library rebuilds, from scratch, every system the study sits on —
the intra data center topologies (cluster and fabric), the fleet
growth model, the SEV database and authoring workflow, the automated
remediation engine, the backbone (edges, fiber links, vendors, repair
tickets, health monitor, traffic engineering) — plus a calibrated
synthetic corpus generator standing in for the proprietary Facebook
data, and the analysis pipeline that reproduces every table and
figure of the paper.

Quickstart::

    from repro import paper_scenario, IntraSimulator, root_cause_breakdown

    store = IntraSimulator(paper_scenario()).run()
    table2 = root_cause_breakdown(store)
    print(table2.distribution())

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.core import (
    backbone_reliability,
    capacity_report,
    continent_table,
    design_comparison,
    incident_distribution,
    incident_growth,
    incident_rates,
    irt_vs_fleet_size,
    population_breakdown,
    remediation_table,
    root_cause_breakdown,
    root_causes_by_device,
    severity_by_device,
    severity_rates_over_time,
    sevs_per_employee,
    survivable_capacity,
    switch_reliability,
    switches_vs_employees,
)
from repro.backbone import BackboneMonitor, TicketDatabase, TrafficEngineer
from repro.survivability import generate_trials, run_survivability_report
from repro.config import DeploymentPipeline, ReviewPolicy
from repro.drtest import DatacenterDrainDrill, FaultInjector, StormDrill
from repro.fleet import paper_employees, paper_fleet
from repro.incidents import RootCause, SEVReport, SEVStore, Severity
from repro.priorwork import compare_root_causes
from repro.remediation import RemediationEngine
from repro.services import (
    ImpactModel,
    masking_report,
    place_uniform,
    reference_catalog,
)
from repro.simulation import (
    BackboneSimulator,
    IntraSimulator,
    paper_backbone_scenario,
    paper_scenario,
)
from repro.runtime import Executor, ResultCache, RunContext
from repro.stream import StreamAggregates, StreamEngine
from repro.topology import (
    DeviceType,
    NetworkDesign,
    build_backbone,
    build_cluster_network,
    build_fabric_network,
)

__version__ = "1.0.0"

__all__ = [
    "BackboneMonitor",
    "BackboneSimulator",
    "DatacenterDrainDrill",
    "DeploymentPipeline",
    "DeviceType",
    "Executor",
    "FaultInjector",
    "ImpactModel",
    "IntraSimulator",
    "NetworkDesign",
    "RemediationEngine",
    "ResultCache",
    "ReviewPolicy",
    "RootCause",
    "RunContext",
    "SEVReport",
    "SEVStore",
    "Severity",
    "StormDrill",
    "StreamAggregates",
    "StreamEngine",
    "TicketDatabase",
    "TrafficEngineer",
    "__version__",
    "backbone_reliability",
    "build_backbone",
    "build_cluster_network",
    "build_fabric_network",
    "capacity_report",
    "compare_root_causes",
    "continent_table",
    "design_comparison",
    "generate_trials",
    "incident_distribution",
    "incident_growth",
    "incident_rates",
    "irt_vs_fleet_size",
    "masking_report",
    "paper_backbone_scenario",
    "paper_employees",
    "paper_fleet",
    "paper_scenario",
    "place_uniform",
    "population_breakdown",
    "reference_catalog",
    "remediation_table",
    "root_cause_breakdown",
    "root_causes_by_device",
    "run_survivability_report",
    "severity_by_device",
    "severity_rates_over_time",
    "sevs_per_employee",
    "survivable_capacity",
    "switch_reliability",
    "switches_vs_employees",
]
