"""Graph analyses over intra data center networks.

The paper's blast-radius argument (section 5.2/5.4: devices with higher
bisection bandwidth affect a larger number of connected downstream
devices) and the fabric's path-diversity claim (section 5.2) are both
graph properties.  This module turns a built network into a
:class:`networkx.Graph` and computes them.
"""

from __future__ import annotations

from typing import Iterable, List, Set

import networkx as nx

from repro.topology.devices import DeviceType


def build_graph(network) -> nx.Graph:
    """Build an undirected graph from a Cluster/FabricNetwork.

    Nodes carry a ``device_type`` attribute; edges are the physical
    links recorded by the builder.
    """
    graph = nx.Graph()
    for name, device in network.devices.items():
        graph.add_node(name, device_type=device.device_type)
    graph.add_edges_from(network.links)
    return graph


def downstream_devices(graph: nx.Graph, device: str) -> Set[str]:
    """Devices that lose some connectivity when ``device`` fails.

    A node is *downstream* of ``device`` if removing ``device``
    disconnects it from every Core (the inter data center exit).  This
    is the paper's notion of blast radius: failing a high-bisection
    device strands many downstream devices.
    """
    if device not in graph:
        raise KeyError(f"unknown device {device!r}")
    cores = {
        n
        for n, data in graph.nodes(data=True)
        if data.get("device_type") is DeviceType.CORE and n != device
    }
    if not cores:
        return set()
    reduced = graph.copy()
    reduced.remove_node(device)
    reachable: Set[str] = set()
    for core in cores:
        reachable |= nx.node_connected_component(reduced, core)
    return set(reduced.nodes) - reachable


def path_diversity(graph: nx.Graph, a: str, b: str) -> int:
    """Number of node-disjoint paths between two devices.

    Higher path diversity is what lets the fabric tolerate failures
    with long repair times (sections 5.2, 6.1).
    """
    if a not in graph or b not in graph:
        raise KeyError(f"unknown endpoint: {a!r} or {b!r}")
    if a == b:
        raise ValueError("path diversity needs two distinct endpoints")
    if not nx.has_path(graph, a, b):
        return 0
    if b in graph[a]:
        # node_connectivity requires non-adjacent nodes; count the
        # direct link plus disjoint paths through the residual graph.
        residual = graph.copy()
        residual.remove_edge(a, b)
        if not nx.has_path(residual, a, b):
            return 1
        return 1 + nx.node_connectivity(residual, a, b)
    return nx.node_connectivity(graph, a, b)


def bisection_links(graph: nx.Graph, device: str) -> int:
    """Degree of a device: the links whose capacity transits it.

    Used as the concrete proxy for the paper's bisection-bandwidth
    ordering of device types.
    """
    if device not in graph:
        raise KeyError(f"unknown device {device!r}")
    return graph.degree[device]


def is_connected_under_failures(
    graph: nx.Graph, failed: Iterable[str], a: str, b: str
) -> bool:
    """Whether ``a`` can still reach ``b`` after removing failed devices."""
    failed_set = set(failed)
    if a in failed_set or b in failed_set:
        return False
    reduced = graph.copy()
    reduced.remove_nodes_from(failed_set & set(reduced.nodes))
    return a in reduced and b in reduced and nx.has_path(reduced, a, b)


def rank_by_blast_radius(graph: nx.Graph) -> List[str]:
    """Devices ordered by descending blast radius (ties by name)."""
    sizes = {n: len(downstream_devices(graph, n)) for n in graph.nodes}
    return sorted(sizes, key=lambda n: (-sizes[n], n))
