"""The full Figure 1 world.

One object holding everything the paper's architecture diagram shows:
a classic cluster region (Region A), a fabric region (Region B), the
WAN backbone of edges and fiber links between them, and the edge
presences that terminate user traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.backbone.planes import EdgePresence, PlanedBackbone
from repro.topology.backbone import (
    BackboneTopology,
    Continent,
    EdgeNode,
    FiberLink,
)
from repro.topology.devices import DeviceType, NetworkDesign
from repro.topology.region import Region, build_region


@dataclass
class World:
    """Everything in Figure 1."""

    regions: List[Region]
    backbone: BackboneTopology
    cross_dc: PlanedBackbone
    pops: List[EdgePresence] = field(default_factory=list)

    def region(self, name: str) -> Region:
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(f"unknown region {name!r}")

    def total_devices(self) -> int:
        return sum(
            len(dc.devices) for r in self.regions for dc in r.datacenters
        )

    def device_counts(self) -> Dict[DeviceType, int]:
        counts: Dict[DeviceType, int] = {}
        for region in self.regions:
            for t in DeviceType:
                counts[t] = counts.get(t, 0) + region.count(t)
        return counts

    def designs(self) -> Dict[str, List[NetworkDesign]]:
        return {r.name: r.designs for r in self.regions}


def build_paper_world(
    cluster_racks_per_cluster: int = 16,
    fabric_racks_per_pod: int = 16,
    extra_edges: int = 2,
    seed: int = 0,
) -> World:
    """Build the architecture of Figure 1.

    Region A: two cluster-design data centers.  Region B: two
    fabric-design data centers.  Each region has an edge; the edges
    (plus ``extra_edges`` transit-only edges) are meshed with at least
    three fiber links each; the four-plane cross-DC backbone spans the
    regions; two POPs terminate user traffic.
    """
    import random as _random

    rng = _random.Random(seed)

    region_a = build_region(
        "regiona", NetworkDesign.CLUSTER, datacenters=2,
        clusters=2, racks_per_cluster=cluster_racks_per_cluster,
    )
    region_b = build_region(
        "regionb", NetworkDesign.FABRIC, datacenters=2,
        pods=2, racks_per_pod=fabric_racks_per_pod,
    )

    backbone = BackboneTopology()
    edge_names = []
    for i, region in enumerate((region_a, region_b)):
        backbone.add_edge_node(EdgeNode(
            name=region.edge,
            continent=(Continent.NORTH_AMERICA if i == 0
                       else Continent.EUROPE),
            is_datacenter_region=True,
        ))
        edge_names.append(region.edge)
    for i in range(extra_edges):
        name = f"edge-transit{i}"
        backbone.add_edge_node(EdgeNode(
            name=name,
            continent=rng.choice([Continent.NORTH_AMERICA,
                                  Continent.EUROPE, Continent.ASIA]),
        ))
        edge_names.append(name)

    link_seq = 0

    def add_link(a: str, b: str) -> None:
        nonlocal link_seq
        backbone.add_link(FiberLink(
            link_id=f"wl-{link_seq:03d}", a=a, b=b,
            vendor=f"vendor{link_seq % 4:02d}",
            capacity_gbps=100.0,
        ))
        link_seq += 1

    # Ring plus chords until every edge has >= 3 links.
    for i, name in enumerate(edge_names):
        add_link(name, edge_names[(i + 1) % len(edge_names)])
    while True:
        deficient = [
            n for n in edge_names if len(backbone.links_of_edge(n)) < 3
        ]
        if not deficient:
            break
        a = deficient[0]
        add_link(a, rng.choice([n for n in edge_names if n != a]))
    backbone.validate()

    cross_dc = PlanedBackbone(["regiona", "regionb"])
    pops = [
        EdgePresence("pop-east", {"regiona": 12.0, "regionb": 80.0}),
        EdgePresence("pop-west", {"regiona": 70.0, "regionb": 18.0}),
    ]
    return World(
        regions=[region_a, region_b],
        backbone=backbone,
        cross_dc=cross_dc,
        pops=pops,
    )
