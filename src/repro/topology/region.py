"""Regions and data centers (section 3).

Facebook's network consists of interconnected *data center regions*;
each region contains buildings called *data centers*, built with either
the cluster design or the fabric design.  Both designs reach the WAN
backbone through backbone routers located in edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Union

from repro.topology.cluster import ClusterNetwork, build_cluster_network
from repro.topology.devices import Device, DeviceType, NetworkDesign
from repro.topology.fabric import FabricNetwork, build_fabric_network

IntraNetwork = Union[ClusterNetwork, FabricNetwork]


@dataclass
class DataCenter:
    """A single data center building and its intra DC network."""

    name: str
    region: str
    design: NetworkDesign
    network: IntraNetwork

    @property
    def devices(self) -> Dict[str, Device]:
        return self.network.devices

    def count(self, device_type: DeviceType) -> int:
        return self.network.count(device_type)


@dataclass
class Region:
    """A data center region: one or more data centers plus edge uplink."""

    name: str
    datacenters: List[DataCenter] = field(default_factory=list)
    edge: str = ""

    def add_datacenter(self, dc: DataCenter) -> None:
        if dc.region != self.name:
            raise ValueError(
                f"data center {dc.name!r} belongs to region {dc.region!r}, "
                f"not {self.name!r}"
            )
        self.datacenters.append(dc)

    def all_devices(self) -> Iterator[Device]:
        for dc in self.datacenters:
            yield from dc.devices.values()

    def count(self, device_type: DeviceType) -> int:
        return sum(dc.count(device_type) for dc in self.datacenters)

    @property
    def designs(self) -> List[NetworkDesign]:
        return [dc.design for dc in self.datacenters]


def build_region(
    name: str,
    design: NetworkDesign,
    datacenters: int = 2,
    edge: str = "",
    deployed_year: int = 2011,
    **network_kwargs,
) -> Region:
    """Build a region whose data centers all share one design.

    Mirrors Figure 1, where Region A is entirely cluster-based and
    Region B is entirely fabric-based.  Extra keyword arguments are
    forwarded to the network builder.
    """
    if design is NetworkDesign.SHARED:
        raise ValueError("a region must be CLUSTER or FABRIC, not SHARED")
    region = Region(name=name, edge=edge or f"edge-{name}")
    for i in range(datacenters):
        dc_name = f"{name}-dc{i + 1}"
        if design is NetworkDesign.CLUSTER:
            net: IntraNetwork = build_cluster_network(
                dc_name, name, deployed_year=deployed_year, **network_kwargs
            )
        else:
            net = build_fabric_network(
                dc_name, name, deployed_year=deployed_year, **network_kwargs
            )
        region.add_datacenter(DataCenter(dc_name, name, design, net))
    return region
