"""Fleet naming convention.

Section 4.3.1: every network device is named with a unique,
machine-understandable string prefixed with the device type, for
example every rack switch has a name prefixed with ``rsw.``.  The
study classifies SEVs by parsing that prefix, so the convention is a
load-bearing part of the methodology and is reproduced here exactly.

A full name looks like ``rsw.042.pod7.dc1.regionA``: type prefix,
zero-padded index, containment path from the smallest unit outward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.topology.devices import DeviceType

_PREFIXES = {t.value: t for t in DeviceType}


@dataclass(frozen=True)
class DeviceName:
    """A parsed device name."""

    device_type: DeviceType
    index: int
    unit: str
    datacenter: str
    region: str

    def __str__(self) -> str:
        return (
            f"{self.device_type.value}.{self.index:03d}."
            f"{self.unit}.{self.datacenter}.{self.region}"
        )


def make_device_name(
    device_type: DeviceType,
    index: int,
    unit: str,
    datacenter: str,
    region: str,
) -> str:
    """Build a canonical device name string.

    ``unit`` is the deployment unit: a cluster name in the classic
    design, a pod name in the fabric design, or ``plane`` scoped names
    for Cores.
    """
    return str(DeviceName(device_type, index, unit, datacenter, region))


def parse_device_name(name: str) -> DeviceName:
    """Parse a canonical device name; raises ValueError on bad input."""
    parts = name.split(".")
    if len(parts) != 5:
        raise ValueError(f"malformed device name {name!r}: expected 5 fields")
    prefix, index_str, unit, datacenter, region = parts
    if prefix not in _PREFIXES:
        raise ValueError(f"unknown device type prefix {prefix!r} in {name!r}")
    if not index_str.isdigit():
        raise ValueError(f"non-numeric device index {index_str!r} in {name!r}")
    return DeviceName(
        device_type=_PREFIXES[prefix],
        index=int(index_str),
        unit=unit,
        datacenter=datacenter,
        region=region,
    )


def device_type_from_name(name: str) -> Optional[DeviceType]:
    """Classify a device by its name prefix, as the study does.

    Returns None when the prefix is not a known device type, mirroring
    how non-network names fall out of the SEV classification.
    """
    prefix = name.split(".", 1)[0]
    return _PREFIXES.get(prefix)
