"""Network topology substrate.

Models Facebook's network architecture as described in section 3 of the
paper: the older cluster-based Clos design, the newer data center fabric
design, the regions and data centers that contain them, and the WAN
backbone of edge nodes joined by fiber links.
"""

from repro.topology.devices import (
    Device,
    DeviceRole,
    DeviceType,
    NetworkDesign,
    Port,
)
from repro.topology.naming import (
    DeviceName,
    device_type_from_name,
    make_device_name,
    parse_device_name,
)
from repro.topology.cluster import ClusterNetwork, build_cluster_network
from repro.topology.fabric import FabricNetwork, build_fabric_network
from repro.topology.region import DataCenter, Region, build_region
from repro.topology.graph import (
    bisection_links,
    build_graph,
    downstream_devices,
    is_connected_under_failures,
    path_diversity,
)
from repro.topology.audit import (
    AuditReport,
    audit_cluster_network,
    audit_fabric_network,
)
from repro.topology.world import World, build_paper_world
from repro.topology.backbone import (
    BackboneTopology,
    Continent,
    EdgeNode,
    FiberLink,
    build_backbone,
)

__all__ = [
    "AuditReport",
    "BackboneTopology",
    "ClusterNetwork",
    "Continent",
    "DataCenter",
    "Device",
    "DeviceName",
    "DeviceRole",
    "DeviceType",
    "EdgeNode",
    "FabricNetwork",
    "FiberLink",
    "NetworkDesign",
    "Port",
    "Region",
    "World",
    "audit_cluster_network",
    "audit_fabric_network",
    "bisection_links",
    "build_backbone",
    "build_cluster_network",
    "build_fabric_network",
    "build_graph",
    "build_paper_world",
    "build_region",
    "device_type_from_name",
    "downstream_devices",
    "is_connected_under_failures",
    "make_device_name",
    "parse_device_name",
    "path_diversity",
]
