"""Network device model.

The paper classifies intra data center incidents by the type of the
offending device (section 4.3.1).  Seven device types appear throughout
the study (Figure 1):

========  =============================  ==================
Type      Role                           Network design
========  =============================  ==================
``CORE``  Core network router            shared by both
``CSA``   Cluster switch aggregator      cluster (classic)
``CSW``   Cluster switch                 cluster (classic)
``ESW``   Edge switch                    fabric
``SSW``   Spine switch                   fabric
``FSW``   Fabric switch                  fabric
``RSW``   Top-of-rack switch             shared by both
========  =============================  ==================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class DeviceType(enum.Enum):
    """The seven network device types studied in the paper."""

    CORE = "core"
    CSA = "csa"
    CSW = "csw"
    ESW = "esw"
    SSW = "ssw"
    FSW = "fsw"
    RSW = "rsw"

    @property
    def design(self) -> "NetworkDesign":
        """The network design this device type belongs to."""
        return _DESIGN_OF_TYPE[self]

    @property
    def is_cluster(self) -> bool:
        """True for devices specific to the classic cluster design."""
        return self.design is NetworkDesign.CLUSTER

    @property
    def is_fabric(self) -> bool:
        """True for devices specific to the data center fabric design."""
        return self.design is NetworkDesign.FABRIC

    @property
    def supports_automated_repair(self) -> bool:
        """Whether the automated repair system covers this type.

        Section 4.1.1: automated repair is employed for RSWs, FSWs, and
        a small percentage of Core devices.
        """
        return self in (DeviceType.RSW, DeviceType.FSW, DeviceType.CORE)

    @property
    def bisection_rank(self) -> int:
        """Relative bisection-bandwidth rank (higher = more aggregate
        bandwidth and a larger blast radius when the device fails).

        Section 5.2 observes that devices with higher bisection
        bandwidth (Cores, CSAs) have higher incident rates than devices
        with lower bisection bandwidth (RSWs).
        """
        return _BISECTION_RANK[self]

    @property
    def vendor_sourced(self) -> bool:
        """True for proprietary third-party vendor switches.

        Section 5.2: nearly all Cores and CSAs are third-party vendor
        switches, while fabric devices are built from commodity chips.
        """
        return self in (DeviceType.CORE, DeviceType.CSA, DeviceType.CSW)


class NetworkDesign(enum.Enum):
    """Which intra data center design a device belongs to (section 3.1)."""

    CLUSTER = "cluster"
    FABRIC = "fabric"
    SHARED = "shared"


_DESIGN_OF_TYPE = {
    DeviceType.CORE: NetworkDesign.SHARED,
    DeviceType.CSA: NetworkDesign.CLUSTER,
    DeviceType.CSW: NetworkDesign.CLUSTER,
    DeviceType.ESW: NetworkDesign.FABRIC,
    DeviceType.SSW: NetworkDesign.FABRIC,
    DeviceType.FSW: NetworkDesign.FABRIC,
    DeviceType.RSW: NetworkDesign.SHARED,
}

_BISECTION_RANK = {
    DeviceType.CORE: 6,
    DeviceType.CSA: 5,
    DeviceType.ESW: 4,
    DeviceType.SSW: 3,
    DeviceType.CSW: 2,
    DeviceType.FSW: 1,
    DeviceType.RSW: 0,
}

#: Device types that make up the classic cluster network (section 4.3.1).
CLUSTER_TYPES = (DeviceType.CSA, DeviceType.CSW)

#: Device types that make up the data center fabric (section 4.3.1).
FABRIC_TYPES = (DeviceType.ESW, DeviceType.SSW, DeviceType.FSW)


class DeviceRole(enum.Enum):
    """Operational state of a device in the fleet."""

    ACTIVE = "active"
    DRAINED = "drained"
    PROVISIONING = "provisioning"
    RETIRED = "retired"


@dataclass
class Port:
    """A single switch port.

    Port ping failures are the single largest source of automated
    remediations (50%, section 4.1.3), so ports are modeled explicitly.
    """

    index: int
    speed_gbps: float = 10.0
    up: bool = True
    peer: Optional[str] = None

    def cycle(self) -> None:
        """Turn the port off and on again (the classic repair)."""
        self.up = False
        self.up = True


@dataclass
class Device:
    """A network device in the fleet.

    Attributes mirror the fields the paper's analyses key off: the
    machine-readable name (whose prefix encodes the type, section
    4.3.1), the type itself, the containing data center and region, and
    the year the device entered service (used by the population model).
    """

    name: str
    device_type: DeviceType
    datacenter: str = ""
    region: str = ""
    deployed_year: int = 2011
    role: DeviceRole = DeviceRole.ACTIVE
    ports: list = field(default_factory=list)

    def __post_init__(self) -> None:
        prefix = self.name.split(".", 1)[0]
        if prefix != self.device_type.value:
            raise ValueError(
                f"device name {self.name!r} does not carry the "
                f"{self.device_type.value!r} prefix required by the "
                "fleet naming convention"
            )

    @property
    def design(self) -> NetworkDesign:
        return self.device_type.design

    @property
    def is_active(self) -> bool:
        return self.role is DeviceRole.ACTIVE

    def drain(self) -> None:
        """Remove the device from service ahead of maintenance.

        Section 5.2: draining devices prior to maintenance (adopted
        around 2014) limits the likelihood of repair affecting
        production traffic.
        """
        self.role = DeviceRole.DRAINED

    def undrain(self) -> None:
        self.role = DeviceRole.ACTIVE

    def add_ports(self, count: int, speed_gbps: float = 10.0) -> None:
        start = len(self.ports)
        for i in range(count):
            self.ports.append(Port(index=start + i, speed_gbps=speed_gbps))
