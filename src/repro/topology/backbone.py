"""WAN backbone topology (sections 3.2 and 6).

The physical backbone is abstracted as *edge nodes* connected through
*fiber links*.  Each end-to-end fiber link is embodied by optical
circuits made of multiple optical segments; an edge connects to the
backbone and Internet using at least three links and fails only when
all of its links fail (section 6).

Fiber links are operated by third-party *fiber vendors* whose repair
tickets form the inter data center dataset; edges live on continents,
whose marginal reliability Table 4 reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

#: An edge connects to the backbone using at least this many links.
MIN_LINKS_PER_EDGE = 3


class Continent(enum.Enum):
    """Continents used by the Table 4 breakdown."""

    NORTH_AMERICA = "north_america"
    EUROPE = "europe"
    ASIA = "asia"
    SOUTH_AMERICA = "south_america"
    AFRICA = "africa"
    AUSTRALIA = "australia"


@dataclass
class EdgeNode:
    """A geographical location where backbone hardware is deployed."""

    name: str
    continent: Continent
    is_datacenter_region: bool = False


@dataclass
class OpticalSegment:
    """One fiber span within a circuit, carrying multiple channels."""

    segment_id: str
    length_km: float = 100.0
    channels: int = 40


@dataclass
class FiberLink:
    """An end-to-end bundle of optical fiber between two edges."""

    link_id: str
    a: str
    b: str
    vendor: str
    capacity_gbps: float = 100.0
    segments: List[OpticalSegment] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError(f"link {self.link_id!r} must join distinct edges")

    @property
    def endpoints(self) -> Tuple[str, str]:
        return (self.a, self.b)

    def touches(self, edge: str) -> bool:
        return edge in (self.a, self.b)


@dataclass
class BackboneTopology:
    """Edge nodes joined by fiber links."""

    edges: Dict[str, EdgeNode] = field(default_factory=dict)
    links: Dict[str, FiberLink] = field(default_factory=dict)

    def add_edge_node(self, node: EdgeNode) -> None:
        if node.name in self.edges:
            raise ValueError(f"duplicate edge node {node.name!r}")
        self.edges[node.name] = node

    def add_link(self, link: FiberLink) -> None:
        if link.link_id in self.links:
            raise ValueError(f"duplicate link id {link.link_id!r}")
        for end in link.endpoints:
            if end not in self.edges:
                raise KeyError(f"link endpoint {end!r} is not a known edge")
        self.links[link.link_id] = link

    def links_of_edge(self, edge: str) -> List[FiberLink]:
        if edge not in self.edges:
            raise KeyError(f"unknown edge {edge!r}")
        return [l for l in self.links.values() if l.touches(edge)]

    def vendors(self) -> Set[str]:
        return {l.vendor for l in self.links.values()}

    def links_of_vendor(self, vendor: str) -> List[FiberLink]:
        return [l for l in self.links.values() if l.vendor == vendor]

    def edges_on(self, continent: Continent) -> List[EdgeNode]:
        return [e for e in self.edges.values() if e.continent is continent]

    def validate(self) -> None:
        """Check the published invariant: every edge has >= 3 links."""
        for name in self.edges:
            degree = len(self.links_of_edge(name))
            if degree < MIN_LINKS_PER_EDGE:
                raise ValueError(
                    f"edge {name!r} has only {degree} links; the backbone "
                    f"requires at least {MIN_LINKS_PER_EDGE} per edge"
                )

    def graph(self, failed_links: Optional[Iterable[str]] = None) -> nx.MultiGraph:
        """The backbone as a multigraph, optionally minus failed links."""
        failed = set(failed_links or ())
        g = nx.MultiGraph()
        for name, node in self.edges.items():
            g.add_node(name, continent=node.continent)
        for link in self.links.values():
            if link.link_id not in failed:
                g.add_edge(link.a, link.b, key=link.link_id,
                           capacity=link.capacity_gbps)
        return g

    def edge_is_up(self, edge: str, failed_links: Iterable[str]) -> bool:
        """An edge fails only when *all* of its links have failed."""
        failed = set(failed_links)
        links = self.links_of_edge(edge)
        return any(l.link_id not in failed for l in links)

    def partitions(self, failed_links: Iterable[str]) -> List[Set[str]]:
        """Connected components of the backbone under link failures.

        Section 3.2: without careful planning, fiber cuts would cause
        network partitions that cut off an entire region.
        """
        g = self.graph(failed_links)
        return [set(c) for c in nx.connected_components(g)]


def build_backbone(
    edge_count: int = 20,
    links_per_edge: int = MIN_LINKS_PER_EDGE,
    vendors: int = 12,
    continent_shares: Optional[Dict[Continent, float]] = None,
    seed: int = 0,
) -> BackboneTopology:
    """Build a synthetic backbone with the published shape.

    Edges are placed on continents according to ``continent_shares``
    (defaulting to the Table 4 distribution), then joined in a ring —
    guaranteeing connectivity — plus random chords until every edge has
    at least ``links_per_edge`` links.  Each link is assigned one of
    ``vendors`` synthetic fiber vendors.
    """
    import random as _random

    if edge_count < 3:
        raise ValueError("a backbone needs at least three edges")
    if links_per_edge < MIN_LINKS_PER_EDGE:
        raise ValueError(
            f"links_per_edge must be >= {MIN_LINKS_PER_EDGE} (section 6)"
        )
    if vendors < 1:
        raise ValueError("need at least one fiber vendor")

    rng = _random.Random(seed)
    shares = continent_shares or {
        Continent.NORTH_AMERICA: 0.37,
        Continent.EUROPE: 0.33,
        Continent.ASIA: 0.14,
        Continent.SOUTH_AMERICA: 0.10,
        Continent.AFRICA: 0.04,
        Continent.AUSTRALIA: 0.02,
    }
    continents = list(shares)
    weights = [shares[c] for c in continents]

    topo = BackboneTopology()
    for i in range(edge_count):
        continent = rng.choices(continents, weights=weights)[0]
        topo.add_edge_node(
            EdgeNode(
                name=f"edge{i:03d}",
                continent=continent,
                is_datacenter_region=(i % 3 == 0),
            )
        )

    names = sorted(topo.edges)
    vendor_names = [f"vendor{v:02d}" for v in range(vendors)]
    link_seq = 0

    def add(a: str, b: str) -> None:
        nonlocal link_seq
        link = FiberLink(
            link_id=f"fbl-{link_seq:04d}",
            a=a,
            b=b,
            vendor=rng.choice(vendor_names),
            segments=[
                OpticalSegment(f"seg-{link_seq:04d}-{s}",
                               length_km=rng.uniform(50, 2000))
                for s in range(rng.randint(1, 4))
            ],
        )
        link_seq += 1
        topo.add_link(link)

    for i, name in enumerate(names):
        add(name, names[(i + 1) % len(names)])

    # Random chords until the minimum degree holds.  Parallel links are
    # allowed: a real fiber path is often duplicated between two edges.
    while True:
        deficient = [
            n for n in names if len(topo.links_of_edge(n)) < links_per_edge
        ]
        if not deficient:
            break
        a = deficient[0]
        b = rng.choice([n for n in names if n != a])
        add(a, b)

    topo.validate()
    return topo
