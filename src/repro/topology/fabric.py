"""Data center fabric network (section 3.1, Figure 1 Region B).

A *pod* is the basic unit of deployment.  Each RSW connects to four
fabric switches (FSWs) — the published 1:4 RSW:FSW uplink ratio.
Spine switches (SSWs) aggregate a software-defined number of FSWs, and
each SSW connects to a set of edge switches (ESWs); Cores connect ESWs
between data centers.

The fabric's published properties are modeled:

* simple custom switches — fabric device types report
  ``vendor_sourced == False``, which the remediation engine uses to
  grant them full automated-repair coverage;
* fungible resources — SSW/ESW attachment is a parameter, not a fixed
  hierarchy, and :meth:`FabricNetwork.rebalance_spine` re-assigns it;
* stacked devices — :meth:`FabricNetwork.stack` records same-type
  devices ganged into a higher-bandwidth virtual device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.topology.devices import Device, DeviceType
from repro.topology.naming import make_device_name

#: Each RSW connects to four FSWs (section 3.1).
FSWS_PER_RSW = 4


@dataclass
class FabricNetwork:
    """A data center built from the fabric design."""

    datacenter: str
    region: str
    devices: Dict[str, Device] = field(default_factory=dict)
    links: List[Tuple[str, str]] = field(default_factory=list)
    pods: List[str] = field(default_factory=list)
    stacks: Dict[str, List[str]] = field(default_factory=dict)

    def add_device(self, device: Device) -> None:
        if device.name in self.devices:
            raise ValueError(f"duplicate device name {device.name!r}")
        self.devices[device.name] = device

    def add_link(self, a: str, b: str) -> None:
        if a not in self.devices or b not in self.devices:
            raise KeyError(f"link endpoints must exist: {a!r} -- {b!r}")
        self.links.append((a, b))

    def devices_of_type(self, device_type: DeviceType) -> Iterator[Device]:
        return (d for d in self.devices.values() if d.device_type is device_type)

    def count(self, device_type: DeviceType) -> int:
        return sum(1 for _ in self.devices_of_type(device_type))

    def stack(self, virtual_name: str, member_names: List[str]) -> None:
        """Gang same-type devices into a higher-bandwidth virtual device.

        Section 3.1 item (4): stacking lets fabric port density scale
        faster than proprietary devices.
        """
        if not member_names:
            raise ValueError("a stack needs at least one member")
        types = {self.devices[n].device_type for n in member_names}
        if len(types) != 1:
            raise ValueError("all stack members must share one device type")
        self.stacks[virtual_name] = list(member_names)

    def rebalance_spine(self, fsws_per_ssw: int) -> None:
        """Re-assign the FSW->SSW attachment, exercising fungibility.

        Control software manages SSWs like a fungible pool; this
        recomputes the SSW uplinks for every FSW with a new fan-in.
        """
        if fsws_per_ssw < 1:
            raise ValueError("fsws_per_ssw must be positive")
        ssws = sorted(d.name for d in self.devices_of_type(DeviceType.SSW))
        fsws = sorted(d.name for d in self.devices_of_type(DeviceType.FSW))
        if not ssws:
            raise ValueError("cannot rebalance a fabric with no SSWs")
        self.links = [
            (a, b)
            for (a, b) in self.links
            if not _is_fsw_ssw_link(self.devices, a, b)
        ]
        for i, fsw in enumerate(fsws):
            ssw = ssws[(i // fsws_per_ssw) % len(ssws)]
            self.add_link(fsw, ssw)


def _is_fsw_ssw_link(devices: Dict[str, Device], a: str, b: str) -> bool:
    ta, tb = devices[a].device_type, devices[b].device_type
    return {ta, tb} == {DeviceType.FSW, DeviceType.SSW}


def build_fabric_network(
    datacenter: str,
    region: str,
    pods: int = 8,
    racks_per_pod: int = 48,
    ssws: int = 16,
    esws: int = 8,
    cores: int = 8,
    deployed_year: int = 2015,
) -> FabricNetwork:
    """Construct a fabric-design data center.

    Each pod gets four FSWs (so every RSW reaches its four pod FSWs),
    SSWs aggregate FSWs across pods, and each SSW connects to every
    ESW; Cores aggregate ESWs.
    """
    if pods < 1 or racks_per_pod < 1 or ssws < 1 or esws < 1 or cores < 1:
        raise ValueError("all fabric network dimensions must be positive")

    net = FabricNetwork(datacenter=datacenter, region=region)

    core_names = []
    for i in range(cores):
        name = make_device_name(DeviceType.CORE, i, "plane", datacenter, region)
        net.add_device(
            Device(name, DeviceType.CORE, datacenter, region, deployed_year)
        )
        core_names.append(name)

    esw_names = []
    for i in range(esws):
        name = make_device_name(DeviceType.ESW, i, "edgeagg", datacenter, region)
        net.add_device(
            Device(name, DeviceType.ESW, datacenter, region, deployed_year)
        )
        esw_names.append(name)
        for core in core_names:
            net.add_link(name, core)

    ssw_names = []
    for i in range(ssws):
        name = make_device_name(DeviceType.SSW, i, "spine", datacenter, region)
        net.add_device(
            Device(name, DeviceType.SSW, datacenter, region, deployed_year)
        )
        ssw_names.append(name)
        for esw in esw_names:
            net.add_link(name, esw)

    fsw_index = 0
    rsw_index = 0
    for p in range(pods):
        pod_unit = f"pod{p}"
        net.pods.append(pod_unit)
        fsw_names = []
        for _ in range(FSWS_PER_RSW):
            name = make_device_name(
                DeviceType.FSW, fsw_index, pod_unit, datacenter, region
            )
            fsw_index += 1
            net.add_device(
                Device(name, DeviceType.FSW, datacenter, region, deployed_year)
            )
            fsw_names.append(name)
            # Each FSW uplinks to a software-defined set of SSWs; the
            # default attaches each FSW to every fourth spine.
            for s, ssw in enumerate(ssw_names):
                if s % FSWS_PER_RSW == len(fsw_names) - 1:
                    net.add_link(name, ssw)
        for _ in range(racks_per_pod):
            name = make_device_name(
                DeviceType.RSW, rsw_index, pod_unit, datacenter, region
            )
            rsw_index += 1
            net.add_device(
                Device(name, DeviceType.RSW, datacenter, region, deployed_year)
            )
            # The published 1:4 RSW-to-FSW connectivity.
            for fsw in fsw_names:
                net.add_link(name, fsw)

    return net
