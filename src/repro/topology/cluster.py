"""Classic cluster-based Clos network (section 3.1, Figure 1 Region A).

A *cluster* is the basic unit of deployment.  Each cluster comprises
four cluster switches (CSWs), each aggregating physically contiguous
rack switches (RSWs) over 10 Gb/s links.  A cluster switch aggregator
(CSA) aggregates CSWs and keeps inter-cluster traffic within the data
center; core devices aggregate CSAs and carry inter data center
traffic.

The design's two published limitations are reflected in the model:
hard-wired proprietary switches require manual in-place repair (the
``vendor_sourced`` flag on the device types drives the remediation
engine's escalation behaviour) and the hierarchy is strict (each RSW
uplinks to exactly the four CSWs of its cluster).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.topology.devices import Device, DeviceType
from repro.topology.naming import make_device_name

#: Each cluster comprises four cluster switches (section 3.1).
CSWS_PER_CLUSTER = 4


@dataclass
class ClusterNetwork:
    """A data center built from the classic cluster design."""

    datacenter: str
    region: str
    devices: Dict[str, Device] = field(default_factory=dict)
    links: List[Tuple[str, str]] = field(default_factory=list)
    clusters: List[str] = field(default_factory=list)

    def add_device(self, device: Device) -> None:
        if device.name in self.devices:
            raise ValueError(f"duplicate device name {device.name!r}")
        self.devices[device.name] = device

    def add_link(self, a: str, b: str) -> None:
        if a not in self.devices or b not in self.devices:
            raise KeyError(f"link endpoints must exist: {a!r} -- {b!r}")
        self.links.append((a, b))

    def devices_of_type(self, device_type: DeviceType) -> Iterator[Device]:
        return (d for d in self.devices.values() if d.device_type is device_type)

    def count(self, device_type: DeviceType) -> int:
        return sum(1 for _ in self.devices_of_type(device_type))


def build_cluster_network(
    datacenter: str,
    region: str,
    clusters: int = 4,
    racks_per_cluster: int = 64,
    csas: int = 2,
    cores: int = 8,
    deployed_year: int = 2011,
) -> ClusterNetwork:
    """Construct a cluster-design data center.

    Defaults give the published shape: four CSWs per cluster, CSAs
    aggregating all CSWs, and eight Cores (section 5.2 notes eight
    Cores are provisioned per data center so one can be lost to
    maintenance without impact).
    """
    if clusters < 1 or racks_per_cluster < 1 or csas < 1 or cores < 1:
        raise ValueError("all cluster network dimensions must be positive")

    net = ClusterNetwork(datacenter=datacenter, region=region)

    core_names = []
    for i in range(cores):
        name = make_device_name(DeviceType.CORE, i, "plane", datacenter, region)
        net.add_device(
            Device(name, DeviceType.CORE, datacenter, region, deployed_year)
        )
        core_names.append(name)

    csa_names = []
    for i in range(csas):
        name = make_device_name(DeviceType.CSA, i, "agg", datacenter, region)
        net.add_device(
            Device(name, DeviceType.CSA, datacenter, region, deployed_year)
        )
        csa_names.append(name)
        for core in core_names:
            net.add_link(name, core)

    for c in range(clusters):
        cluster_unit = f"cluster{c}"
        net.clusters.append(cluster_unit)
        csw_names = []
        for i in range(CSWS_PER_CLUSTER):
            name = make_device_name(
                DeviceType.CSW, c * CSWS_PER_CLUSTER + i, cluster_unit,
                datacenter, region,
            )
            net.add_device(
                Device(name, DeviceType.CSW, datacenter, region, deployed_year)
            )
            csw_names.append(name)
            for csa in csa_names:
                net.add_link(name, csa)
        for r in range(racks_per_cluster):
            name = make_device_name(
                DeviceType.RSW, c * racks_per_cluster + r, cluster_unit,
                datacenter, region,
            )
            net.add_device(
                Device(name, DeviceType.RSW, datacenter, region, deployed_year)
            )
            # Physically contiguous RSWs uplink to every CSW in their
            # cluster (section 3.1).
            for csw in csw_names:
                net.add_link(name, csw)

    return net
