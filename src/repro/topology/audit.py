"""Topology audits.

Checks a built network against the structural invariants the paper's
designs promise (section 3.1).  Production fleets drift — links get
recabled, devices drained and forgotten — and the misconfiguration
and accident root causes of Table 2 often begin as exactly these
violations, so an auditor that can state "this data center no longer
matches its design" is part of the operational substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import networkx as nx

from repro.topology.cluster import CSWS_PER_CLUSTER, ClusterNetwork
from repro.topology.devices import DeviceType
from repro.topology.fabric import FSWS_PER_RSW, FabricNetwork
from repro.topology.graph import build_graph
from repro.topology.naming import parse_device_name


@dataclass
class AuditReport:
    """Findings from one audit run; empty findings = compliant."""

    network: str
    findings: List[str] = field(default_factory=list)

    @property
    def compliant(self) -> bool:
        return not self.findings

    def add(self, finding: str) -> None:
        self.findings.append(finding)


def _common_checks(network, report: AuditReport) -> nx.Graph:
    graph = build_graph(network)
    for name in network.devices:
        parsed = parse_device_name(name)
        if parsed.datacenter != network.datacenter:
            report.add(f"{name}: named for data center "
                       f"{parsed.datacenter!r}, lives in "
                       f"{network.datacenter!r}")
    if graph.number_of_nodes() and not nx.is_connected(graph):
        report.add("the network graph is not connected")
    for name, degree in graph.degree:
        if degree == 0:
            report.add(f"{name}: no links at all")
    return graph


def audit_cluster_network(network: ClusterNetwork) -> AuditReport:
    """Verify the classic cluster design's invariants."""
    report = AuditReport(network=network.datacenter)
    graph = _common_checks(network, report)

    for rsw in network.devices_of_type(DeviceType.RSW):
        csw_peers = [
            p for p in graph.neighbors(rsw.name)
            if network.devices[p].device_type is DeviceType.CSW
        ]
        if len(csw_peers) != CSWS_PER_CLUSTER:
            report.add(
                f"{rsw.name}: uplinks to {len(csw_peers)} CSWs, the "
                f"design requires {CSWS_PER_CLUSTER}"
            )
        clusters = {p.split(".")[2] for p in csw_peers}
        own = rsw.name.split(".")[2]
        if clusters and clusters != {own}:
            report.add(f"{rsw.name}: uplinks cross cluster boundaries")

    csas = list(network.devices_of_type(DeviceType.CSA))
    if not csas:
        report.add("no CSAs: inter-cluster traffic cannot stay in the DC")
    for csw in network.devices_of_type(DeviceType.CSW):
        csa_peers = [
            p for p in graph.neighbors(csw.name)
            if network.devices[p].device_type is DeviceType.CSA
        ]
        if len(csa_peers) < len(csas):
            report.add(f"{csw.name}: reaches only {len(csa_peers)} of "
                       f"{len(csas)} CSAs")
    return report


def audit_fabric_network(network: FabricNetwork) -> AuditReport:
    """Verify the fabric design's invariants (the 1:4 ratio above all)."""
    report = AuditReport(network=network.datacenter)
    graph = _common_checks(network, report)

    for rsw in network.devices_of_type(DeviceType.RSW):
        fsw_peers = [
            p for p in graph.neighbors(rsw.name)
            if network.devices[p].device_type is DeviceType.FSW
        ]
        if len(fsw_peers) != FSWS_PER_RSW:
            report.add(
                f"{rsw.name}: connects to {len(fsw_peers)} FSWs, the "
                f"design requires {FSWS_PER_RSW}"
            )
    for fsw in network.devices_of_type(DeviceType.FSW):
        ssw_peers = [
            p for p in graph.neighbors(fsw.name)
            if network.devices[p].device_type is DeviceType.SSW
        ]
        if not ssw_peers:
            report.add(f"{fsw.name}: no spine uplink")
    for ssw in network.devices_of_type(DeviceType.SSW):
        esw_peers = [
            p for p in graph.neighbors(ssw.name)
            if network.devices[p].device_type is DeviceType.ESW
        ]
        if not esw_peers:
            report.add(f"{ssw.name}: no edge-switch uplink")
    for bad_type in (DeviceType.CSA, DeviceType.CSW):
        if network.count(bad_type):
            report.add(f"fabric data center contains {bad_type.value} "
                       "devices")
    return report
