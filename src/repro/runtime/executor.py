"""Interchangeable execution backends over the analysis protocol.

One executor, three strategies for answering the same set of
:class:`~repro.runtime.analysis.Analysis` questions:

``batch``
    per-analysis shortcut over the corpus' batch substrate (each
    analysis' :meth:`~repro.runtime.analysis.Analysis.batch` — the
    original :mod:`repro.core` implementations: SQL over the
    :class:`~repro.incidents.store.SEVStore` for the SEV domain, the
    :class:`~repro.backbone.monitor.BackboneMonitor` queries for the
    ticket domain); analyses without a usable shortcut share one fold
    pass.
``stream``
    one fused pass over the record stream: every analysis' state is
    folded record by record, so a full report costs exactly one corpus
    scan instead of one scan per artifact.
``sharded``
    the corpus is partitioned across ``jobs`` shards — each
    :class:`~repro.runtime.domain.Corpus` picks its own partitioning
    (round-robin for SEV records, per-link cost-weighted cells for
    tickets); each shard folds its own states, and the shard states
    merge — the merge-law execution that :mod:`repro.stream` uses for
    parallel generation.  With ``use_processes=True`` each shard folds
    in its own worker process and only the (small) mergeable states
    travel back; because the merge law is associative and commutative,
    the parallel result is bit-identical to the serial one.
``columnar``
    the corpus is scanned as :class:`~repro.runtime.columns.ColumnBatch`
    chunks and every opted-in analysis absorbs whole batches with
    array-at-a-time operations (``Analysis.fold_batch``); analyses
    that did not opt in — and any batch whose columnar fold raises
    (the ``runtime.fold`` fault site) — fall back to the per-row
    reference ``fold`` over the batch's materialized records, so the
    results are bit-identical by construction.  With
    ``use_processes=True`` the batches are packed into ``jobs`` worker
    shards and shipped as chunk-framed columns (no pickled dataclass
    streams).

Worker processes come from one module-level pool shared across
executor runs (:func:`shutdown_executor_pool` closes it
deterministically; it also closes at interpreter exit) — repeat
reports and ``repro.serve`` jobs pay process spawn cost once, not per
run.

Analyses of different domains can ride in one run: the executor groups
them by :attr:`~repro.runtime.analysis.Analysis.domain` and resolves
each group's :class:`~repro.runtime.domain.Corpus` from the context.

All three backends agree exactly on every count-derived artifact; fold
backends answer percentiles from quantile sketches, exact below the
sketch budget and bounded by the bin width beyond it.

Give the executor a :class:`~repro.runtime.cache.ResultCache` and
finalized results are keyed by the corpus fingerprint of the analysis'
domain: re-running the same questions over an unchanged corpus
performs no pass at all.
"""

from __future__ import annotations

import atexit
from dataclasses import replace
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.core.reports import BackboneStudyReport, IntraStudyReport
from repro.faultline import hooks
from repro.faultline.plan import ColumnFoldCrash, ShardWorkerCrash
from repro.runtime.analysis import Analysis, RunContext
from repro.runtime.analyses import (
    backbone_report_analyses,
    intra_report_analyses,
)
from repro.runtime.cache import ResultCache

__all__ = [
    "BACKENDS",
    "Executor",
    "run_backbone_report",
    "run_intra_report",
    "shutdown_executor_pool",
]

BACKENDS = ("batch", "stream", "sharded", "columnar")


# -- the shared worker pool --------------------------------------------
#
# One ProcessPoolExecutor reused across Executor runs: spawning a pool
# per run costs more than small parallel folds win, so repeat reports
# (and every repro.serve job) would pay process startup over and over.
# The pool grows to the widest request and is torn down only on a
# broken pool, an explicit shutdown, or interpreter exit.

_POOL = None
_POOL_WIDTH = 0


def _shared_pool(workers: int):
    """The process pool, (re)built only when too narrow or closed."""
    global _POOL, _POOL_WIDTH
    if _POOL is not None and _POOL_WIDTH < workers:
        shutdown_executor_pool()
    if _POOL is None:
        from concurrent.futures import ProcessPoolExecutor

        _POOL = ProcessPoolExecutor(max_workers=workers)
        _POOL_WIDTH = workers
    return _POOL


def shutdown_executor_pool() -> None:
    """Close the shared worker pool; idempotent.

    The next parallel run builds a fresh pool.  Registered atexit, so
    short-lived processes need not call it themselves.
    """
    global _POOL, _POOL_WIDTH
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None
        _POOL_WIDTH = 0


atexit.register(shutdown_executor_pool)


class Executor:
    """Runs a set of analyses over their corpora with one strategy."""

    def __init__(
        self,
        backend: str = "batch",
        jobs: int = 4,
        cache: Optional[ResultCache] = None,
        use_processes: bool = False,
        batch_size: Optional[int] = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.backend = backend
        self.jobs = jobs
        self.cache = cache
        self.use_processes = use_processes
        #: Rows per column batch on the columnar paths (None = the
        #: :data:`~repro.runtime.columns.COLUMN_BATCH_ROWS` default).
        self.batch_size = batch_size
        #: How many columnar batch folds fell back to the per-row path
        #: (a raised ``fold_batch``, e.g. the ``runtime.fold`` fault
        #: site), cumulative over this executor's serial-path runs.
        self.columnar_fallbacks = 0

    # -- public entry point ------------------------------------------

    def run(
        self,
        analyses: Sequence[Analysis],
        context: RunContext,
        source: Optional[Iterable] = None,
    ) -> Dict[str, Any]:
        """Answer every analysis; returns ``{analysis.name: result}``.

        ``source`` overrides the record stream (an iterable of the
        analyses' record kind — valid only when every corpus analysis
        in the run shares one domain); by default fold backends replay
        the domain corpus resolved from the context.  Results are
        cached per corpus fingerprint when a cache is configured and
        the records come from a fingerprintable corpus (an anonymous
        iterator has no fingerprint).
        """
        analyses = list(analyses)
        names = [a.name for a in analyses]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate analysis names in {names}")

        results: Dict[str, Any] = {}
        pending: List[Analysis] = []
        keys: Dict[str, str] = {}
        if self.cache is not None and source is None:
            fingerprints: Dict[str, Optional[str]] = {}
            for analysis in analyses:
                # Context-only analyses key on the SEV corpus, the
                # report they ride along with.
                domain = analysis.domain if analysis.requires_corpus else "sev"
                if domain not in fingerprints:
                    corpus = context.corpus_for(domain)
                    fingerprints[domain] = (
                        corpus.fingerprint() if corpus is not None else None
                    )
                fingerprint = fingerprints[domain]
                if fingerprint is None:
                    pending.append(analysis)
                    continue
                key = self._key(fingerprint, analysis, context)
                hit, value = self.cache.lookup(key)
                if hit:
                    results[analysis.name] = value
                else:
                    keys[analysis.name] = key
                    pending.append(analysis)
        else:
            pending = analyses

        if pending:
            computed = self._execute(pending, context, source)
            for analysis in pending:
                value = computed[analysis.name]
                results[analysis.name] = value
                key = keys.get(analysis.name)
                if key is not None:
                    self.cache.store(key, value)
        return results

    def _key(self, fingerprint: str, analysis: Analysis,
             context: RunContext) -> str:
        return ResultCache.key(
            fingerprint, analysis.name, self.backend,
            context.year, context.baseline_year, context.window_h,
        )

    # -- strategies --------------------------------------------------

    def _execute(self, analyses: Sequence[Analysis], context: RunContext,
                 source: Optional[Iterable]) -> Dict[str, Any]:
        corpus_analyses = [a for a in analyses if a.requires_corpus]
        contextual = [a for a in analyses if not a.requires_corpus]
        results = {a.name: a.finalize(None, context) for a in contextual}

        by_domain: Dict[str, List[Analysis]] = {}
        for analysis in corpus_analyses:
            by_domain.setdefault(analysis.domain, []).append(analysis)
        if source is not None and len(by_domain) > 1:
            raise ValueError(
                "an explicit source iterable can feed only one domain; "
                f"this run folds {sorted(by_domain)}"
            )

        for domain, group in by_domain.items():
            corpus = context.corpus_for(domain)
            if self.backend == "batch":
                folded = []
                for analysis in group:
                    if analysis.can_batch(context):
                        results[analysis.name] = analysis.batch(context)
                    else:
                        folded.append(analysis)
                if folded:
                    states = self._fold_partitions_pushdown(
                        folded, context, corpus, source
                    )
                    if states is None:
                        states = self._fold_pass(
                            folded, context,
                            self._records(domain, corpus, source),
                        )
                    results.update(self._finalize(folded, states, context))
            elif self.backend == "stream":
                states = self._fold_pass(
                    group, context, self._records(domain, corpus, source)
                )
                results.update(self._finalize(group, states, context))
            elif self.backend == "columnar":
                states = self._fold_columnar(group, context, corpus,
                                             source, domain)
                results.update(self._finalize(group, states, context))
            else:  # sharded
                states = self._fold_sharded(
                    group, context, corpus,
                    self._records(domain, corpus, source),
                )
                results.update(self._finalize(group, states, context))
        return results

    @staticmethod
    def _records(domain: str, corpus, source: Optional[Iterable]) -> Iterable:
        if source is not None:
            return source
        if corpus is None:
            raise ValueError(
                f"no record source for domain {domain!r}: provide its "
                "substrate in the context or an explicit source iterable"
            )
        return corpus.records()

    # -- fold machinery ----------------------------------------------

    @staticmethod
    def _prepare(analyses: Sequence[Analysis], context: RunContext):
        """(states, owners): one state per distinct state_key.

        The owner — the first analysis declaring a key — does the
        folding and merging for every sharer of that key.
        """
        states: Dict[str, Any] = {}
        owners: Dict[str, Analysis] = {}
        for analysis in analyses:
            key = analysis.state_key or analysis.name
            if key not in states:
                states[key] = analysis.prepare(context)
                owners[key] = analysis
        return states, owners

    def _fold_pass(self, analyses: Sequence[Analysis], context: RunContext,
                   records: Iterable) -> Dict[str, Any]:
        states, owners = self._prepare(analyses, context)
        folders = list(owners.items())
        for report in records:
            for key, owner in folders:
                owner.fold(report, states[key])
        return states

    def _fold_columnar(self, analyses: Sequence[Analysis],
                       context: RunContext, corpus,
                       source: Optional[Iterable],
                       domain: str) -> Dict[str, Any]:
        """The columnar backend: fold whole batches, fall back per row.

        Serial by default; with ``use_processes`` (and every owner
        opted in) the batches pack into ``jobs`` worker shards and
        travel as columns.  Either way the states are bit-identical to
        the per-row stream fold.
        """
        states, owners = self._prepare(analyses, context)
        if source is not None:
            from repro.runtime.columns import (
                COLUMN_BATCH_ROWS,
                batches_from_records,
            )

            batches: Iterable = batches_from_records(
                domain, source, self.batch_size or COLUMN_BATCH_ROWS
            )
        elif corpus is not None:
            if (self.use_processes and self.jobs > 1
                    and all(o.has_fold_batch() for o in owners.values())):
                shards = corpus.column_shards(self.jobs, self.batch_size)
                if len(shards) > 1:
                    return self._fold_columns_parallel(
                        analyses, context, owners, states, shards
                    )
            batches = corpus.column_batches(self.batch_size)
        else:
            raise ValueError(
                f"no record source for domain {domain!r}: provide its "
                "substrate in the context or an explicit source iterable"
            )
        for batch in batches:
            self.columnar_fallbacks += _fold_batch_into(
                owners, states, context, batch
            )
        return states

    def _fold_columns_parallel(self, analyses: Sequence[Analysis],
                               context: RunContext,
                               owners: Dict[str, Analysis],
                               merged: Dict[str, Any],
                               shards: List[list]) -> Dict[str, Any]:
        """Fold column-batch shards in worker processes and merge.

        Workers receive chunk-framed columns (a batch pickles its
        column lists only — no dataclass streams) and return folded
        states plus their per-row fallback count.  Crash recovery
        mirrors the sharded backend: resubmit once, then fold that
        shard serially in the parent.
        """
        analyses = list(analyses)
        worker_context = self._worker_context(context)

        def serial(index: int) -> tuple:
            shard_states, _ = self._prepare(analyses, context)
            fallbacks = 0
            for batch in shards[index]:
                fallbacks += _fold_batch_into(
                    owners, shard_states, context, batch
                )
            return shard_states, fallbacks

        outcomes = self._parallel_map(
            _fold_column_shard_worker,
            [(analyses, worker_context, shard) for shard in shards],
            serial,
        )
        for shard_states, fallbacks in outcomes:
            self.columnar_fallbacks += fallbacks
            for key, owner in owners.items():
                merged[key] = owner.merge(merged[key], shard_states[key])
        return merged

    def _fold_partitions_pushdown(
        self, analyses: Sequence[Analysis], context: RunContext,
        corpus, source: Optional[Iterable],
    ) -> Optional[Dict[str, Any]]:
        """Per-partition SQL pushdown for SQLite-sharded corpora.

        A partitioned SEV store has no single connection for the
        analyses' ``batch`` shortcuts, but each hot shard *is* a
        monolithic-schema SQLite file — so every analysis whose state
        can be built by GROUP BY queries (``fold_sql``) runs them
        against each shard in turn, the rest fold the shard's columnar
        scan, and cold partitions fold as column batches.  Returns the
        folded states, or ``None`` when the corpus has no SQL shards
        (the caller falls back to a plain fold pass).
        """
        if source is not None or corpus is None:
            return None
        shards = corpus.sql_shards()
        if shards is None:
            return None
        from repro.runtime.columns import (
            COLUMN_BATCH_ROWS,
            batches_from_records,
            sev_batches_from_store,
        )

        size = self.batch_size or COLUMN_BATCH_ROWS
        states, owners = self._prepare(analyses, context)
        sql_owners = {k: o for k, o in owners.items() if o.has_sql_fold()}
        scan_owners = {k: o for k, o in owners.items()
                       if not o.has_sql_fold()}
        for kind, payload in shards:
            if kind == "store":
                try:
                    for key, owner in sql_owners.items():
                        owner.fold_sql(payload, states[key])
                    if scan_owners:
                        for batch in sev_batches_from_store(payload, size):
                            self.columnar_fallbacks += _fold_batch_into(
                                scan_owners, states, context, batch
                            )
                finally:
                    payload.close()
            else:
                for batch in batches_from_records(
                    corpus.domain, payload, size
                ):
                    self.columnar_fallbacks += _fold_batch_into(
                        owners, states, context, batch
                    )
        return states

    def _fold_sharded(self, analyses: Sequence[Analysis],
                      context: RunContext, corpus,
                      records: Iterable) -> Dict[str, Any]:
        if corpus is not None:
            shards = corpus.shards(records, self.jobs)
        else:
            from repro.stream.sharding import shard_cells

            shards = shard_cells(list(records), self.jobs)
        merged, owners = self._prepare(analyses, context)
        if self.use_processes and len(shards) > 1:
            shard_states_list = self._fold_shards_parallel(
                analyses, context, shards
            )
        else:
            shard_states_list = (
                self._fold_shard_resilient(analyses, context, shard)
                for shard in shards
            )
        for shard_states in shard_states_list:
            for key, owner in owners.items():
                merged[key] = owner.merge(merged[key], shard_states[key])
        return merged

    def _fold_shard_resilient(self, analyses: Sequence[Analysis],
                              context: RunContext,
                              shard: list) -> Dict[str, Any]:
        """Fold one shard, surviving a crashed worker.

        The recovery contract of the sharded backend: a crashed shard
        fold is retried once, and a second crash drops that shard to a
        plain serial fold with the ``executor.shard`` fault site
        suppressed.  Because any partitioning merges to the same
        states and every attempt starts from freshly prepared states,
        the recovered result is bit-identical to a healthy run.
        """
        for _ in range(2):
            try:
                if hooks.fire("executor.shard"):
                    raise ShardWorkerCrash("injected shard-worker crash")
                return self._fold_pass(analyses, context, shard)
            except ShardWorkerCrash:
                continue
        with hooks.suppressed("executor.shard"):
            return self._fold_pass(analyses, context, shard)

    @staticmethod
    def _worker_context(context: RunContext) -> RunContext:
        """A picklable copy of the context for worker processes.

        The live substrates — SQLite store, remediation engine,
        backbone monitor, ticket database — are stripped; folding only
        reads records and the fleet.
        """
        return replace(
            context, store=None, engine=None, monitor=None, topology=None,
            tickets=None, trials=None,
        )

    def _fold_shards_parallel(self, analyses: Sequence[Analysis],
                              context: RunContext,
                              shards: List[list]) -> List[Dict[str, Any]]:
        """Fold each record shard in its own worker process.

        Workers receive the analyses, a picklable context, and their
        shard of records; they return the folded states, which are
        small compared to the records they summarize.
        """
        analyses = list(analyses)
        worker_context = self._worker_context(context)

        def serial(index: int) -> Dict[str, Any]:
            return self._fold_pass(analyses, context, shards[index])

        return self._parallel_map(
            _fold_shard_worker,
            [(analyses, worker_context, shard) for shard in shards],
            serial,
        )

    def _parallel_map(self, worker, payloads: List,
                      serial) -> List[Any]:
        """Run ``worker`` over ``payloads`` in the shared pool.

        The crash-recovery contract of every parallel fold path: a
        payload whose worker dies (a real ``BrokenProcessPool``, which
        also tears the poisoned pool down so the retry gets a fresh
        one, or an injected ``executor.shard`` fault drawn in the
        parent so the fault log stays deterministic) is resubmitted
        once, and a second failure runs ``serial(index)`` in the
        parent with the fault site suppressed.
        """
        from concurrent.futures.process import BrokenProcessPool

        results: List[Any] = [None] * len(payloads)

        def submit(index: int):
            if hooks.fire("executor.shard"):
                raise ShardWorkerCrash("injected shard-worker crash")
            return _shared_pool(len(payloads)).submit(
                worker, payloads[index]
            )

        crashed: List[int] = []
        pending = {}
        for index in range(len(payloads)):
            try:
                pending[index] = submit(index)
            except Exception:
                crashed.append(index)
        for index, future in pending.items():
            try:
                results[index] = future.result()
            except BrokenProcessPool:
                shutdown_executor_pool()
                crashed.append(index)
            except Exception:
                crashed.append(index)
        for index in crashed:
            try:
                results[index] = submit(index).result()
            except Exception:
                with hooks.suppressed("executor.shard"):
                    results[index] = serial(index)
        return results

    @staticmethod
    def _finalize(analyses: Sequence[Analysis], states: Dict[str, Any],
                  context: RunContext) -> Dict[str, Any]:
        return {
            a.name: a.finalize(states[a.state_key or a.name], context)
            for a in analyses
        }


def _fold_shard_worker(payload) -> Dict[str, Any]:
    """Top-level worker body for the parallel sharded backend."""
    analyses, context, shard = payload
    states, owners = Executor._prepare(analyses, context)
    folders = list(owners.items())
    for report in shard:
        for key, owner in folders:
            owner.fold(report, states[key])
    return states


def _fold_batch_into(owners: Dict[str, Analysis], states: Dict[str, Any],
                     context: RunContext, batch) -> int:
    """Fold one column batch into every owner's state.

    Opted-in owners fold the batch array-at-a-time into a fresh
    scratch state, merged in afterwards — so a fold that raises
    mid-batch (the ``runtime.fold`` fault site, or a genuine bug in a
    ``fold_batch``) discards the partial scratch and replays the batch
    through the per-row reference ``fold``, leaving the merged states
    exactly as if the fast path had never been tried.  Owners without
    a columnar fold take the per-row path directly.  Returns how many
    folds fell back.
    """
    fallbacks = 0
    for key, owner in owners.items():
        if owner.has_fold_batch():
            scratch = owner.prepare(context)
            try:
                if hooks.fire("runtime.fold"):
                    raise ColumnFoldCrash(
                        "injected columnar fold crash"
                    )
                owner.fold_batch(batch, scratch)
            except Exception:
                fallbacks += 1
                with hooks.suppressed("runtime.fold"):
                    scratch = owner.prepare(context)
                    for record in batch.records:
                        owner.fold(record, scratch)
            states[key] = owner.merge(states[key], scratch)
        else:
            state = states[key]
            for record in batch.records:
                owner.fold(record, state)
    return fallbacks


def _fold_column_shard_worker(payload) -> tuple:
    """Top-level worker body for the parallel columnar backend."""
    analyses, context, batches = payload
    states, owners = Executor._prepare(analyses, context)
    fallbacks = 0
    for batch in batches:
        fallbacks += _fold_batch_into(owners, states, context, batch)
    return states, fallbacks


# -- report conveniences -----------------------------------------------


def run_intra_report(
    context: RunContext,
    backend: str = "stream",
    jobs: int = 4,
    cache: Optional[ResultCache] = None,
    source: Optional[Iterable] = None,
    use_processes: bool = False,
) -> IntraStudyReport:
    """Every intra data center artifact from one corpus, one executor run.

    With the default ``stream`` backend the whole report costs exactly
    one corpus pass; with a cache, an unchanged corpus costs none.
    ``use_processes=True`` makes the ``sharded`` backend fold its
    shards in parallel worker processes (bit-identical results).
    """
    executor = Executor(backend=backend, jobs=jobs, cache=cache,
                        use_processes=use_processes)
    results = executor.run(intra_report_analyses(), context, source=source)
    severity = results["severity_by_device"]
    return IntraStudyReport(
        root_causes=results["root_causes"],
        rates=results["incident_rates"],
        severity=severity,
        severity_over_time=results["severity_over_time"],
        distribution=results["distribution"],
        designs=results["design_comparison"],
        switches=results["switch_reliability"],
        growth=results["growth"],
        last_year=severity.year,
    )


def run_backbone_report(
    context: RunContext,
    cache: Optional[ResultCache] = None,
    backend: str = "batch",
    jobs: int = 4,
    source: Optional[Iterable] = None,
    use_processes: bool = False,
) -> BackboneStudyReport:
    """Every backbone artifact from one ticket corpus, one executor run.

    The ticket-domain sibling of :func:`run_intra_report`: the same
    backends, the same merge law, the same cache.  The context needs a
    ticket source (a monitor, a ticket database, or an explicit
    ``source`` iterable of completed tickets) and a topology (its own
    or the monitor's).
    """
    executor = Executor(backend=backend, jobs=jobs, cache=cache,
                        use_processes=use_processes)
    results = executor.run(backbone_report_analyses(), context, source=source)
    return BackboneStudyReport(
        reliability=results["backbone_reliability"],
        continents=results["continent_table"],
        window_h=context.window_h,
        vendors=results["vendor_scorecards"],
        durations=results["repair_durations"],
    )
