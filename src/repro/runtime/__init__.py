"""repro.runtime — one execution layer for batch and streaming analytics.

Every paper artifact is declared once as an
:class:`~repro.runtime.analysis.Analysis` (prepare / fold / merge /
finalize, optionally a substrate-querying ``batch`` fast path) and the
:class:`~repro.runtime.executor.Executor` runs any set of them over
four interchangeable backends — ``batch`` (per-analysis shortcut, with
per-partition SQL pushdown over tiered stores), ``stream`` (one fused
corpus pass), ``sharded`` (fold partitions independently, merge
states), ``columnar`` (array-at-a-time folds over
:class:`~repro.runtime.columns.ColumnBatch` chunks, per-row fallback
for analyses that don't opt in).  The runtime is domain-generic: a
:class:`~repro.runtime.domain.Corpus` abstracts the record source, and
both of the paper's datasets ship as corpora —
:class:`~repro.runtime.domain.SEVCorpus` over the intra data center
SEV store (sections 4-5) and :class:`~repro.runtime.domain.TicketCorpus`
over the backbone repair-ticket database (section 6).  A
content-addressed :class:`~repro.runtime.cache.ResultCache` keyed by
domain-tagged corpus fingerprints makes repeat runs over unchanged
corpora free.
"""

from repro.runtime.analysis import Analysis, RunContext
from repro.runtime.analyses import (
    backbone_report_analyses,
    intra_report_analyses,
    registry,
)
from repro.runtime.cache import (
    ResultCache,
    corpus_fingerprint,
    ticket_fingerprint,
    trial_fingerprint,
)
from repro.runtime.columns import (
    COLUMN_BATCH_ROWS,
    ColumnBatch,
    SEVColumnBatch,
    TicketColumnBatch,
    TrialColumnBatch,
)
from repro.runtime.domain import Corpus, SEVCorpus, TicketCorpus, TrialCorpus
from repro.runtime.executor import (
    BACKENDS,
    Executor,
    run_backbone_report,
    run_intra_report,
    shutdown_executor_pool,
)
from repro.runtime.states import (
    CauseTallies,
    DurationSketches,
    OutageTallies,
    SeverityTallies,
    TicketDurationSketches,
    YearTypeCounts,
)

__all__ = [
    "Analysis",
    "BACKENDS",
    "COLUMN_BATCH_ROWS",
    "CauseTallies",
    "ColumnBatch",
    "Corpus",
    "DurationSketches",
    "Executor",
    "OutageTallies",
    "ResultCache",
    "RunContext",
    "SEVColumnBatch",
    "SEVCorpus",
    "SeverityTallies",
    "TicketColumnBatch",
    "TicketCorpus",
    "TicketDurationSketches",
    "TrialColumnBatch",
    "TrialCorpus",
    "YearTypeCounts",
    "shutdown_executor_pool",
    "backbone_report_analyses",
    "corpus_fingerprint",
    "intra_report_analyses",
    "registry",
    "run_backbone_report",
    "run_intra_report",
    "ticket_fingerprint",
    "trial_fingerprint",
]
