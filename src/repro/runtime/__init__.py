"""repro.runtime — one execution layer for batch and streaming analytics.

Every paper artifact is declared once as an
:class:`~repro.runtime.analysis.Analysis` (prepare / fold / merge /
finalize, optionally a SQL ``batch`` fast path) and the
:class:`~repro.runtime.executor.Executor` runs any set of them over
three interchangeable backends — ``batch`` (per-analysis SQL),
``stream`` (one fused corpus pass), ``sharded`` (fold partitions
independently, merge states).  A content-addressed
:class:`~repro.runtime.cache.ResultCache` keyed by corpus fingerprint
makes repeat runs over unchanged corpora free.
"""

from repro.runtime.analysis import Analysis, RunContext
from repro.runtime.analyses import intra_report_analyses, registry
from repro.runtime.cache import ResultCache, corpus_fingerprint
from repro.runtime.executor import (
    BACKENDS,
    Executor,
    run_backbone_report,
    run_intra_report,
)
from repro.runtime.states import (
    CauseTallies,
    DurationSketches,
    SeverityTallies,
    YearTypeCounts,
)

__all__ = [
    "Analysis",
    "BACKENDS",
    "CauseTallies",
    "DurationSketches",
    "Executor",
    "ResultCache",
    "RunContext",
    "SeverityTallies",
    "YearTypeCounts",
    "corpus_fingerprint",
    "intra_report_analyses",
    "registry",
    "run_backbone_report",
    "run_intra_report",
]
