"""Content-addressed result cache.

A full report is ~10 analyses over one corpus; re-running ``report
full`` or ``verify`` over an *unchanged* corpus should cost zero
corpus passes.  The cache keys every finalized result by a **corpus
fingerprint** — store row count, generator seed, and a hash of the
SQLite schema — plus the analysis name, the execution backend, and the
context's year/baseline parameters, so any change to the corpus, the
question, or the execution strategy misses cleanly.

The cache is content-addressed, not invalidated: nothing is ever
evicted by mutation, a changed corpus simply hashes elsewhere.  By
default entries live in process memory; give the cache a directory and
entries also persist as pickle files named by their key hash, carrying
hits across processes.  (Pickle is safe here: the cache directory is
written and read only by this library's own result dataclasses; do not
point it at untrusted files.)

Disk entries are written atomically (tmp file + ``os.replace``) and
read defensively: a torn or garbled entry — a crash mid-write, a
truncated disk — is treated as a miss, unlinked, and warned about, so
a damaged cache directory can slow a report down but never wrong it.
Both failure modes are injectable at the ``cache.store`` and
``cache.lookup`` sites of :mod:`repro.faultline`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import warnings
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.faultline import hooks

from repro.incidents.store import SEVStore

__all__ = [
    "ResultCache",
    "corpus_fingerprint",
    "ticket_fingerprint",
    "trial_fingerprint",
]

PathLike = Union[str, Path]


def corpus_fingerprint(store: SEVStore, seed: Optional[int] = None,
                       scenario: Optional[str] = None) -> str:
    """Fingerprint a SEV corpus: domain, rows, seed, scenario, schema.

    Cheap by design (no corpus scan): the generators are deterministic
    in their seed *and scenario*, so (seed, scenario digest, row
    count, schema) pins the corpus content for every corpus this
    library produces.  Corpora imported from elsewhere should pass a
    caller-chosen ``seed`` surrogate or skip caching.  The domain tag
    keeps a SEV corpus from ever colliding with a ticket corpus of
    the same size and seed.

    ``scenario`` is the generating scenario's spec digest
    (:meth:`repro.scenarios.ScenarioSpec.digest`).  Without it, two
    *different* scenarios that happen to produce the same row count
    at the same seed — a severity-mix override changes every row but
    not the count — would collide in a shared cache; the digest keeps
    them apart.  ``None`` is an honest "unspecified" that hashes like
    the legacy payload never could collide with a digest-bearing one.

    ``store`` is anything with ``__len__`` and ``schema_hash()`` —
    the monolithic :class:`~repro.incidents.store.SEVStore` or the
    partitioned store of :mod:`repro.storage`.  A partitioned store
    reports the monolith's schema hash, so the same rows under either
    layout hash to the same cache key.
    """
    rows = len(store)
    schema_hash = store.schema_hash()
    payload = (
        f"domain=sev;rows={rows};seed={seed};scenario={scenario}"
        f";schema={schema_hash}"
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def ticket_fingerprint(tickets, seed: Optional[int] = None,
                       scenario: Optional[str] = None) -> str:
    """Fingerprint a ticket corpus: domain, rows, seed, scenario, schema.

    The ticket analog of :func:`corpus_fingerprint`: completed-ticket
    count, scenario seed, the generating scenario's spec digest, and
    a hash of the interchange schema (the exported field list plus
    the ticket-type vocabulary, the ticket database's equivalent of a
    SQL schema).  The ``domain=ticket`` tag guarantees a ticket
    corpus and a SEV corpus of identical size and seed hash to
    different cache keys, and the scenario digest keeps two distinct
    backbone scenarios of identical size and seed apart.
    """
    from repro.backbone.tickets import TicketType
    from repro.io.ticket_io import TICKET_FIELDS

    rows = len(tickets.completed())
    schema = ";".join(TICKET_FIELDS) + "|" + ",".join(
        t.value for t in TicketType
    )
    schema_hash = hashlib.sha256(schema.encode()).hexdigest()
    payload = (
        f"domain=ticket;rows={rows};seed={seed};scenario={scenario}"
        f";schema={schema_hash}"
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def trial_fingerprint(trials, seed: Optional[int] = None,
                      scenario: Optional[str] = None) -> str:
    """Fingerprint a survivability trial corpus.

    The trial analog of :func:`corpus_fingerprint`: row count, seed,
    the generating scenario's spec digest, the record schema (the
    :class:`~repro.survivability.trials.FailureTrial` field list),
    *and the correlation knobs* — a trial corpus is a pure function of
    (seed, knobs), so two corpora of equal size and seed under
    different power-domain/storm/maintenance settings must hash apart
    even without a scenario digest.  The ``domain=trial`` tag keeps
    trial corpora from ever colliding with the SEV or ticket domains.
    """
    from dataclasses import fields

    from repro.survivability.trials import FailureTrial

    rows = len(trials)
    schema = ";".join(f.name for f in fields(FailureTrial))
    knobs = ",".join(
        f"{key}={value!r}"
        for key, value in sorted(getattr(trials, "knobs", {}).items())
    )
    schema_hash = hashlib.sha256(
        f"{schema}|{knobs}".encode()
    ).hexdigest()
    payload = (
        f"domain=trial;rows={rows};seed={seed};scenario={scenario}"
        f";schema={schema_hash}"
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """In-memory (and optionally on-disk) store of finalized results."""

    def __init__(self, path: Optional[PathLike] = None) -> None:
        self._memory: Dict[str, Any] = {}
        self._dir = Path(path) if path is not None else None
        if self._dir is not None:
            self._dir.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.pruned = 0

    def __len__(self) -> int:
        return len(self._memory)

    @staticmethod
    def key(
        fingerprint: str,
        analysis: str,
        backend: str,
        year: Optional[int],
        baseline_year: Optional[int],
        window_h: Optional[float] = None,
    ) -> str:
        """One cache key: corpus identity plus the full question.

        ``window_h`` is the ticket domain's context parameter (the
        observation window the MTBF math scales by), playing the role
        ``year``/``baseline_year`` play for the SEV domain.
        """
        payload = (
            f"{fingerprint}:{analysis}:{backend}:{year}:{baseline_year}"
            f":{window_h}"
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _file(self, key: str) -> Path:
        assert self._dir is not None
        return self._dir / f"{key}.pkl"

    def lookup(self, key: str) -> Tuple[bool, Any]:
        """(hit?, value).  Disk hits are promoted into memory.

        A corrupt or unreadable disk entry is a *miss*, not an error:
        the entry is unlinked (a recompute will rewrite it) and a
        warning names the dropped file.
        """
        if key in self._memory:
            self.hits += 1
            return True, self._memory[key]
        if self._dir is not None:
            file = self._file(key)
            if file.exists():
                if hooks.fire("cache.lookup"):
                    # Tear the real on-disk entry so the recovery path
                    # below is exercised against genuine corruption.
                    data = file.read_bytes()
                    file.write_bytes(data[: len(data) // 2])
                try:
                    value = pickle.loads(file.read_bytes())
                except Exception as exc:
                    warnings.warn(
                        f"result cache: dropping corrupt entry "
                        f"{file.name} ({type(exc).__name__}: {exc})",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    try:
                        file.unlink()
                    except OSError:
                        pass
                else:
                    self._memory[key] = value
                    self.hits += 1
                    # Touch the entry so LRU-by-mtime pruning sees the
                    # hit: recently used entries evict last.
                    try:
                        os.utime(file)
                    except OSError:
                        pass
                    return True, value
        self.misses += 1
        return False, None

    def store(self, key: str, value: Any) -> None:
        """Publish a result; the disk write is atomic.

        The pickle goes to a sibling tmp file first and is renamed
        into place, so a reader concurrent with (or following a crash
        of) a writer sees the old entry or none — never a torn one.
        """
        self._memory[key] = value
        if self._dir is not None:
            file = self._file(key)
            tmp = file.with_name(file.name + ".tmp")
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            if hooks.fire("cache.store"):
                # Simulated mid-write kill: a torn tmp file is left
                # behind and nothing is published.
                tmp.write_bytes(payload[: len(payload) // 2])
                return
            tmp.write_bytes(payload)
            os.replace(tmp, file)

    def _disk_entries(self) -> list:
        """(mtime, name, size, path) per disk entry, oldest first.

        The name is the tiebreaker so pruning order is deterministic
        on filesystems with coarse mtime resolution.
        """
        assert self._dir is not None
        entries = []
        for file in self._dir.glob("*.pkl"):
            try:
                stat = file.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, file.name, stat.st_size, file))
        entries.sort(key=lambda e: (e[0], e[1]))
        return entries

    def disk_bytes(self) -> int:
        """Total size of the persistent entries, in bytes (0 if none)."""
        if self._dir is None:
            return 0
        return sum(size for _, _, size, _ in self._disk_entries())

    def prune(self, max_bytes: int) -> int:
        """Evict least-recently-used disk entries down to a byte budget.

        Content-addressed caches never invalidate, so on disk they only
        grow; ``prune`` is the retention policy.  Entries are dropped
        oldest-mtime-first (lookups touch their file, so a recent hit
        protects an entry) until the directory fits ``max_bytes``.
        Pruned entries also leave process memory — a next lookup is an
        honest miss that recomputes and rewrites.  Returns how many
        entries were evicted.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        if self._dir is None:
            return 0
        entries = self._disk_entries()
        total = sum(size for _, _, size, _ in entries)
        evicted = 0
        for _, name, size, file in entries:
            if total <= max_bytes:
                break
            try:
                file.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
            self._memory.pop(name[: -len(".pkl")], None)
        self.pruned += evicted
        return evicted

    def stats(self) -> Dict[str, Any]:
        """Counter snapshot: hits, misses, entries, hit rate, pruning.

        The JSON-able shape the serving layer's ``/stats`` endpoint
        and the CLI's ``[cache]`` line both report.
        """
        total = self.hits + self.misses
        stats = {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._memory),
            "hit_rate": (self.hits / total) if total else 0.0,
            "persistent": self._dir is not None,
            "pruned": self.pruned,
        }
        if self._dir is not None:
            disk = self._disk_entries()
            stats["disk_entries"] = len(disk)
            stats["disk_bytes"] = sum(size for _, _, size, _ in disk)
        return stats

    def clear(self) -> None:
        self._memory.clear()
        if self._dir is not None:
            for file in self._dir.glob("*.pkl"):
                file.unlink()
            for tmp in self._dir.glob("*.pkl.tmp"):
                tmp.unlink()
