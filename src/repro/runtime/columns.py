"""Columnar record batches: the fold engine's fast path.

Per-row folding pays Python dispatch for every record — attribute
access, name re-parsing, one method call per analysis per record.  A
:class:`ColumnBatch` instead carries a *chunk* of records as parallel
arrays, one list per field, so a mergeable state can absorb a whole
chunk with array-at-a-time operations (``Counter`` tallies over zipped
columns, quantile sketches fed in blocks) — see the ``fold_batch``
methods in :mod:`repro.runtime.states`.

Three properties make the layout safe and cheap:

* **Full fidelity.**  A batch carries every field of its records, so
  :attr:`ColumnBatch.records` can re-materialize the original
  dataclasses on demand — the per-row fallback path (an analysis that
  has not opted in, a columnar fold that raised mid-batch) folds those
  and reaches bit-identical states, because the fold math reads only
  columns the batch preserves exactly.
* **Derived columns come from the substrate.**  The SEV scan
  (:func:`sev_batches_from_store`) reads ``opened_year``,
  ``device_type`` and ``duration_h`` straight out of SQLite — they
  were computed from the record once at insert — so a columnar scan
  never re-parses a device name and never constructs a report object.
  Batches built from records (:func:`sev_batches_from_records`)
  compute the same derived columns through the record properties,
  which is the same math.
* **Lean transport.**  Pickling a batch ships the column lists only
  (the memoized record list is dropped and rebuilt lazily), so the
  sharded backend can frame a corpus into chunks and ship workers
  columns instead of pickled dataclass streams.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.backbone.tickets import RepairTicket, TicketType
from repro.incidents.sev import RootCause, Severity, SEVReport
from repro.topology.devices import DeviceType

__all__ = [
    "COLUMN_BATCH_ROWS",
    "ColumnBatch",
    "SEVColumnBatch",
    "TicketColumnBatch",
    "TrialColumnBatch",
    "sev_batches_from_records",
    "sev_batches_from_store",
    "ticket_batches_from_records",
]

#: Default rows per column batch.  Large enough that per-batch
#: overhead (state scratch allocation, a merge) amortizes to nothing,
#: small enough that a batch is a cheap unit of work to frame, ship,
#: and retry.
COLUMN_BATCH_ROWS = 4096

_UNDETERMINED = (RootCause.UNDETERMINED,)


class ColumnBatch:
    """A chunk of same-domain records as parallel per-field arrays.

    Subclasses define ``_COLUMNS`` (the picklable parallel lists) and
    ``_materialize`` (columns back into record dataclasses).  Every
    column has exactly ``len(batch)`` entries, in record order.
    """

    domain: str = ""
    _COLUMNS: Tuple[str, ...] = ()

    def __init__(self) -> None:
        self._records: Optional[list] = None

    def __len__(self) -> int:
        return len(getattr(self, self._COLUMNS[0]))

    @property
    def records(self) -> list:
        """The batch's records as dataclasses, materialized lazily.

        The per-row fallback input: identical field for field to the
        records the batch was built from (or scanned out of SQL), and
        memoized so repeated fallbacks in one batch pay once.
        """
        if self._records is None:
            self._records = self._materialize()
        return self._records

    def _materialize(self) -> list:
        raise NotImplementedError

    def __getstate__(self) -> dict:
        # Ship columns only: the memoized record list is rebuilt
        # lazily on the other side if a fallback ever needs it.
        state = {name: getattr(self, name) for name in self._COLUMNS}
        state["_records"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} rows={len(self)}>"


class SEVColumnBatch(ColumnBatch):
    """SEV reports in columnar form (sections 4-5 fold input)."""

    domain = "sev"
    _COLUMNS = (
        "sev_ids", "severities", "device_names", "opened_at_hs",
        "resolved_at_hs", "root_causes", "descriptions",
        "service_impacts", "revieweds",
        # derived once, at scan or build time:
        "years", "device_types", "durations",
    )

    def __init__(
        self,
        sev_ids: List[str],
        severities: List[Severity],
        device_names: List[str],
        opened_at_hs: List[float],
        resolved_at_hs: List[float],
        root_causes: List[Tuple[RootCause, ...]],
        descriptions: List[str],
        service_impacts: List[str],
        revieweds: List[bool],
        years: List[int],
        device_types: List[Optional[DeviceType]],
        durations: List[float],
    ) -> None:
        super().__init__()
        self.sev_ids = sev_ids
        self.severities = severities
        self.device_names = device_names
        self.opened_at_hs = opened_at_hs
        self.resolved_at_hs = resolved_at_hs
        self.root_causes = root_causes
        self.descriptions = descriptions
        self.service_impacts = service_impacts
        self.revieweds = revieweds
        self.years = years
        self.device_types = device_types
        self.durations = durations

    def effective_causes(self) -> Iterator[Tuple[RootCause, ...]]:
        """Per-row causes under the Table 2 rule (none = undetermined)."""
        return (causes or _UNDETERMINED for causes in self.root_causes)

    @classmethod
    def from_records(cls, records: Sequence[SEVReport]) -> "SEVColumnBatch":
        return cls(
            sev_ids=[r.sev_id for r in records],
            severities=[r.severity for r in records],
            device_names=[r.device_name for r in records],
            opened_at_hs=[r.opened_at_h for r in records],
            resolved_at_hs=[r.resolved_at_h for r in records],
            root_causes=[r.root_causes for r in records],
            descriptions=[r.description for r in records],
            service_impacts=[r.service_impact for r in records],
            revieweds=[r.reviewed for r in records],
            years=[r.opened_year for r in records],
            device_types=[r.device_type for r in records],
            durations=[r.duration_h for r in records],
        )

    def _materialize(self) -> list:
        return [
            SEVReport(
                sev_id=sev_id,
                severity=severity,
                device_name=name,
                opened_at_h=opened,
                resolved_at_h=resolved,
                root_causes=causes,
                description=description,
                service_impact=impact,
                reviewed=reviewed,
            )
            for sev_id, severity, name, opened, resolved, causes,
            description, impact, reviewed in zip(
                self.sev_ids, self.severities, self.device_names,
                self.opened_at_hs, self.resolved_at_hs, self.root_causes,
                self.descriptions, self.service_impacts, self.revieweds,
            )
        ]


class TicketColumnBatch(ColumnBatch):
    """Completed repair tickets in columnar form (section 6 input)."""

    domain = "ticket"
    _COLUMNS = (
        "ticket_ids", "link_ids", "vendors", "ticket_types",
        "started_at_hs", "completed_at_hs", "locations",
        "estimated_durations",
        "durations",
    )

    def __init__(
        self,
        ticket_ids: List[str],
        link_ids: List[str],
        vendors: List[str],
        ticket_types: List[TicketType],
        started_at_hs: List[float],
        completed_at_hs: List[float],
        locations: List[str],
        estimated_durations: List[Optional[float]],
        durations: List[float],
    ) -> None:
        super().__init__()
        self.ticket_ids = ticket_ids
        self.link_ids = link_ids
        self.vendors = vendors
        self.ticket_types = ticket_types
        self.started_at_hs = started_at_hs
        self.completed_at_hs = completed_at_hs
        self.locations = locations
        self.estimated_durations = estimated_durations
        self.durations = durations

    @classmethod
    def from_records(
        cls, records: Sequence[RepairTicket]
    ) -> "TicketColumnBatch":
        return cls(
            ticket_ids=[t.ticket_id for t in records],
            link_ids=[t.link_id for t in records],
            vendors=[t.vendor for t in records],
            ticket_types=[t.ticket_type for t in records],
            started_at_hs=[t.started_at_h for t in records],
            completed_at_hs=[t.completed_at_h for t in records],
            locations=[t.location for t in records],
            estimated_durations=[t.estimated_duration_h for t in records],
            durations=[t.completed_at_h - t.started_at_h for t in records],
        )

    def _materialize(self) -> list:
        return [
            RepairTicket(
                ticket_id=ticket_id,
                link_id=link_id,
                vendor=vendor,
                ticket_type=ticket_type,
                started_at_h=started,
                completed_at_h=completed,
                location=location,
                estimated_duration_h=estimate,
            )
            for ticket_id, link_id, vendor, ticket_type, started,
            completed, location, estimate in zip(
                self.ticket_ids, self.link_ids, self.vendors,
                self.ticket_types, self.started_at_hs,
                self.completed_at_hs, self.locations,
                self.estimated_durations,
            )
        ]


class TrialColumnBatch(ColumnBatch):
    """Survivability failure trials in columnar form.

    All-integer counts plus the design tag — the cheapest batch in the
    fleet to frame, ship, and fold (``fold_batch`` on
    :class:`~repro.survivability.analysis.SurvivabilityTallies` sums
    zipped columns straight into the per-cell tallies).
    """

    domain = "trial"
    _COLUMNS = (
        "designs", "trials", "fraction_idxs", "fraction_pcts",
        "connected_rsws", "total_rsws", "surviving_linkss",
        "total_linkss",
    )

    def __init__(
        self,
        designs: List[str],
        trials: List[int],
        fraction_idxs: List[int],
        fraction_pcts: List[int],
        connected_rsws: List[int],
        total_rsws: List[int],
        surviving_linkss: List[int],
        total_linkss: List[int],
    ) -> None:
        super().__init__()
        self.designs = designs
        self.trials = trials
        self.fraction_idxs = fraction_idxs
        self.fraction_pcts = fraction_pcts
        self.connected_rsws = connected_rsws
        self.total_rsws = total_rsws
        self.surviving_linkss = surviving_linkss
        self.total_linkss = total_linkss

    @classmethod
    def from_records(cls, records) -> "TrialColumnBatch":
        return cls(
            designs=[r.design for r in records],
            trials=[r.trial for r in records],
            fraction_idxs=[r.fraction_idx for r in records],
            fraction_pcts=[r.fraction_pct for r in records],
            connected_rsws=[r.connected_rsw for r in records],
            total_rsws=[r.total_rsw for r in records],
            surviving_linkss=[r.surviving_links for r in records],
            total_linkss=[r.total_links for r in records],
        )

    def _materialize(self) -> list:
        from repro.survivability.trials import FailureTrial

        return [
            FailureTrial(
                design=design,
                trial=trial,
                fraction_idx=idx,
                fraction_pct=pct,
                connected_rsw=connected,
                total_rsw=rsw,
                surviving_links=surviving,
                total_links=links,
            )
            for design, trial, idx, pct, connected, rsw, surviving,
            links in zip(
                self.designs, self.trials, self.fraction_idxs,
                self.fraction_pcts, self.connected_rsws,
                self.total_rsws, self.surviving_linkss,
                self.total_linkss,
            )
        ]


_BATCH_OF = {
    "sev": SEVColumnBatch,
    "ticket": TicketColumnBatch,
    "trial": TrialColumnBatch,
}


def batches_from_records(
    domain: str, records: Iterable, batch_size: int = COLUMN_BATCH_ROWS
) -> Iterator[ColumnBatch]:
    """Chunk any record iterable of ``domain`` into column batches."""
    try:
        batch_cls = _BATCH_OF[domain]
    except KeyError:
        raise ValueError(f"unknown corpus domain {domain!r}") from None
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    chunk: list = []
    for record in records:
        chunk.append(record)
        if len(chunk) >= batch_size:
            yield batch_cls.from_records(chunk)
            chunk = []
    if chunk:
        yield batch_cls.from_records(chunk)


def sev_batches_from_records(
    records: Iterable[SEVReport], batch_size: int = COLUMN_BATCH_ROWS
) -> Iterator[SEVColumnBatch]:
    return batches_from_records("sev", records, batch_size)  # type: ignore[return-value]


def ticket_batches_from_records(
    records: Iterable[RepairTicket], batch_size: int = COLUMN_BATCH_ROWS
) -> Iterator[TicketColumnBatch]:
    return batches_from_records("ticket", records, batch_size)  # type: ignore[return-value]


_SEV_SCAN = (
    "SELECT sev_id, severity, device_name, device_type, opened_at_h, "
    "resolved_at_h, opened_year, duration_h, description, "
    "service_impact, reviewed FROM sevs ORDER BY opened_at_h, sev_id"
)

_CAUSE_SCAN = (
    "SELECT sev_id, root_cause FROM sev_root_causes "
    "ORDER BY sev_id, root_cause"
)


def sev_batches_from_store(
    store, batch_size: int = COLUMN_BATCH_ROWS
) -> Iterator[SEVColumnBatch]:
    """Columnar scan of a (monolithic) :class:`SEVStore`.

    Two queries for the whole corpus — the sev rows in the global
    ``(opened_at_h, sev_id)`` order plus one pass over the root-cause
    join table — against two *per row* for the record scan it
    replaces.  The derived columns (year, device type, duration) come
    off the table, where they were computed from the record at insert
    time, so no name is re-parsed and no dataclass is built.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    conn = store.connection
    # Plain dict lookups: `Enum.__call__` costs a method dispatch plus
    # a `__new__` per row, which at corpus scale is one of the scan's
    # hottest lines.
    severity_of = {member.value: member for member in Severity}
    device_of = {member.value: member for member in DeviceType}
    cause_of = {member.value: member for member in RootCause}
    # Most SEVs carry a single cause, so build 1-tuples directly and
    # concatenate only on the rare multi-cause row — a generator or
    # groupby per group costs more than the whole loop.
    causes: dict = {}
    for sev_id, cause in conn.execute(_CAUSE_SCAN):
        prev = causes.get(sev_id)
        if prev is None:
            causes[sev_id] = (cause_of[cause],)
        else:
            causes[sev_id] = prev + (cause_of[cause],)
    cursor = conn.execute(_SEV_SCAN)
    empty: tuple = ()
    causes_of = causes.get
    while True:
        rows = cursor.fetchmany(batch_size)
        if not rows:
            break
        # One C-level transpose instead of a listcomp per column.
        (sev_ids, severities, device_names, device_types, opened_at_hs,
         resolved_at_hs, years, durations, descriptions, service_impacts,
         revieweds) = map(list, zip(*rows))
        yield SEVColumnBatch(
            sev_ids=sev_ids,
            severities=[severity_of[v] for v in severities],
            device_names=device_names,
            opened_at_hs=opened_at_hs,
            resolved_at_hs=resolved_at_hs,
            root_causes=[causes_of(i, empty) for i in sev_ids],
            descriptions=descriptions,
            service_impacts=service_impacts,
            revieweds=[bool(v) for v in revieweds],
            years=years,
            device_types=[
                device_of[v] if v is not None else None
                for v in device_types
            ],
            durations=durations,
        )
