"""Corpus domains: the record sources the runtime can execute over.

The paper is two studies over two record kinds — seven years of
intra data center SEV reports and eighteen months of inter data center
fiber repair tickets — and the runtime executes both through one
protocol.  A :class:`Corpus` answers the four questions an execution
backend asks of a record source:

``records()``
    iterate every record (the stream/fold input);
``fingerprint()``
    a content hash for the result cache, or ``None`` when the corpus
    cannot be fingerprinted (then nothing is cached);
``shards(records, jobs)``
    partition a record iterable into ``jobs`` fold shards — any
    partitioning is correct under the merge law, so each domain picks
    the one that balances its workers best;
``batch_handle()``
    the substrate an analysis' ``batch`` fast path queries (the SQL
    store, the ticket database), or ``None``.

Two concrete domains ship: :class:`SEVCorpus` over
:class:`~repro.incidents.store.SEVStore` and :class:`TicketCorpus`
over :class:`~repro.backbone.tickets.TicketDatabase`.  An
:class:`~repro.runtime.analysis.Analysis` names its domain with the
``domain`` class attribute and the executor resolves the matching
corpus from the :class:`~repro.runtime.analysis.RunContext`.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from repro.backbone.tickets import TicketDatabase
from repro.incidents.store import SEVStore
from repro.runtime.cache import corpus_fingerprint, ticket_fingerprint

__all__ = ["Corpus", "SEVCorpus", "TicketCorpus"]


class Corpus:
    """One record source the executor can run analyses over."""

    #: Domain tag; analyses with a matching ``Analysis.domain`` fold
    #: this corpus' records.
    domain: str = ""

    def __init__(self, seed: Optional[int] = None) -> None:
        #: Generator seed, folded into the fingerprint (two corpora of
        #: equal size from different seeds must never share cache
        #: entries).
        self.seed = seed

    def records(self) -> Iterable:
        raise NotImplementedError

    def fingerprint(self) -> Optional[str]:
        """Content hash for the result cache; ``None`` = uncacheable."""
        return None

    def shards(self, records: Iterable, jobs: int) -> List[list]:
        """Partition ``records`` into at most ``jobs`` fold shards."""
        from repro.stream.sharding import shard_cells

        return shard_cells(list(records), jobs)

    def batch_handle(self) -> Any:
        """The substrate ``Analysis.batch`` queries, if any."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} domain={self.domain!r}>"


def _partition_shards(store, records: Iterable, jobs: int) -> List[list]:
    """Shard a partitioned corpus on its manifest cells.

    Partition = shard cell: records group on the store's
    ``(year, region)`` partition key and the cells pack into ``jobs``
    shards longest-processing-time-first, weighted by row count — the
    same LPT balancing :mod:`repro.stream.sharding` applies to
    generation cells.  Any partitioning merges to the same states
    (the merge law); this one mirrors the physical layout, so a shard
    never straddles more partition files than it must.
    """
    from repro.stream.sharding import shard_cells

    cells: dict = {}
    for record in records:
        cells.setdefault(store.partition_key(record), []).append(record)
    ordered = [cells[key] for key in sorted(cells)]
    weights = [len(cell) for cell in ordered]
    cell_shards = shard_cells(ordered, jobs, weights=weights)
    return [
        [record for cell in shard for record in cell]
        for shard in cell_shards
        if shard
    ]


class SEVCorpus(Corpus):
    """The intra data center SEV corpus (sections 4-5)."""

    domain = "sev"

    def __init__(self, store: SEVStore, seed: Optional[int] = None) -> None:
        super().__init__(seed)
        self.store = store

    def records(self) -> Iterable:
        return self.store.all_reports()

    def fingerprint(self) -> Optional[str]:
        return corpus_fingerprint(self.store, seed=self.seed)

    def shards(self, records: Iterable, jobs: int) -> List[list]:
        """Partition-aware when the store is tiered, else round-robin."""
        if getattr(self.store, "is_partitioned", False):
            return _partition_shards(self.store, records, jobs)
        return super().shards(records, jobs)

    def batch_handle(self) -> Optional[SEVStore]:
        """The SQL substrate — only the monolithic store has one.

        A partitioned store has no single connection to point SQL at;
        returning ``None`` makes every batch-capable analysis fall
        back to fold+finalize, which the cross-backend anchors prove
        result-identical.
        """
        if getattr(self.store, "is_partitioned", False):
            return None
        return self.store


class TicketCorpus(Corpus):
    """The inter data center repair-ticket corpus (section 6)."""

    domain = "ticket"

    def __init__(self, tickets: TicketDatabase,
                 seed: Optional[int] = None) -> None:
        super().__init__(seed)
        self.tickets = tickets

    def records(self) -> Iterable:
        return self.tickets.completed()

    def fingerprint(self) -> Optional[str]:
        return ticket_fingerprint(self.tickets, seed=self.seed)

    def shards(self, records: Iterable, jobs: int) -> List[list]:
        """Cost-weighted shards: one cell per link, LPT-balanced.

        Tickets cluster on links (a flaky link files many), so the
        shards are built from per-link cells weighted by ticket count
        and packed longest-processing-time-first — the same balancing
        :mod:`repro.stream.sharding` applies to SEV generation cells.
        Any partitioning merges to the same states; this one just
        keeps the workers busy evenly.  Over a partitioned store the
        cells are the manifest's (year, location) partitions instead,
        matching the physical shard layout.
        """
        from repro.stream.sharding import shard_cells

        if getattr(self.tickets, "is_partitioned", False):
            return _partition_shards(self.tickets, records, jobs)
        cells: dict = {}
        for ticket in records:
            cells.setdefault(ticket.link_id, []).append(ticket)
        ordered = [cells[link] for link in sorted(cells)]
        weights = [len(cell) for cell in ordered]
        cell_shards = shard_cells(ordered, jobs, weights=weights)
        return [
            [ticket for cell in shard for ticket in cell]
            for shard in cell_shards
            if shard
        ]

    def batch_handle(self) -> TicketDatabase:
        return self.tickets
