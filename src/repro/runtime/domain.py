"""Corpus domains: the record sources the runtime can execute over.

The paper is two studies over two record kinds — seven years of
intra data center SEV reports and eighteen months of inter data center
fiber repair tickets — and the runtime executes both through one
protocol.  A :class:`Corpus` answers the four questions an execution
backend asks of a record source:

``records()``
    iterate every record (the stream/fold input);
``fingerprint()``
    a content hash for the result cache, or ``None`` when the corpus
    cannot be fingerprinted (then nothing is cached);
``shards(records, jobs)``
    partition a record iterable into ``jobs`` fold shards — any
    partitioning is correct under the merge law, so each domain picks
    the one that balances its workers best;
``batch_handle()``
    the substrate an analysis' ``batch`` fast path queries (the SQL
    store, the ticket database), or ``None``.

Two concrete domains ship: :class:`SEVCorpus` over
:class:`~repro.incidents.store.SEVStore` and :class:`TicketCorpus`
over :class:`~repro.backbone.tickets.TicketDatabase`.  An
:class:`~repro.runtime.analysis.Analysis` names its domain with the
``domain`` class attribute and the executor resolves the matching
corpus from the :class:`~repro.runtime.analysis.RunContext`.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from repro.backbone.tickets import TicketDatabase
from repro.incidents.store import SEVStore
from repro.runtime.cache import (
    corpus_fingerprint,
    ticket_fingerprint,
    trial_fingerprint,
)

__all__ = ["Corpus", "SEVCorpus", "TicketCorpus", "TrialCorpus"]


class Corpus:
    """One record source the executor can run analyses over."""

    #: Domain tag; analyses with a matching ``Analysis.domain`` fold
    #: this corpus' records.
    domain: str = ""

    def __init__(self, seed: Optional[int] = None,
                 scenario: Optional[str] = None) -> None:
        #: Generator seed, folded into the fingerprint (two corpora of
        #: equal size from different seeds must never share cache
        #: entries).
        self.seed = seed
        #: Generating scenario's spec digest, folded into the
        #: fingerprint (two corpora of equal size and seed from
        #: *different scenarios* must never share entries either).
        self.scenario = scenario

    def records(self) -> Iterable:
        raise NotImplementedError

    def fingerprint(self) -> Optional[str]:
        """Content hash for the result cache; ``None`` = uncacheable."""
        return None

    def shards(self, records: Iterable, jobs: int) -> List[list]:
        """Partition ``records`` into at most ``jobs`` fold shards."""
        from repro.stream.sharding import shard_cells

        return shard_cells(list(records), jobs)

    def batch_handle(self) -> Any:
        """The substrate ``Analysis.batch`` queries, if any."""
        return None

    def column_batches(self, batch_size: Optional[int] = None):
        """The corpus as :class:`~repro.runtime.columns.ColumnBatch`
        chunks — the columnar backend's scan.

        The default frames :meth:`records` into batches; domains with
        a columnar substrate (the SEV store's SQL scan) override this
        to build columns without materializing record objects at all.
        """
        from repro.runtime.columns import (
            COLUMN_BATCH_ROWS,
            batches_from_records,
        )

        return batches_from_records(
            self.domain, self.records(), batch_size or COLUMN_BATCH_ROWS
        )

    def column_shards(self, jobs: int,
                      batch_size: Optional[int] = None) -> List[list]:
        """Column batches packed into at most ``jobs`` worker shards.

        The sharded backend's columnar transport: each shard is a list
        of batches (chunk-framed, cheap to pickle — columns only, no
        dataclass streams), packed longest-processing-time-first by
        row count.  Any partitioning of batches merges to the same
        states under the merge law, so the batch framing need not
        match the record sharding.
        """
        from repro.stream.sharding import shard_cells

        batches = list(self.column_batches(batch_size))
        weights = [len(batch) for batch in batches]
        return shard_cells(batches, jobs, weights=weights)

    def sql_shards(self):
        """Per-shard SQL substrates for query pushdown, or ``None``.

        When the corpus is backed by SQLite shards (the partitioned
        SEV store), yields ``("store", SEVStore)`` /
        ``("records", list)`` pairs — see
        :meth:`~repro.storage.partitioned.PartitionedSEVStore.shard_stores`.
        ``None`` means no per-shard SQL form exists (monolithic stores
        answer SQL through :meth:`batch_handle` instead).
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} domain={self.domain!r}>"


def _partition_shards(store, records: Iterable, jobs: int) -> List[list]:
    """Shard a partitioned corpus on its manifest cells.

    Partition = shard cell: records group on the store's
    ``(year, region)`` partition key and the cells pack into ``jobs``
    shards longest-processing-time-first, weighted by row count — the
    same LPT balancing :mod:`repro.stream.sharding` applies to
    generation cells.  Any partitioning merges to the same states
    (the merge law); this one mirrors the physical layout, so a shard
    never straddles more partition files than it must.
    """
    from repro.stream.sharding import shard_cells

    cells: dict = {}
    for record in records:
        cells.setdefault(store.partition_key(record), []).append(record)
    ordered = [cells[key] for key in sorted(cells)]
    weights = [len(cell) for cell in ordered]
    cell_shards = shard_cells(ordered, jobs, weights=weights)
    return [
        [record for cell in shard for record in cell]
        for shard in cell_shards
        if shard
    ]


class SEVCorpus(Corpus):
    """The intra data center SEV corpus (sections 4-5)."""

    domain = "sev"

    def __init__(self, store: SEVStore, seed: Optional[int] = None,
                 scenario: Optional[str] = None) -> None:
        super().__init__(seed, scenario)
        self.store = store

    def records(self) -> Iterable:
        return self.store.all_reports()

    def fingerprint(self) -> Optional[str]:
        return corpus_fingerprint(self.store, seed=self.seed,
                                  scenario=self.scenario)

    def shards(self, records: Iterable, jobs: int) -> List[list]:
        """Partition-aware when the store is tiered, else round-robin."""
        if getattr(self.store, "is_partitioned", False):
            return _partition_shards(self.store, records, jobs)
        return super().shards(records, jobs)

    def batch_handle(self) -> Optional[SEVStore]:
        """The SQL substrate — only the monolithic store has one.

        A partitioned store has no single connection to point SQL at;
        returning ``None`` makes every batch-capable analysis fall
        back to per-partition pushdown (:meth:`sql_shards`) or
        fold+finalize, which the cross-backend anchors prove
        result-identical.
        """
        if getattr(self.store, "is_partitioned", False):
            return None
        return self.store

    def column_batches(self, batch_size: Optional[int] = None):
        """Columnar scan straight off the SQL substrate.

        Monolithic: two queries for the whole corpus
        (:func:`~repro.runtime.columns.sev_batches_from_store`) — no
        report objects, no per-row name parsing.  Partitioned: each
        hot shard *is* a monolithic store and scans the same way; cold
        partitions frame their record lists.  Batch order follows the
        layout (global scan order / manifest order) — any framing
        merges to the same states.
        """
        from repro.runtime.columns import (
            COLUMN_BATCH_ROWS,
            sev_batches_from_records,
            sev_batches_from_store,
        )

        size = batch_size or COLUMN_BATCH_ROWS
        if not getattr(self.store, "is_partitioned", False):
            return sev_batches_from_store(self.store, size)

        def scan():
            for kind, payload in self.store.shard_stores():
                if kind == "store":
                    try:
                        yield from sev_batches_from_store(payload, size)
                    finally:
                        payload.close()
                else:
                    yield from sev_batches_from_records(payload, size)

        return scan()

    def sql_shards(self):
        """Per-partition SQL substrates when the store is tiered."""
        if getattr(self.store, "is_partitioned", False):
            shard_stores = getattr(self.store, "shard_stores", None)
            if shard_stores is not None:
                return shard_stores()
        return None


class TicketCorpus(Corpus):
    """The inter data center repair-ticket corpus (section 6)."""

    domain = "ticket"

    def __init__(self, tickets: TicketDatabase,
                 seed: Optional[int] = None,
                 scenario: Optional[str] = None) -> None:
        super().__init__(seed, scenario)
        self.tickets = tickets

    def records(self) -> Iterable:
        return self.tickets.completed()

    def fingerprint(self) -> Optional[str]:
        return ticket_fingerprint(self.tickets, seed=self.seed,
                                  scenario=self.scenario)

    def shards(self, records: Iterable, jobs: int) -> List[list]:
        """Cost-weighted shards: one cell per link, LPT-balanced.

        Tickets cluster on links (a flaky link files many), so the
        shards are built from per-link cells weighted by ticket count
        and packed longest-processing-time-first — the same balancing
        :mod:`repro.stream.sharding` applies to SEV generation cells.
        Any partitioning merges to the same states; this one just
        keeps the workers busy evenly.  Over a partitioned store the
        cells are the manifest's (year, location) partitions instead,
        matching the physical shard layout.
        """
        from repro.stream.sharding import shard_cells

        if getattr(self.tickets, "is_partitioned", False):
            return _partition_shards(self.tickets, records, jobs)
        cells: dict = {}
        for ticket in records:
            cells.setdefault(ticket.link_id, []).append(ticket)
        ordered = [cells[link] for link in sorted(cells)]
        weights = [len(cell) for cell in ordered]
        cell_shards = shard_cells(ordered, jobs, weights=weights)
        return [
            [ticket for cell in shard for ticket in cell]
            for shard in cell_shards
            if shard
        ]

    def batch_handle(self) -> TicketDatabase:
        return self.tickets


class TrialCorpus(Corpus):
    """The survivability trial corpus (the section 6.1 workload).

    Wraps a :class:`~repro.survivability.trials.TrialSet` (duck-typed:
    anything with ``records()``, ``__len__`` and ``knobs`` serves).
    Trials are generated, never stored, so there is no batch substrate
    — every backend folds; the default round-robin sharding balances
    fine because every record folds at the same cost.
    """

    domain = "trial"

    def __init__(self, trials, seed: Optional[int] = None,
                 scenario: Optional[str] = None) -> None:
        super().__init__(seed, scenario)
        self.trials = trials

    def records(self) -> Iterable:
        return self.trials.records()

    def fingerprint(self) -> Optional[str]:
        return trial_fingerprint(self.trials, seed=self.seed,
                                 scenario=self.scenario)
