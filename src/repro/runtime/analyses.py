"""The paper's analyses, declared against the runtime protocol.

One :class:`~repro.runtime.analysis.Analysis` per artifact of
:mod:`repro.core`.  Each corpus analysis pairs a mergeable fold state
(:mod:`repro.runtime.states`) with the pure finalizer math extracted
into the core modules (``rates_from_counts`` and friends), plus the
original SQL implementation as its :meth:`~Analysis.batch` fast path —
so every backend, SQL or fold, runs the *same* math over the same
counts and can only differ in how the counts were gathered.

Two domains of corpus analysis coexist: the sections 4-5 analyses fold
SEV reports (``domain = "sev"``), the section 6 analyses fold repair
tickets (``domain = "ticket"``) — the executor resolves each group's
record source independently.  Analyses that never read any corpus —
Table 1 reads the remediation engine — are context-only
(``requires_corpus = False``).

Analyses that fold the same state declare a shared ``state_key`` so
the executor folds each record into each distinct state once, not once
per analysis.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.backbone.monitor import failures_from_link_outages
from repro.backbone.scorecards import vendor_scorecards
from repro.core.backbone_reliability import (
    backbone_reliability,
    continent_rows_from_failures,
    continent_table,
    reliability_from_outages,
)
from repro.core.design_comparison import (
    DesignComparison,
    design_comparison,
    design_counts_from_type_counts,
)
from repro.core.distribution import (
    IncidentDistribution,
    growth_from_totals,
    incident_distribution,
    incident_growth,
)
from repro.core.incident_rates import incident_rates, rates_from_counts
from repro.core.remediation_stats import remediation_table
from repro.core.root_causes import (
    RootCauseBreakdown,
    device_fractions_from_counts,
    root_cause_breakdown,
    root_causes_by_device,
)
from repro.core.severity import (
    SeverityByDevice,
    severity_by_device,
    severity_rates_from_counts,
    severity_rates_over_time,
)
from repro.core.switch_reliability import (
    switch_reliability,
    switch_reliability_from_counts,
)
from repro.runtime.analysis import Analysis, RunContext
from repro.runtime.states import (
    CauseTallies,
    DurationSketches,
    OutageTallies,
    SeverityTallies,
    TicketDurationSketches,
    YearTypeCounts,
)
from repro.topology.devices import DeviceType

__all__ = [
    "BackboneReliabilityAnalysis",
    "ContinentTableAnalysis",
    "DesignComparisonAnalysis",
    "DistributionAnalysis",
    "GrowthAnalysis",
    "IncidentRatesAnalysis",
    "RemediationTableAnalysis",
    "RepairDurationAnalysis",
    "RootCausesAnalysis",
    "RootCausesByDeviceAnalysis",
    "SeverityByDeviceAnalysis",
    "SeverityOverTimeAnalysis",
    "SwitchReliabilityAnalysis",
    "VendorScorecardAnalysis",
    "backbone_report_analyses",
    "intra_report_analyses",
    "registry",
]


# -- corpus analyses ---------------------------------------------------


class _StateColumnar:
    """Mixin: opt into the columnar fast path by delegation.

    Works for any analysis whose fold state implements ``fold_batch``
    (every mergeable state in :mod:`repro.runtime.states` does) — the
    analysis absorbs a whole :class:`~repro.runtime.columns.ColumnBatch`
    by handing it to the state's array-at-a-time fold.
    """

    def fold_batch(self, batch, state) -> None:
        state.fold_batch(batch)


class _StateSQL:
    """Mixin: opt into per-shard SQL pushdown by delegation.

    For analyses whose state implements ``fold_sql(store)`` — the
    state runs GROUP BY queries against one monolithic-schema SQLite
    shard and adds the tallies, instead of folding rows in Python.
    """

    def fold_sql(self, store, state) -> None:
        state.fold_sql(store)


class RootCausesAnalysis(_StateColumnar, _StateSQL, Analysis):
    """Table 2: root-cause counts and fractions over the whole study."""

    name = "root_causes"
    state_key = "causes"

    def prepare(self, context: RunContext) -> CauseTallies:
        return CauseTallies()

    def fold(self, report, state: CauseTallies) -> None:
        state.fold(report)

    def finalize(self, state: CauseTallies, context: RunContext):
        return RootCauseBreakdown(counts=dict(state.counts))

    def batch(self, context: RunContext):
        return root_cause_breakdown(context.store)


class RootCausesByDeviceAnalysis(_StateColumnar, _StateSQL, Analysis):
    """Figure 2: per root cause, incident fractions by device type."""

    name = "root_causes_by_device"
    state_key = "causes"

    def prepare(self, context: RunContext) -> CauseTallies:
        return CauseTallies()

    def fold(self, report, state: CauseTallies) -> None:
        state.fold(report)

    def finalize(self, state: CauseTallies, context: RunContext):
        return device_fractions_from_counts(state.by_type)

    def batch(self, context: RunContext):
        return root_causes_by_device(context.store)


class IncidentRatesAnalysis(_StateColumnar, _StateSQL, Analysis):
    """Figure 3: per-year, per-type incident rates."""

    name = "incident_rates"
    state_key = "year_type"

    def prepare(self, context: RunContext) -> YearTypeCounts:
        return YearTypeCounts()

    def fold(self, report, state: YearTypeCounts) -> None:
        state.fold(report)

    def finalize(self, state: YearTypeCounts, context: RunContext):
        return rates_from_counts(state.counts, context.fleet)

    def batch(self, context: RunContext):
        return incident_rates(context.store, context.fleet)


class SeverityByDeviceAnalysis(_StateColumnar, _StateSQL, Analysis):
    """Figure 4: the severity-by-device cross-tabulation for the
    target year (explicit, or the newest year in the corpus)."""

    name = "severity_by_device"
    state_key = "severity"

    def prepare(self, context: RunContext) -> SeverityTallies:
        return SeverityTallies()

    def fold(self, report, state: SeverityTallies) -> None:
        state.fold(report)

    def finalize(self, state: SeverityTallies, context: RunContext):
        year = context.resolve_year(state.by_year)
        return SeverityByDevice(
            counts=state.by_year_type.get(year, {}), year=year
        )

    def batch(self, context: RunContext):
        year = context.resolve_year(context.store.years())
        return severity_by_device(context.store, year)


class SeverityOverTimeAnalysis(_StateColumnar, _StateSQL, Analysis):
    """Figure 5: yearly SEV rates per device, by severity level."""

    name = "severity_over_time"
    state_key = "severity"

    def prepare(self, context: RunContext) -> SeverityTallies:
        return SeverityTallies()

    def fold(self, report, state: SeverityTallies) -> None:
        state.fold(report)

    def finalize(self, state: SeverityTallies, context: RunContext):
        return severity_rates_from_counts(state.by_year, context.fleet)

    def batch(self, context: RunContext):
        return severity_rates_over_time(context.store, context.fleet)


class DistributionAnalysis(_StateColumnar, _StateSQL, Analysis):
    """Figures 7/8: per-year incident counts by device type."""

    name = "distribution"
    state_key = "year_type"

    def prepare(self, context: RunContext) -> YearTypeCounts:
        return YearTypeCounts()

    def fold(self, report, state: YearTypeCounts) -> None:
        state.fold(report)

    def finalize(self, state: YearTypeCounts, context: RunContext):
        return IncidentDistribution(
            counts=state.counts,
            baseline_year=context.resolve_baseline(state.yearly_totals),
        )

    def batch(self, context: RunContext):
        return incident_distribution(
            context.store,
            baseline_year=context.resolve_baseline(context.store.years()),
        )


class GrowthAnalysis(_StateColumnar, _StateSQL, Analysis):
    """Figure 8's headline: total SEV growth from the first corpus
    year to the target year."""

    name = "growth"
    state_key = "year_type"

    def prepare(self, context: RunContext) -> YearTypeCounts:
        return YearTypeCounts()

    def fold(self, report, state: YearTypeCounts) -> None:
        state.fold(report)

    def finalize(self, state: YearTypeCounts, context: RunContext):
        totals = state.yearly_totals
        if not totals:
            raise ValueError("the SEV corpus is empty")
        return growth_from_totals(
            totals, min(totals), context.resolve_year(totals)
        )

    def batch(self, context: RunContext):
        years = context.store.years()
        if not years:
            raise ValueError("the SEV corpus is empty")
        return incident_growth(
            context.store, years[0], context.resolve_year(years)
        )


class DesignComparisonAnalysis(_StateColumnar, _StateSQL, Analysis):
    """Figures 9/10: incidents aggregated by network design."""

    name = "design_comparison"
    state_key = "year_type"

    def prepare(self, context: RunContext) -> YearTypeCounts:
        return YearTypeCounts()

    def fold(self, report, state: YearTypeCounts) -> None:
        state.fold(report)

    def finalize(self, state: YearTypeCounts, context: RunContext):
        return DesignComparison(
            counts=design_counts_from_type_counts(state.counts),
            baseline_year=context.resolve_baseline(state.yearly_totals),
            fleet=context.fleet,
        )

    def batch(self, context: RunContext):
        return design_comparison(
            context.store,
            context.fleet,
            baseline_year=context.resolve_baseline(context.store.years()),
        )


class _SwitchState:
    """Composite fold state: year/type counts plus duration sketches."""

    def __init__(self) -> None:
        self.counts = YearTypeCounts()
        self.irt = DurationSketches()

    def fold(self, report) -> None:
        self.counts.fold(report)
        self.irt.fold(report)

    def fold_batch(self, batch) -> None:
        self.counts.fold_batch(batch)
        self.irt.fold_batch(batch)

    def fold_sql(self, store) -> None:
        self.counts.fold_sql(store)
        self.irt.fold_sql(store)

    def merge(self, other: "_SwitchState") -> "_SwitchState":
        self.counts.merge(other.counts)
        self.irt.merge(other.irt)
        return self


class SwitchReliabilityAnalysis(_StateColumnar, _StateSQL, Analysis):
    """Figures 12/13: MTBI and p75IRT per year and device type.

    Every path answers p75IRT from mergeable quantile sketches: exact
    below the sketch's sample budget, bounded by the bin width (well
    under the 2% acceptance band) beyond it.  The batch path feeds the
    same sketches from SQL group-bys (``fold_sql``) rather than taking
    exact percentiles, so batch == stream == columnar stays bit-exact
    at every corpus scale, not just while the sketches are exact.
    """

    name = "switch_reliability"
    state_key = "switch"

    def prepare(self, context: RunContext) -> _SwitchState:
        return _SwitchState()

    def fold(self, report, state: _SwitchState) -> None:
        state.fold(report)

    def finalize(self, state: _SwitchState, context: RunContext):
        def sketch_p75(year: int, device_type: DeviceType) -> Optional[float]:
            sketch = state.irt.by_year_type.get(year, {}).get(device_type)
            if sketch is None or sketch.n == 0:
                return None
            return sketch.p75()

        return switch_reliability_from_counts(
            state.counts.counts, context.fleet, sketch_p75
        )

    def batch(self, context: RunContext):
        state = self.prepare(context)
        state.fold_sql(context.store)
        return self.finalize(state, context)


# -- context-only analyses ---------------------------------------------


class RemediationTableAnalysis(Analysis):
    """Table 1: automated remediation summarized per device type."""

    name = "remediation_table"
    requires_corpus = False

    def finalize(self, state, context: RunContext):
        if context.engine is None:
            raise ValueError(
                "remediation_table needs a RemediationEngine in the context"
            )
        return remediation_table(context.engine)

    def batch(self, context: RunContext):
        return self.finalize(None, context)


# -- ticket-domain (section 6) analyses ---------------------------------


class _TicketAnalysis(_StateColumnar, Analysis):
    """Shared plumbing of the section 6 corpus analyses."""

    domain = "ticket"
    state_key = "ticket_outages"

    def prepare(self, context: RunContext) -> OutageTallies:
        return OutageTallies()

    def fold(self, ticket, state: OutageTallies) -> None:
        state.fold(ticket)

    @staticmethod
    def _topology(context: RunContext):
        topology = context.topology
        if topology is None:
            topology = getattr(context.monitor, "topology", None)
        return topology

    def can_batch(self, context: RunContext) -> bool:
        # The monitor-path shortcut needs the monitor itself and an
        # explicit window (the fold path may infer one, the monitor
        # math cannot).
        return (
            self.has_batch_path()
            and context.monitor is not None
            and context.window_h is not None
        )


class BackboneReliabilityAnalysis(_TicketAnalysis):
    """Figures 15-18: the four backbone percentile curves."""

    name = "backbone_reliability"

    def finalize(self, state: OutageTallies, context: RunContext):
        topology = self._topology(context)
        if topology is None:
            raise ValueError(
                "backbone_reliability needs a topology (or monitor) "
                "in the context"
            )
        window = context.resolve_window(state.max_end_h)
        failures = failures_from_link_outages(
            topology, state.merged_by_link()
        )
        return reliability_from_outages(
            failures, state.sorted_by_vendor(), window
        )

    def batch(self, context: RunContext):
        return backbone_reliability(context.monitor, context.window_h)


class ContinentTableAnalysis(_TicketAnalysis):
    """Table 4: edge distribution and reliability by continent."""

    name = "continent_table"

    def finalize(self, state: OutageTallies, context: RunContext):
        topology = self._topology(context)
        if topology is None:
            raise ValueError(
                "continent_table needs a topology (or monitor) "
                "in the context"
            )
        window = context.resolve_window(state.max_end_h)
        failures = failures_from_link_outages(
            topology, state.merged_by_link()
        )
        return continent_rows_from_failures(failures, topology, window)

    def batch(self, context: RunContext):
        return continent_table(
            context.monitor, self._topology(context), context.window_h
        )


class VendorScorecardAnalysis(_TicketAnalysis):
    """Section 6.2's operational consumer: graded vendor scorecards."""

    name = "vendor_scorecards"

    def finalize(self, state: OutageTallies, context: RunContext):
        from repro.backbone.scorecards import scorecards_from_outages

        window = context.resolve_window(state.max_end_h)
        return scorecards_from_outages(state.sorted_by_vendor(), window)

    def batch(self, context: RunContext):
        return vendor_scorecards(context.monitor, context.window_h)


class RepairDurationAnalysis(_StateColumnar, Analysis):
    """Repair-duration percentiles, overall and by ticket type."""

    name = "repair_durations"
    domain = "ticket"
    state_key = "ticket_durations"

    def prepare(self, context: RunContext) -> TicketDurationSketches:
        return TicketDurationSketches()

    def fold(self, ticket, state: TicketDurationSketches) -> None:
        state.fold(ticket)

    def finalize(self, state: TicketDurationSketches, context: RunContext):
        return state.summary()

    def batch(self, context: RunContext):
        # No faster substrate exists for durations; the shortcut is a
        # plain fold over the ticket database, kept so the batch
        # backend needs no special case.
        state = self.prepare(context)
        for ticket in context.resolve_tickets().completed():
            self.fold(ticket, state)
        return self.finalize(state, context)


# -- registry ----------------------------------------------------------

_ANALYSES = (
    RootCausesAnalysis,
    RootCausesByDeviceAnalysis,
    IncidentRatesAnalysis,
    SeverityByDeviceAnalysis,
    SeverityOverTimeAnalysis,
    DistributionAnalysis,
    GrowthAnalysis,
    DesignComparisonAnalysis,
    SwitchReliabilityAnalysis,
    RemediationTableAnalysis,
    BackboneReliabilityAnalysis,
    ContinentTableAnalysis,
    VendorScorecardAnalysis,
    RepairDurationAnalysis,
)


def registry() -> Dict[str, Analysis]:
    """Fresh instances of every registered analysis, by name."""
    return {cls.name: cls() for cls in _ANALYSES}


def intra_report_analyses():
    """The analyses :class:`repro.core.IntraStudyReport` composes."""
    return [
        RootCausesAnalysis(),
        IncidentRatesAnalysis(),
        SeverityByDeviceAnalysis(),
        SeverityOverTimeAnalysis(),
        DistributionAnalysis(),
        DesignComparisonAnalysis(),
        SwitchReliabilityAnalysis(),
        GrowthAnalysis(),
    ]


def backbone_report_analyses():
    """The analyses :class:`repro.core.BackboneStudyReport` composes."""
    return [
        BackboneReliabilityAnalysis(),
        ContinentTableAnalysis(),
        VendorScorecardAnalysis(),
        RepairDurationAnalysis(),
    ]

