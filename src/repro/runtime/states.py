"""Mergeable per-record tally states.

These are the fold/merge primitives every execution backend shares.
Each state knows how to absorb one :class:`~repro.incidents.sev.SEVReport`
(``fold``) and how to absorb another state of the same kind (``merge``);
both operations follow the counting rules of the SQL layer
(:mod:`repro.incidents.query`) exactly — device types come from the
name prefix, untyped reports are excluded from per-type breakdowns but
counted in yearly totals, and a SEV with multiple root causes
contributes one attribution per cause (none recorded counts as
undetermined).

``merge`` is associative and commutative for every state here, which
is the law the sharded backend (and :mod:`repro.stream.sharding`)
relies on: any partitioning of a corpus, folded shard-locally and
merged in any order, reaches the same state as a single sequential
pass.  The streaming runtime's :class:`~repro.stream.aggregates.StreamAggregates`
is a bundle of these states, so batch, streaming, and sharded
execution all share one implementation of the math.

Each state also speaks two faster dialects of the same math:

``fold_batch(batch)``
    absorb one :class:`~repro.runtime.columns.ColumnBatch` with
    array-at-a-time operations — ``Counter`` tallies over zipped
    columns, sketches fed in blocks.  Every tally is a sum over the
    batch's rows and every sketch is multiset-determined, so a
    columnar fold reaches bit-identical finalized results to the
    per-row reference fold;
``fold_sql(store)`` (SEV states)
    absorb one monolithic-schema SQLite shard through GROUP BY
    queries — the per-partition pushdown the batch backend runs over
    tiered stores.  Counting rules mirror
    :mod:`repro.incidents.query` exactly.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

from repro.backbone.tickets import RepairTicket, TicketType
from repro.incidents.sev import RootCause, Severity, SEVReport
from repro.stats.intervals import OutageInterval, merge_intervals
from repro.stats.quantile import QuantileSketch
from repro.topology.devices import DeviceType

__all__ = [
    "CauseTallies",
    "DurationSketches",
    "OutageTallies",
    "SeverityTallies",
    "TicketDurationSketches",
    "YearTypeCounts",
]


class YearTypeCounts:
    """Incident counts by year, typed and untyped.

    ``counts`` holds only reports whose device name classifies to a
    type (the Figures 3/7/8/12 numerators); ``yearly_totals`` holds
    every report (the Figure 8 growth denominators).
    """

    def __init__(self) -> None:
        self.counts: Dict[int, Dict[DeviceType, int]] = {}
        self.yearly_totals: Dict[int, int] = {}

    def fold(self, report: SEVReport) -> None:
        year = report.opened_year
        self.yearly_totals[year] = self.yearly_totals.get(year, 0) + 1
        device_type = report.device_type
        if device_type is None:
            return
        per_type = self.counts.setdefault(year, {})
        per_type[device_type] = per_type.get(device_type, 0) + 1

    def fold_batch(self, batch) -> None:
        """Absorb one SEV column batch: two Counter tallies."""
        for year, n in Counter(batch.years).items():
            self.yearly_totals[year] = self.yearly_totals.get(year, 0) + n
        typed = Counter(
            pair for pair in zip(batch.years, batch.device_types)
            if pair[1] is not None
        )
        for (year, device_type), n in typed.items():
            per_type = self.counts.setdefault(year, {})
            per_type[device_type] = per_type.get(device_type, 0) + n

    def fold_sql(self, store) -> None:
        """Absorb one SQLite shard: the Figure 3/7/8 GROUP BYs."""
        from repro.incidents.query import SEVQuery

        query = SEVQuery(store)
        for year, n in query.count_by_year().items():
            self.yearly_totals[year] = self.yearly_totals.get(year, 0) + n
        for year, per_type in query.count_by_year_and_type().items():
            mine = self.counts.setdefault(year, {})
            for device_type, n in per_type.items():
                mine[device_type] = mine.get(device_type, 0) + n

    def merge(self, other: "YearTypeCounts") -> "YearTypeCounts":
        for year, n in other.yearly_totals.items():
            self.yearly_totals[year] = self.yearly_totals.get(year, 0) + n
        for year, per_type in other.counts.items():
            mine = self.counts.setdefault(year, {})
            for device_type, n in per_type.items():
                mine[device_type] = mine.get(device_type, 0) + n
        return self


class SeverityTallies:
    """Severity cross-tabulations by year.

    ``by_year_type`` is the Figure 4 severity-by-device table (typed
    reports only); ``by_year`` is the Figure 5 numerator (all reports).
    """

    def __init__(self) -> None:
        self.by_year_type: Dict[int, Dict[Severity, Dict[DeviceType, int]]] = {}
        self.by_year: Dict[int, Dict[Severity, int]] = {}

    def fold(self, report: SEVReport) -> None:
        year = report.opened_year
        per_sev = self.by_year.setdefault(year, {})
        per_sev[report.severity] = per_sev.get(report.severity, 0) + 1
        device_type = report.device_type
        if device_type is None:
            return
        row = self.by_year_type.setdefault(year, {}).setdefault(
            report.severity, {}
        )
        row[device_type] = row.get(device_type, 0) + 1

    def fold_batch(self, batch) -> None:
        for (year, severity), n in Counter(
            zip(batch.years, batch.severities)
        ).items():
            per_sev = self.by_year.setdefault(year, {})
            per_sev[severity] = per_sev.get(severity, 0) + n
        typed = Counter(
            triple
            for triple in zip(
                batch.years, batch.severities, batch.device_types
            )
            if triple[2] is not None
        )
        for (year, severity, device_type), n in typed.items():
            row = self.by_year_type.setdefault(year, {}).setdefault(
                severity, {}
            )
            row[device_type] = row.get(device_type, 0) + n

    def fold_sql(self, store) -> None:
        from repro.incidents.query import SEVQuery

        query = SEVQuery(store)
        for year, per_sev in query.count_by_year_and_severity().items():
            mine = self.by_year.setdefault(year, {})
            for severity, n in per_sev.items():
                mine[severity] = mine.get(severity, 0) + n
        for (year, severity, device_type), n in (
            query.count_by_year_severity_and_type().items()
        ):
            row = self.by_year_type.setdefault(year, {}).setdefault(
                severity, {}
            )
            row[device_type] = row.get(device_type, 0) + n

    def merge(self, other: "SeverityTallies") -> "SeverityTallies":
        for year, per_sev in other.by_year.items():
            mine = self.by_year.setdefault(year, {})
            for severity, n in per_sev.items():
                mine[severity] = mine.get(severity, 0) + n
        for year, per_sev_type in other.by_year_type.items():
            for severity, per_type in per_sev_type.items():
                row = self.by_year_type.setdefault(year, {}).setdefault(
                    severity, {}
                )
                for device_type, n in per_type.items():
                    row[device_type] = row.get(device_type, 0) + n
        return self


class CauseTallies:
    """Root-cause attributions, Table 2 counting rules.

    One attribution per cause per SEV; a SEV without recorded causes
    attributes to undetermined.  ``by_type`` restricts to typed
    reports (the Figure 2 numerators).
    """

    def __init__(self) -> None:
        self.counts: Dict[RootCause, int] = {}
        self.by_type: Dict[RootCause, Dict[DeviceType, int]] = {}

    def fold(self, report: SEVReport) -> None:
        causes = report.effective_root_causes()
        for cause in causes:
            self.counts[cause] = self.counts.get(cause, 0) + 1
        device_type = report.device_type
        if device_type is None:
            return
        for cause in causes:
            per_type = self.by_type.setdefault(cause, {})
            per_type[device_type] = per_type.get(device_type, 0) + 1

    def fold_batch(self, batch) -> None:
        for cause, n in Counter(
            cause
            for causes in batch.effective_causes()
            for cause in causes
        ).items():
            self.counts[cause] = self.counts.get(cause, 0) + n
        typed = Counter(
            (cause, device_type)
            for causes, device_type in zip(
                batch.effective_causes(), batch.device_types
            )
            if device_type is not None
            for cause in causes
        )
        for (cause, device_type), n in typed.items():
            per_type = self.by_type.setdefault(cause, {})
            per_type[device_type] = per_type.get(device_type, 0) + n

    def fold_sql(self, store) -> None:
        from repro.incidents.query import SEVQuery

        query = SEVQuery(store)
        for cause, n in query.count_by_root_cause().items():
            self.counts[cause] = self.counts.get(cause, 0) + n
        for cause, per_type in query.count_by_root_cause_and_type().items():
            mine = self.by_type.setdefault(cause, {})
            for device_type, n in per_type.items():
                mine[device_type] = mine.get(device_type, 0) + n

    def merge(self, other: "CauseTallies") -> "CauseTallies":
        for cause, n in other.counts.items():
            self.counts[cause] = self.counts.get(cause, 0) + n
        for cause, per_type in other.by_type.items():
            mine = self.by_type.setdefault(cause, {})
            for device_type, n in per_type.items():
                mine[device_type] = mine.get(device_type, 0) + n
        return self


class DurationSketches:
    """Resolution-time sketches per (year, device type) and per year.

    Typed reports only, mirroring the SQL ``durations`` query the
    batch p75IRT is computed from.  Sketches are exact while a cell is
    below the sample budget, so small corpora stream bit-identical
    percentiles; past the budget the error is bounded by the bin width.
    """

    def __init__(self) -> None:
        self.by_year_type: Dict[int, Dict[DeviceType, QuantileSketch]] = {}
        self.by_year: Dict[int, QuantileSketch] = {}

    def fold(self, report: SEVReport) -> None:
        device_type = report.device_type
        if device_type is None:
            return
        year = report.opened_year
        cell = self.by_year_type.setdefault(year, {})
        if device_type not in cell:
            cell[device_type] = QuantileSketch()
        cell[device_type].add(report.duration_h)
        if year not in self.by_year:
            self.by_year[year] = QuantileSketch()
        self.by_year[year].add(report.duration_h)

    def _extend_cells(self, blocks: Dict, year_blocks: Dict) -> None:
        """Feed grouped duration blocks into the (lazily made) sketches."""
        for (year, device_type), block in blocks.items():
            cell = self.by_year_type.setdefault(year, {})
            if device_type not in cell:
                cell[device_type] = QuantileSketch()
            cell[device_type].extend(block)
        for year, block in year_blocks.items():
            if year not in self.by_year:
                self.by_year[year] = QuantileSketch()
            self.by_year[year].extend(block)

    def fold_batch(self, batch) -> None:
        """Group the typed durations once, then feed blocks.

        Sketch contents are multiset-determined (exact cells sort on
        query, binned cells count per bucket), so block feeding is
        bit-identical to per-row adds in any order.
        """
        blocks: Dict = {}
        for year, device_type, duration in zip(
            batch.years, batch.device_types, batch.durations
        ):
            if device_type is None:
                continue
            blocks.setdefault((year, device_type), []).append(duration)
        # The per-year blocks are the typed blocks re-keyed — same
        # multiset per year, one less append per row.
        year_blocks: Dict = {}
        for (year, _), block in blocks.items():
            year_blocks.setdefault(year, []).extend(block)
        self._extend_cells(blocks, year_blocks)

    def fold_sql(self, store) -> None:
        """One column fetch of the typed durations, grouped in SQL order."""
        blocks: Dict = {}
        year_blocks: Dict = {}
        for year, device_type, duration in store.connection.execute(
            "SELECT opened_year, device_type, duration_h FROM sevs "
            "WHERE device_type IS NOT NULL "
            "ORDER BY opened_year, device_type"
        ):
            key = (year, DeviceType(device_type))
            blocks.setdefault(key, []).append(duration)
            year_blocks.setdefault(year, []).append(duration)
        self._extend_cells(blocks, year_blocks)

    def merge(self, other: "DurationSketches") -> "DurationSketches":
        for year, per_type in other.by_year_type.items():
            cell = self.by_year_type.setdefault(year, {})
            for device_type, sketch in per_type.items():
                if device_type in cell:
                    cell[device_type].merge(sketch)
                else:
                    cell[device_type] = QuantileSketch.from_dict(
                        sketch.to_dict()
                    )
        for year, sketch in other.by_year.items():
            if year in self.by_year:
                self.by_year[year].merge(sketch)
            else:
                self.by_year[year] = QuantileSketch.from_dict(sketch.to_dict())
        return self


# -- ticket-domain states ----------------------------------------------


class OutageTallies:
    """Per-link and per-vendor outage intervals from repair tickets.

    The section 6 fold state: one completed ticket contributes its
    outage interval to its link's and its vendor's raw interval list.
    Merging concatenates lists, so any partitioning of the ticket
    corpus reaches the same multiset of intervals; the finalize views
    (:meth:`merged_by_link`, :meth:`sorted_by_vendor`) sort or merge
    that multiset, which makes every downstream number independent of
    fold order — the bit-identical cross-backend guarantee.
    """

    def __init__(self) -> None:
        self.by_link: Dict[str, List[OutageInterval]] = {}
        self.by_vendor: Dict[str, List[OutageInterval]] = {}
        self.tickets = 0
        self.max_end_h = 0.0

    def fold(self, ticket: RepairTicket) -> None:
        interval = ticket.interval()
        self.by_link.setdefault(ticket.link_id, []).append(interval)
        self.by_vendor.setdefault(ticket.vendor, []).append(interval)
        self.tickets += 1
        self.max_end_h = max(self.max_end_h, interval.end_h)

    def fold_batch(self, batch) -> None:
        """Absorb one ticket column batch: intervals built in one pass."""
        intervals = [
            OutageInterval(start, end)
            for start, end in zip(batch.started_at_hs, batch.completed_at_hs)
        ]
        for link, interval in zip(batch.link_ids, intervals):
            self.by_link.setdefault(link, []).append(interval)
        for vendor, interval in zip(batch.vendors, intervals):
            self.by_vendor.setdefault(vendor, []).append(interval)
        self.tickets += len(intervals)
        if intervals:
            self.max_end_h = max(
                self.max_end_h, max(interval.end_h for interval in intervals)
            )

    def merge(self, other: "OutageTallies") -> "OutageTallies":
        for link, intervals in other.by_link.items():
            self.by_link.setdefault(link, []).extend(intervals)
        for vendor, intervals in other.by_vendor.items():
            self.by_vendor.setdefault(vendor, []).extend(intervals)
        self.tickets += other.tickets
        self.max_end_h = max(self.max_end_h, other.max_end_h)
        return self

    def merged_by_link(self) -> Dict[str, List[OutageInterval]]:
        """Overlap-merged outages per link, the monitor's link view."""
        return {
            link: merge_intervals(intervals)
            for link, intervals in sorted(self.by_link.items())
        }

    def sorted_by_vendor(self) -> Dict[str, List[OutageInterval]]:
        """Chronologically sorted outages per vendor (distinct links
        overlap legitimately, so nothing is merged — section 6.2)."""
        return {
            vendor: sorted(intervals)
            for vendor, intervals in sorted(self.by_vendor.items())
        }


class TicketDurationSketches:
    """Repair-duration sketches, overall and per ticket type.

    Reuses the mergeable :class:`~repro.stats.quantile.QuantileSketch`:
    exact below the sample budget (small corpora stream bit-identical
    percentiles), bounded by the bin width beyond it, and insensitive
    to fold and merge order either way.
    """

    def __init__(self) -> None:
        self.overall = QuantileSketch()
        self.by_type: Dict[TicketType, QuantileSketch] = {}
        self.tickets = 0

    def fold(self, ticket: RepairTicket) -> None:
        duration = ticket.duration_h
        self.overall.add(duration)
        if ticket.ticket_type not in self.by_type:
            self.by_type[ticket.ticket_type] = QuantileSketch()
        self.by_type[ticket.ticket_type].add(duration)
        self.tickets += 1

    def fold_batch(self, batch) -> None:
        self.overall.extend(batch.durations)
        blocks: Dict[TicketType, List[float]] = {}
        for ticket_type, duration in zip(batch.ticket_types, batch.durations):
            blocks.setdefault(ticket_type, []).append(duration)
        for ticket_type, block in blocks.items():
            if ticket_type not in self.by_type:
                self.by_type[ticket_type] = QuantileSketch()
            self.by_type[ticket_type].extend(block)
        self.tickets += len(batch.durations)

    def merge(self, other: "TicketDurationSketches") -> "TicketDurationSketches":
        self.overall.merge(other.overall)
        for ticket_type, sketch in other.by_type.items():
            if ticket_type in self.by_type:
                self.by_type[ticket_type].merge(sketch)
            else:
                self.by_type[ticket_type] = QuantileSketch.from_dict(
                    sketch.to_dict()
                )
        self.tickets += other.tickets
        return self

    def summary(self):
        """The folded durations as a result dataclass.

        The finalize view shared by the runtime analysis and the live
        stream dashboard, so both render the identical summary.
        """
        from repro.core.backbone_reliability import RepairDurationSummary

        if self.tickets == 0:
            raise ValueError("no completed tickets observed in the corpus")
        return RepairDurationSummary(
            tickets=self.tickets,
            p50_h=self.overall.quantile(0.5),
            p90_h=self.overall.quantile(0.9),
            p99_h=self.overall.quantile(0.99),
            by_type={
                ticket_type.value: sketch.n
                for ticket_type, sketch in sorted(
                    self.by_type.items(), key=lambda kv: kv[0].value
                )
            },
        )
