"""The declarative analysis protocol.

An :class:`Analysis` describes *what* a paper artifact needs, not *how*
to scan the corpus for it:

``prepare(context)``
    allocate an empty, mergeable state;
``fold(report, state)``
    absorb one SEV record into the state, in place;
``merge(state, other)``
    absorb another state produced by the same analysis (associative
    and commutative — the sharding law);
``finalize(state, context)``
    turn the folded state into the analysis' result dataclass.

The executor (:mod:`repro.runtime.executor`) chooses the execution
strategy: one fused streaming pass folds every registered analysis
simultaneously, the sharded backend folds partitions independently and
merges, and the batch backend may take an analysis' optional
:meth:`Analysis.batch` shortcut — the original SQL implementation in
:mod:`repro.core` — which must return exactly what fold+finalize would.

Analyses that do not consume the SEV corpus at all (Table 1 reads the
remediation engine, section 6 reads the backbone ticket monitor) set
``requires_corpus = False``; their ``fold`` is a no-op and their result
comes entirely from the context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.fleet.population import FleetModel
from repro.incidents.store import SEVStore

__all__ = ["Analysis", "RunContext"]


@dataclass
class RunContext:
    """Everything an analysis may draw on besides the record stream.

    ``year`` is the study's target year (the paper's 2017); ``None``
    means "the newest year in the corpus", resolved after folding so
    streaming backends need no look-ahead.  ``baseline_year`` defaults
    to the resolved target year.  ``corpus_seed`` travels with the
    context so the result cache can fingerprint generated corpora.
    """

    store: Optional[SEVStore] = None
    fleet: Optional[FleetModel] = None
    year: Optional[int] = None
    baseline_year: Optional[int] = None
    corpus_seed: Optional[int] = None
    #: Table 1 substrate (:class:`repro.remediation.engine.RemediationEngine`).
    engine: Any = None
    #: Section 6 substrate (:class:`repro.backbone.monitor.BackboneMonitor`).
    monitor: Any = None
    #: Section 6 topology (:class:`repro.topology.backbone.BackboneTopology`).
    topology: Any = None
    #: Section 6 observation window in hours.
    window_h: Optional[float] = None
    #: Free-form extras for user-defined analyses.
    extra: dict = field(default_factory=dict)

    def resolve_year(self, years) -> int:
        """The target year: explicit, or the newest year observed."""
        if self.year is not None:
            return self.year
        years = sorted(years)
        if not years:
            raise ValueError("the SEV corpus is empty")
        return years[-1]

    def resolve_baseline(self, years) -> int:
        if self.baseline_year is not None:
            return self.baseline_year
        return self.resolve_year(years)


class Analysis:
    """Base class for declarative analyses.

    Subclasses set :attr:`name` (the registry/cache key) and implement
    the four protocol methods.  ``merge`` defaults to delegating to the
    state's own ``merge`` method, which every state in
    :mod:`repro.runtime.states` provides.
    """

    #: Registry and cache key; unique among registered analyses.
    name: str = ""
    #: Whether the analysis folds SEV records (False = context-only).
    requires_corpus: bool = True
    #: Analyses sharing a ``state_key`` must prepare/fold identically;
    #: the executor then folds each record into that state once and
    #: hands every sharer the same folded state.  ``None`` keeps the
    #: state private to the analysis.
    state_key: Optional[str] = None

    def prepare(self, context: RunContext) -> Any:
        return None

    def fold(self, report, state) -> None:
        pass

    def merge(self, state, other):
        if state is None:
            return other
        if other is None:
            return state
        return state.merge(other)

    def finalize(self, state, context: RunContext):
        raise NotImplementedError

    def batch(self, context: RunContext):
        """Optional SQL fast path over ``context.store``.

        Must be result-equivalent to folding the store's records and
        finalizing.  The default signals "no shortcut" and makes the
        batch backend fall back to fold+finalize.
        """
        raise NotImplementedError

    def has_batch_path(self) -> bool:
        return type(self).batch is not Analysis.batch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
