"""The declarative analysis protocol.

An :class:`Analysis` describes *what* a paper artifact needs, not *how*
to scan the corpus for it:

``prepare(context)``
    allocate an empty, mergeable state;
``fold(report, state)``
    absorb one record of the analysis' domain into the state, in place;
``merge(state, other)``
    absorb another state produced by the same analysis (associative
    and commutative — the sharding law);
``finalize(state, context)``
    turn the folded state into the analysis' result dataclass.

The executor (:mod:`repro.runtime.executor`) chooses the execution
strategy: one fused streaming pass folds every registered analysis
simultaneously, the sharded backend folds partitions independently and
merges, and the batch backend may take an analysis' optional
:meth:`Analysis.batch` shortcut — the original substrate-querying
implementation in :mod:`repro.core` — which must return exactly what
fold+finalize would.

An analysis declares which record kind it folds with ``domain``
(``"sev"`` for SEV reports, ``"ticket"`` for backbone repair tickets);
the executor resolves the matching :class:`~repro.runtime.domain.Corpus`
from the context via :meth:`RunContext.corpus_for`.  Analyses that do
not consume any corpus (Table 1 reads the remediation engine) set
``requires_corpus = False``; their ``fold`` is a no-op and their
result comes entirely from the context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.fleet.population import FleetModel
from repro.incidents.store import SEVStore

__all__ = ["Analysis", "RunContext"]


@dataclass
class RunContext:
    """Everything an analysis may draw on besides the record stream.

    ``year`` is the study's target year (the paper's 2017); ``None``
    means "the newest year in the corpus", resolved after folding so
    streaming backends need no look-ahead.  ``baseline_year`` defaults
    to the resolved target year.  ``corpus_seed`` travels with the
    context so the result cache can fingerprint generated corpora —
    of either domain; the fingerprints themselves are domain-tagged,
    so a SEV corpus and a ticket corpus sharing a seed never collide.
    """

    store: Optional[SEVStore] = None
    fleet: Optional[FleetModel] = None
    year: Optional[int] = None
    baseline_year: Optional[int] = None
    corpus_seed: Optional[int] = None
    #: Spec digest of the generating scenario
    #: (:attr:`repro.simulation.scenarios.IntraScenario.spec_digest`);
    #: travels into the corpus fingerprints so two distinct scenarios
    #: at identical (rows, seed, schema) never share a cache entry.
    scenario_digest: Optional[str] = None
    #: Table 1 substrate (:class:`repro.remediation.engine.RemediationEngine`).
    engine: Any = None
    #: Section 6 substrate (:class:`repro.backbone.monitor.BackboneMonitor`).
    monitor: Any = None
    #: Section 6 topology (:class:`repro.topology.backbone.BackboneTopology`).
    topology: Any = None
    #: Section 6 observation window in hours.
    window_h: Optional[float] = None
    #: Section 6 record source (:class:`repro.backbone.tickets.TicketDatabase`);
    #: defaults to ``monitor.tickets`` when only a monitor is supplied.
    tickets: Any = None
    #: Survivability record source
    #: (:class:`repro.survivability.trials.TrialSet`).
    trials: Any = None
    #: Free-form extras for user-defined analyses.
    extra: dict = field(default_factory=dict)

    def resolve_year(self, years) -> int:
        """The target year: explicit, or the newest year observed."""
        if self.year is not None:
            return self.year
        years = sorted(years)
        if not years:
            raise ValueError("the SEV corpus is empty")
        return years[-1]

    def resolve_baseline(self, years) -> int:
        if self.baseline_year is not None:
            return self.baseline_year
        return self.resolve_year(years)

    def resolve_window(self, observed_end_h: Optional[float] = None) -> float:
        """The observation window: explicit, or the last observed end.

        Streaming ticket consumers without a configured window fall
        back to the newest completion time folded so far — the live
        analog of "the study window ends now".
        """
        if self.window_h is not None:
            return self.window_h
        if observed_end_h:
            return observed_end_h
        raise ValueError(
            "no observation window: set window_h in the context "
            "(or fold at least one completed ticket)"
        )

    def resolve_tickets(self):
        """The ticket database: explicit, or the monitor's."""
        if self.tickets is not None:
            return self.tickets
        return getattr(self.monitor, "tickets", None)

    def corpus_for(self, domain: str):
        """The :class:`~repro.runtime.domain.Corpus` for ``domain``.

        Returns ``None`` when the context carries no record source of
        that kind (the analysis must then be fed an explicit source).
        """
        from repro.runtime.domain import SEVCorpus, TicketCorpus, TrialCorpus

        if domain == SEVCorpus.domain:
            if self.store is None:
                return None
            return SEVCorpus(self.store, seed=self.corpus_seed,
                             scenario=self.scenario_digest)
        if domain == TicketCorpus.domain:
            tickets = self.resolve_tickets()
            if tickets is None:
                return None
            return TicketCorpus(tickets, seed=self.corpus_seed,
                                scenario=self.scenario_digest)
        if domain == TrialCorpus.domain:
            if self.trials is None:
                return None
            return TrialCorpus(self.trials, seed=self.corpus_seed,
                               scenario=self.scenario_digest)
        raise ValueError(f"unknown corpus domain {domain!r}")


class Analysis:
    """Base class for declarative analyses.

    Subclasses set :attr:`name` (the registry/cache key) and implement
    the four protocol methods.  ``merge`` defaults to delegating to the
    state's own ``merge`` method, which every state in
    :mod:`repro.runtime.states` provides.
    """

    #: Registry and cache key; unique among registered analyses.
    name: str = ""
    #: Whether the analysis folds corpus records (False = context-only).
    requires_corpus: bool = True
    #: Which record kind ``fold`` consumes ("sev" or "ticket"); the
    #: executor resolves the matching corpus via
    #: :meth:`RunContext.corpus_for`.
    domain: str = "sev"
    #: Analyses sharing a ``state_key`` must prepare/fold identically;
    #: the executor then folds each record into that state once and
    #: hands every sharer the same folded state.  ``None`` keeps the
    #: state private to the analysis.
    state_key: Optional[str] = None

    def prepare(self, context: RunContext) -> Any:
        return None

    def fold(self, report, state) -> None:
        pass

    def merge(self, state, other):
        if state is None:
            return other
        if other is None:
            return state
        return state.merge(other)

    def finalize(self, state, context: RunContext):
        raise NotImplementedError

    def fold_batch(self, batch, state) -> None:
        """Optional columnar fold: absorb one whole
        :class:`~repro.runtime.columns.ColumnBatch` into ``state``.

        The array-at-a-time fast path.  Must reach bit-identical
        finalized results to folding ``batch.records`` one by one —
        the per-row :meth:`fold` stays the reference implementation,
        and the executor falls back to it automatically for analyses
        that don't override this (and for a columnar batch that raises
        mid-fold, via the ``runtime.fold`` fault site).  Analyses
        whose state implements ``fold_batch`` opt in by delegating
        (``state.fold_batch(batch)``).
        """
        raise NotImplementedError

    def has_fold_batch(self) -> bool:
        """Whether the analysis opted into the columnar fast path."""
        return type(self).fold_batch is not Analysis.fold_batch

    def fold_sql(self, store, state) -> None:
        """Optional SQL pushdown: absorb one SQLite shard into ``state``.

        ``store`` is a monolithic-schema :class:`SEVStore` (possibly
        one hot shard of a partitioned store); the implementation runs
        GROUP BY queries and adds their tallies to the mergeable
        state.  Must be fold-equivalent over the shard's rows.  The
        batch backend uses this to push every expressible analysis
        down to SQLite per partition instead of folding rows in
        Python.
        """
        raise NotImplementedError

    def has_sql_fold(self) -> bool:
        """Whether the analysis can build its state straight from SQL."""
        return type(self).fold_sql is not Analysis.fold_sql

    def batch(self, context: RunContext):
        """Optional fast path over the corpus' batch substrate.

        For SEV analyses this is the original SQL implementation over
        ``context.store``; for ticket analyses it queries the monitor.
        Must be result-equivalent to folding the corpus' records and
        finalizing.  The default signals "no shortcut" and makes the
        batch backend fall back to fold+finalize.
        """
        raise NotImplementedError

    def has_batch_path(self) -> bool:
        return type(self).batch is not Analysis.batch

    def can_batch(self, context: RunContext) -> bool:
        """Whether ``batch`` can run against this context.

        The default requires the context to carry the analysis'
        domain substrate *and* that substrate to expose a batch
        handle — a partitioned SEV store has no single SQL connection,
        so its corpus reports ``batch_handle() is None`` and the batch
        backend falls back to fold+finalize (result-identical by the
        merge law).  Analyses whose shortcut needs more (the ticket
        analyses query the monitor directly) override this.
        """
        if not self.has_batch_path():
            return False
        corpus = context.corpus_for(self.domain)
        return corpus is not None and corpus.batch_handle() is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
