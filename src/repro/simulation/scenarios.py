"""Calibrated scenario presets.

A *scenario* is the full parameterization of a synthetic corpus.  The
``paper_*`` presets are calibrated from :mod:`repro.paperdata` so the
analysis pipeline recovers the published results; custom scenarios
support the ablation benches (remediation off, shifted fabric rollout,
different edge redundancy, drain policy off).

Construction lives behind the declarative spec layer: the public
constructors (``paper_scenario``, ``no_drain_policy_scenario``,
``shifted_fabric_scenario``, ``paper_backbone_scenario``) are thin
wrappers over the shipped preset files of :mod:`repro.scenarios`, so
every scenario — legacy call site or spec file — carries a spec digest
and materializes through one code path.  The calibration *math* stays
here, as the ``build_*``/``apply_*``/``shift_*`` builders that
:meth:`repro.scenarios.ScenarioSpec.materialize` composes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import paperdata
from repro.fleet.population import FleetModel, paper_fleet
from repro.incidents.sev import RootCause, Severity
from repro.stats.expfit import ExponentialModel
from repro.topology.backbone import Continent
from repro.topology.devices import DeviceType

# ---------------------------------------------------------------------------
# Intra data center scenario
# ---------------------------------------------------------------------------

#: Calibrated incident counts per (year, device type).  Jointly chosen
#: with the fleet populations (repro.fleet.population) to satisfy:
#: yearly totals growing 9.4x from 2011 to 2017 (Figure 8); the 2017
#: per-type shares of Figure 4/7 (Core 34%, RSW 28%, FSW 8%, ESW 3%,
#: SSW 2%); CSA incident rates of ~1.7 in 2013 and ~1.5 in 2014
#: (section 5.2); the CSA rate collapse after the 2015 drain-policy
#: change; fabric producing ~half the cluster incidents in 2017
#: (section 5.5); and the Figure 12 MTBI anchors.
_PAPER_INCIDENT_COUNTS: Dict[int, Dict[DeviceType, int]] = {
    2011: {DeviceType.CORE: 18, DeviceType.CSA: 8, DeviceType.CSW: 16,
           DeviceType.RSW: 22},
    2012: {DeviceType.CORE: 30, DeviceType.CSA: 14, DeviceType.CSW: 28,
           DeviceType.RSW: 36},
    2013: {DeviceType.CORE: 40, DeviceType.CSA: 68, DeviceType.CSW: 34,
           DeviceType.RSW: 38},
    2014: {DeviceType.CORE: 62, DeviceType.CSA: 90, DeviceType.CSW: 66,
           DeviceType.RSW: 82},
    2015: {DeviceType.CORE: 120, DeviceType.CSA: 30, DeviceType.CSW: 130,
           DeviceType.RSW: 166, DeviceType.FSW: 8, DeviceType.SSW: 2,
           DeviceType.ESW: 4},
    2016: {DeviceType.CORE: 160, DeviceType.CSA: 12, DeviceType.CSW: 120,
           DeviceType.RSW: 188, DeviceType.FSW: 30, DeviceType.SSW: 8,
           DeviceType.ESW: 10},
    2017: {DeviceType.CORE: 204, DeviceType.CSA: 5, DeviceType.CSW: 145,
           DeviceType.RSW: 168, DeviceType.FSW: 48, DeviceType.SSW: 12,
           DeviceType.ESW: 18},
}

#: Per-type severity mixes (SEV3, SEV2, SEV1).  Chosen so the pooled
#: 2017 mix reproduces Figure 4's N = 82% / 13% / 5%, the per-type
#: call-outs of section 5.3 (Core 81/15/4, RSW 85/10/5), and the
#: fabric-vs-cluster contrast (fewer SEV1s and SEV3s, more SEV2s).
_SEVERITY_MIX: Dict[DeviceType, Dict[Severity, float]] = {
    DeviceType.CORE: {Severity.SEV3: 0.81, Severity.SEV2: 0.15,
                      Severity.SEV1: 0.04},
    DeviceType.RSW: {Severity.SEV3: 0.85, Severity.SEV2: 0.10,
                     Severity.SEV1: 0.05},
    DeviceType.CSA: {Severity.SEV3: 0.78, Severity.SEV2: 0.14,
                     Severity.SEV1: 0.08},
    DeviceType.CSW: {Severity.SEV3: 0.80, Severity.SEV2: 0.13,
                     Severity.SEV1: 0.07},
    DeviceType.ESW: {Severity.SEV3: 0.80, Severity.SEV2: 0.17,
                     Severity.SEV1: 0.03},
    DeviceType.SSW: {Severity.SEV3: 0.80, Severity.SEV2: 0.17,
                     Severity.SEV1: 0.03},
    DeviceType.FSW: {Severity.SEV3: 0.80, Severity.SEV2: 0.17,
                     Severity.SEV1: 0.03},
}

#: p75 incident-resolution-time targets per year, in hours.  Section
#: 5.6 / Figures 13-14: p75IRT grew similarly across switch types from
#: roughly an hour toward hundreds of hours, in step with fleet size.
_P75_IRT_TARGETS_H: Dict[int, float] = {
    2011: 1.5, 2012: 4.0, 2013: 10.0, 2014: 30.0,
    2015: 80.0, 2016: 180.0, 2017: 300.0,
}

#: Lognormal shape of resolution times.  A heavy right tail is what
#: motivates the paper's use of p75 instead of the mean.
_IRT_SIGMA = 1.2


@dataclass
class IntraScenario:
    """Parameters of a seven-year intra data center corpus."""

    fleet: FleetModel
    incident_counts: Dict[int, Dict[DeviceType, int]]
    severity_mix: Dict[DeviceType, Dict[Severity, float]]
    root_cause_mix: Dict[RootCause, float]
    p75_irt_h: Dict[int, float]
    irt_sigma: float = _IRT_SIGMA
    fabric_year: int = paperdata.FABRIC_DEPLOYMENT_YEAR
    automated_repair_year: int = paperdata.AUTOMATED_REPAIR_YEAR
    repair_success: Dict[DeviceType, float] = field(default_factory=dict)
    seed: int = 1
    #: Digest of the :class:`repro.scenarios.ScenarioSpec` this
    #: scenario materialized from (None for hand-built scenarios).
    #: Excluded from equality: two identical corpora are the same
    #: corpus however they were described.
    spec_digest: Optional[str] = field(default=None, compare=False,
                                       repr=False)

    def __post_init__(self) -> None:
        for year, per_type in self.incident_counts.items():
            for device_type, count in per_type.items():
                if count < 0:
                    raise ValueError(
                        f"negative incident count for {device_type} in {year}"
                    )
                if (count > 0
                        and device_type.is_fabric
                        and year < self.fabric_year):
                    raise ValueError(
                        f"{device_type.value} incidents in {year} precede "
                        f"the fabric deployment year {self.fabric_year}"
                    )
        for device_type, mix in self.severity_mix.items():
            total = sum(mix.values())
            if not math.isclose(total, 1.0, rel_tol=1e-6):
                raise ValueError(
                    f"severity mix for {device_type.value} sums to {total}"
                )

    @property
    def years(self) -> List[int]:
        return sorted(self.incident_counts)

    def total_incidents(self, year: int) -> int:
        return sum(self.incident_counts.get(year, {}).values())

    def irt_mu(self, year: int) -> float:
        """Lognormal location whose p75 equals the year's target.

        For LogNormal(mu, sigma), the p-quantile is
        exp(mu + sigma * z_p) with z_0.75 ~ 0.67449.
        """
        target = self.p75_irt_h[year]
        return math.log(target) - 0.67449 * self.irt_sigma


def build_paper_intra(seed: int = 1, scale: float = 1.0) -> IntraScenario:
    """Construct the calibrated intra scenario (the raw builder).

    This is the calibration math behind the ``paper`` preset;
    :meth:`repro.scenarios.ScenarioSpec.materialize` starts every
    intra scenario here.  Call :func:`paper_scenario` instead unless
    you are the spec layer.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    counts = {
        year: {t: max(0, int(round(n * scale))) for t, n in per_type.items()}
        for year, per_type in _PAPER_INCIDENT_COUNTS.items()
    }
    return IntraScenario(
        fleet=paper_fleet(scale=scale),
        incident_counts=counts,
        severity_mix={t: dict(m) for t, m in _SEVERITY_MIX.items()},
        root_cause_mix=dict(
            zip(
                [RootCause(c) for c in paperdata.ROOT_CAUSE_DISTRIBUTION],
                paperdata.ROOT_CAUSE_DISTRIBUTION.values(),
            )
        ),
        p75_irt_h=dict(_P75_IRT_TARGETS_H),
        repair_success=dict(
            (DeviceType(t), r) for t, r in paperdata.REPAIR_RATIO.items()
        ),
        seed=seed,
    )


def apply_no_drain_policy(scenario: IntraScenario) -> IntraScenario:
    """Mutate a scenario so the 2015 drain-policy change never lands.

    Without drained maintenance the CSA incident stream keeps scaling
    with the 2013/2014 per-device rates instead of collapsing, so the
    CSA MTBI improvement of section 5.6 disappears.  Returns the same
    (mutated) scenario for chaining.
    """
    rate_2014 = (scenario.incident_counts[2014][DeviceType.CSA]
                 / scenario.fleet.count(2014, DeviceType.CSA))
    for year in (2015, 2016, 2017):
        population = scenario.fleet.count(year, DeviceType.CSA)
        scenario.incident_counts[year][DeviceType.CSA] = int(
            round(rate_2014 * population)
        )
    return scenario


def shift_fabric_rollout(
    base: IntraScenario, fabric_year: int
) -> IntraScenario:
    """A copy of ``base`` with the fabric rollout moved to ``fabric_year``.

    All fabric-device incidents (and populations) shift with the
    rollout; the Figure 9/10 inflection should follow.
    """
    offset = fabric_year - base.fabric_year
    if offset < 0:
        raise ValueError("the fabric cannot deploy before the study starts")
    counts: Dict[int, Dict[DeviceType, int]] = {}
    fabric_series = {
        t: [
            base.incident_counts[y].get(t, 0)
            for y in base.years
            if y >= base.fabric_year
        ]
        for t in (DeviceType.ESW, DeviceType.SSW, DeviceType.FSW)
    }
    for year in base.years:
        per_type = {
            t: n
            for t, n in base.incident_counts[year].items()
            if not t.is_fabric
        }
        since_rollout = year - fabric_year
        if since_rollout >= 0:
            for t, series in fabric_series.items():
                if since_rollout < len(series):
                    per_type[t] = series[since_rollout]
        counts[year] = per_type
    return IntraScenario(
        fleet=base.fleet,
        incident_counts=counts,
        severity_mix=base.severity_mix,
        root_cause_mix=base.root_cause_mix,
        p75_irt_h=base.p75_irt_h,
        fabric_year=fabric_year,
        repair_success=base.repair_success,
        seed=base.seed,
    )


# -- public constructors (routed through the spec layer) --------------------


def paper_scenario(seed: int = 1, scale: float = 1.0) -> IntraScenario:
    """The calibrated seven-year corpus matching the paper.

    ``scale`` multiplies incident counts and fleet sizes together so
    property tests can run small corpora through identical logic.
    Routed through the shipped ``paper`` preset of
    :mod:`repro.scenarios`, so the result carries its spec digest.
    """
    from repro.scenarios import preset

    return preset("paper").with_updates(
        seed=int(seed), scale=float(scale)
    ).materialize()


def no_drain_policy_scenario(seed: int = 1) -> IntraScenario:
    """Ablation: the 2015 drain-before-maintenance practice never lands.

    The ``no_drain_policy`` preset spec with the caller's seed; see
    :func:`apply_no_drain_policy` for the mechanics.
    """
    from repro.scenarios import preset

    return preset("no_drain_policy").with_updates(seed=int(seed)).materialize()


def shifted_fabric_scenario(fabric_year: int, seed: int = 1) -> IntraScenario:
    """Ablation: move the fabric rollout year.

    The ``shifted_fabric`` preset spec with the caller's rollout year
    and seed; see :func:`shift_fabric_rollout` for the mechanics.
    """
    from repro.scenarios import preset

    return preset("shifted_fabric").with_updates(
        seed=int(seed), fabric_year=int(fabric_year)
    ).materialize()


# ---------------------------------------------------------------------------
# Backbone scenario
# ---------------------------------------------------------------------------

#: Deterministic continent allocation for the default 100-edge backbone,
#: matching the Table 4 shares (37/33/14/10/4/2 percent) exactly.
_CONTINENT_EDGE_COUNTS: Dict[Continent, int] = {
    Continent.NORTH_AMERICA: 37,
    Continent.EUROPE: 33,
    Continent.ASIA: 14,
    Continent.SOUTH_AMERICA: 10,
    Continent.AFRICA: 4,
    Continent.AUSTRALIA: 2,
}

#: Continent reliability factors: multiply the edge percentile model so
#: the per-continent MTBF/MTTR means land on Table 4.  Factors are the
#: Table 4 value over the share-weighted global mean.
_CONTINENT_MTBF_FACTOR = {
    Continent.NORTH_AMERICA: 1.00,
    Continent.EUROPE: 1.09,
    Continent.ASIA: 1.27,
    Continent.SOUTH_AMERICA: 0.85,
    Continent.AFRICA: 2.91,
    Continent.AUSTRALIA: 0.88,
}
_CONTINENT_MTTR_FACTOR = {
    Continent.NORTH_AMERICA: 0.70,
    Continent.EUROPE: 0.95,
    Continent.ASIA: 0.55,
    Continent.SOUTH_AMERICA: 0.45,
    Continent.AFRICA: 1.10,
    Continent.AUSTRALIA: 0.10,
}


@dataclass
class BackboneScenario:
    """Parameters of an eighteen-month backbone ticket corpus."""

    continent_edges: Dict[Continent, int]
    links_per_edge: int
    window_h: float
    edge_mtbf_model: ExponentialModel
    edge_mttr_model: ExponentialModel
    vendor_mttr_model: ExponentialModel
    continent_mtbf_factor: Dict[Continent, float]
    continent_mttr_factor: Dict[Continent, float]
    independent_link_mtbf_h: float = 20_000.0
    flaky_vendor_mtbf_h: float = 24.0
    flaky_vendor_mttr_h: float = 1.0
    include_flaky_vendor: bool = True
    maintenance_fraction: float = 0.35
    #: One edge is slow to repair (section 6.1's 608-hour outlier: a
    #: remote edge whose weather, terrain, and travel time stretch
    #: every repair).  Set to 0 to disable.
    outlier_edge_mttr_h: float = 400.0
    #: Edge MTBF targets are capped at this fraction of the window: an
    #: edge whose true MTBF exceeds the observation window rarely
    #: registers the two failures an MTBF estimate needs, and the
    #: paper reports an MTBF for every edge (max 8025 h inside a
    #: 13140 h window).
    mtbf_cap_fraction: float = 0.6
    #: Corrects the small-sample bias of span-based MTBF estimation
    #: (span/(n-1) underestimates the true inter-arrival scale when an
    #: edge fails only a handful of times in the window).
    mtbf_calibration: float = 1.05
    #: Deterministic episode counts and mean-normalized durations.
    #: With only ~5-10 failures per edge in eighteen months, raw
    #: Poisson/exponential noise would swamp the percentile curves;
    #: the paper's curves are smooth empirical aggregates.
    low_noise: bool = True
    seed: int = 7
    #: Digest of the spec this scenario materialized from (None for
    #: hand-built scenarios); excluded from equality like the intra
    #: scenario's.
    spec_digest: Optional[str] = field(default=None, compare=False,
                                       repr=False)

    def __post_init__(self) -> None:
        if self.links_per_edge < 1:
            raise ValueError("edges need at least one link")
        if self.window_h <= 0:
            raise ValueError("the study window must be positive")
        if not 0.0 <= self.maintenance_fraction <= 1.0:
            raise ValueError("maintenance_fraction outside [0, 1]")

    @property
    def edge_count(self) -> int:
        return sum(self.continent_edges.values())


def build_paper_backbone(
    seed: int = 7, links_per_edge: int = 3
) -> BackboneScenario:
    """Construct the calibrated backbone scenario (the raw builder).

    Edge failure and recovery targets come straight from the published
    exponential models; one flaky vendor reproduces the 2-hour-MTBF
    outlier of section 6.2.  The spec layer starts every backbone
    scenario here; call :func:`paper_backbone_scenario` instead unless
    you are the spec layer.
    """
    return BackboneScenario(
        continent_edges=dict(_CONTINENT_EDGE_COUNTS),
        links_per_edge=links_per_edge,
        window_h=paperdata.BACKBONE_STUDY_MONTHS * 730.0,
        edge_mtbf_model=ExponentialModel(
            a=paperdata.EDGE_MTBF_MODEL["a"],
            b=paperdata.EDGE_MTBF_MODEL["b"],
            r2=paperdata.EDGE_MTBF_MODEL["r2"],
        ),
        edge_mttr_model=ExponentialModel(
            a=paperdata.EDGE_MTTR_MODEL["a"],
            b=paperdata.EDGE_MTTR_MODEL["b"],
            r2=paperdata.EDGE_MTTR_MODEL["r2"],
        ),
        vendor_mttr_model=ExponentialModel(
            a=paperdata.VENDOR_MTTR_MODEL["a"],
            b=paperdata.VENDOR_MTTR_MODEL["b"],
            r2=paperdata.VENDOR_MTTR_MODEL["r2"],
        ),
        continent_mtbf_factor=dict(_CONTINENT_MTBF_FACTOR),
        continent_mttr_factor=dict(_CONTINENT_MTTR_FACTOR),
        seed=seed,
    )


def paper_backbone_scenario(
    seed: int = 7, links_per_edge: int = 3
) -> BackboneScenario:
    """The calibrated eighteen-month backbone corpus.

    The ``paper_backbone`` preset spec with the caller's seed and
    redundancy; see :func:`build_paper_backbone` for the calibration.
    """
    from repro.scenarios import preset

    return preset("paper_backbone").with_updates(
        seed=int(seed), links_per_edge=int(links_per_edge)
    ).materialize()
