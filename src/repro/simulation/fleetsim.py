"""Live fleet simulation.

Where :mod:`repro.simulation.generator` generates a *statistically
calibrated* corpus top-down, this module simulates the operational
loop bottom-up, device by device, through the same substrates the
production stack wires together (sections 3.1 and 4.1):

* every network device gets a :class:`~repro.switchagent.agent.SwitchAgent`
  running a firmware image (FBOSS-style for fabric devices, a vendor
  stack for Cores/CSAs/CSWs);
* scheduled *fault events* crash, hang, or drift agents;
* the :class:`~repro.switchagent.monitor.HealthMonitor` sweeps on a
  fixed cadence, raising alarms;
* alarms feed the :class:`~repro.remediation.engine.RemediationEngine`;
  covered device types usually get repaired, everything else — and the
  unlucky fraction — escalates;
* escalations are authored as SEVs through the review workflow.

The emergent output is a SEV store whose per-type counts follow from
the injected fault rates and the remediation coverage, which is
exactly the paper's section 4.1 filtering argument made executable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.incidents.sev import RootCause, Severity
from repro.incidents.store import SEVStore
from repro.incidents.workflow import SEVAuthoringWorkflow, SEVDraft
from repro.remediation.engine import DeviceIssue, RemediationEngine
from repro.simulation.events import EventQueue
from repro.simulation.failures import poisson_times
from repro.switchagent.agent import AgentState, SwitchAgent
from repro.switchagent.firmware import fboss_image, vendor_image
from repro.switchagent.monitor import HealthMonitor
from repro.topology.devices import Device, DeviceType

#: Fault classes the simulator injects, with their agent effect.
_FAULTS = ("crash", "hang", "settings_drift")


@dataclass
class FleetSimReport:
    """Counters from one live simulation run."""

    faults_injected: int = 0
    alarms_raised: int = 0
    auto_repaired: int = 0
    escalated: int = 0
    sevs: int = 0
    per_type_faults: Dict[DeviceType, int] = field(default_factory=dict)

    @property
    def surfacing_ratio(self) -> float:
        """Fraction of injected faults that became SEVs."""
        if self.faults_injected == 0:
            return 0.0
        return self.sevs / self.faults_injected


class FleetSimulator:
    """Drives a built network through simulated operational time."""

    def __init__(
        self,
        network,
        engine: Optional[RemediationEngine] = None,
        fault_rate_per_device_h: float = 1e-3,
        sweep_interval_h: float = 0.25,
        expected_settings: Optional[Dict[str, str]] = None,
        impact_model=None,
        seed: int = 0,
    ) -> None:
        if fault_rate_per_device_h <= 0:
            raise ValueError("fault rate must be positive")
        if sweep_interval_h <= 0:
            raise ValueError("sweep interval must be positive")
        self._network = network
        self._rng = random.Random(seed)
        self._fault_rate = fault_rate_per_device_h
        self._sweep_interval = sweep_interval_h
        settings = dict(expected_settings or {"bgp": "v2"})
        self._expected = settings
        self.engine = engine or RemediationEngine(seed=seed)
        #: Optional repro.services.ImpactModel; when present, each
        #: SEV's service_impact field carries the assessed outcome.
        self.impact_model = impact_model
        self.monitor = HealthMonitor(
            heartbeat_timeout_h=sweep_interval_h * 2,
            expected_settings=settings,
            golden_settings=settings,
        )
        self.agents: Dict[str, SwitchAgent] = {}
        for device in network.devices.values():
            self.agents[device.name] = self._make_agent(device)
        self.store = SEVStore()
        self._workflow = SEVAuthoringWorkflow(self.store, id_prefix="live")
        self._issue_seq = 0
        self.report = FleetSimReport()

    def _make_agent(self, device: Device) -> SwitchAgent:
        image = (vendor_image() if device.device_type.vendor_sourced
                 else fboss_image())
        agent = SwitchAgent(device_name=device.name, firmware=image)
        agent.settings.update(self._expected)
        return agent

    # -- running ------------------------------------------------------------

    def run(self, hours: float) -> FleetSimReport:
        """Simulate ``hours`` of fleet operation."""
        if hours <= 0:
            raise ValueError("simulate a positive amount of time")
        queue = EventQueue()

        # Schedule faults per device.
        for name in sorted(self.agents):
            for t in poisson_times(self._fault_rate, 0.0, hours, self._rng):
                queue.schedule(t, "fault", payload=name,
                               action=self._inject_fault)
        # Schedule monitor sweeps.
        t = self._sweep_interval
        while t <= hours:
            queue.schedule(t, "sweep", action=self._sweep)
            t += self._sweep_interval

        queue.run_all()
        # Final engine drain: everything scheduled gets executed.
        self.engine.drain()
        self._author_pending_sevs(hours)
        return self.report

    # -- event handlers --------------------------------------------------------

    def _inject_fault(self, event) -> None:
        agent = self.agents[event.payload]
        if agent.state is not AgentState.RUNNING:
            return
        fault = self._rng.choice(_FAULTS)
        self.report.faults_injected += 1
        device_type = self._network.devices[event.payload].device_type
        self.report.per_type_faults[device_type] = (
            self.report.per_type_faults.get(device_type, 0) + 1
        )
        if fault == "crash":
            agent.state = AgentState.CRASHED
            agent.crash_count += 1
        elif fault == "hang":
            agent.state = AgentState.HUNG
        else:
            agent.settings["bgp"] = "drifted"

    def _sweep(self, event) -> None:
        now_h = event.at_h
        alarms = self.monitor.scan(list(self.agents.values()), now_h)
        self.report.alarms_raised += len(alarms)
        for alarm in alarms:
            agent = self.agents[alarm.device_name]
            device_type = self._network.devices[alarm.device_name].device_type
            if self.engine.covers(device_type):
                issue = DeviceIssue(
                    issue_id=f"live-{self._issue_seq:06d}",
                    device_name=alarm.device_name,
                    device_type=device_type,
                    raised_at_h=now_h,
                    kind=self.engine.sample_issue_kind(),
                )
                self._issue_seq += 1
                if self.engine.handle(issue):
                    self.monitor.repair(agent, alarm, now_h)
                    self.report.auto_repaired += 1
                else:
                    self.report.escalated += 1
                    # A human eventually fixes the device too.
                    self.monitor.repair(agent, alarm, now_h)
            else:
                self.report.escalated += 1
                self.engine.tickets.open_ticket(
                    alarm.device_name, device_type, now_h,
                    f"{alarm.kind.value} on uncovered device type",
                )
                self.monitor.repair(agent, alarm, now_h)

    # -- SEV authoring -------------------------------------------------------------

    def _author_pending_sevs(self, horizon_h: float) -> None:
        """Every escalation ticket becomes a reviewed SEV."""
        for ticket in self.engine.tickets:
            is_escalation = ("automated repair failed" in ticket.summary
                             or "uncovered device type" in ticket.summary)
            if not is_escalation:
                # Technician-notify playbooks (fan, liveness) are
                # remediations, not incidents (Table 1's counting rule).
                continue
            opened = ticket.opened_at_h
            duration = min(
                self._rng.expovariate(1.0 / 24.0) + 0.5, horizon_h
            )
            cause = (RootCause.CONFIGURATION
                     if "settings" in ticket.summary
                     or "config" in ticket.summary
                     else RootCause.HARDWARE)
            self._workflow.author_and_publish(SEVDraft(
                severity=self._rng.choices(
                    [Severity.SEV3, Severity.SEV2, Severity.SEV1],
                    weights=[0.82, 0.13, 0.05],
                )[0],
                device_name=ticket.device_name,
                opened_at_h=opened,
                resolved_at_h=opened + duration,
                root_causes=[cause],
                description=ticket.summary or "escalated device issue",
                service_impact=self._assess_impact(ticket.device_name),
            ))
            self.report.sevs += 1

    def _assess_impact(self, device_name: str) -> str:
        if self.impact_model is None:
            return "assessed by the responding engineer"
        assessment = self.impact_model.assess([device_name])
        if assessment.fully_masked:
            return "fully masked by redundancy and replication"
        affected = ", ".join(assessment.affected_services)
        return (f"{assessment.worst_kind.value} for {affected}")
