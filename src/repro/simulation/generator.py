"""The intra data center corpus generator.

Turns an :class:`~repro.simulation.scenarios.IntraScenario` into a
seven-year SEV corpus by way of the same substrates the production
pipeline uses: incidents are authored through the SEV workflow into
the SQLite store, and (in engine-coupled mode) raw device issues pass
through the automated remediation engine first, with only the
escalations becoming SEVs — exactly the filtering described in
section 4.1.
"""

from __future__ import annotations

import hashlib
import heapq
import math
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.incidents.sev import RootCause, Severity, SEVReport, hours_of_year
from repro.incidents.store import SEVStore
from repro.incidents.workflow import SEVAuthoringWorkflow, SEVDraft
from repro.remediation.engine import DeviceIssue, RemediationEngine
from repro.simulation.clock import HOURS_PER_YEAR, SimClock
from repro.simulation.failures import (
    deterministic_times,
    interleave_categories,
    largest_remainder_allocation,
)
from repro.simulation.scenarios import IntraScenario
from repro.topology.devices import DeviceType

_IMPACTS = {
    Severity.SEV3: "Redundant systems contained the failure; minimal "
                   "customer impact.",
    Severity.SEV2: "Regional network impairment; a feature degraded while "
                   "traffic shifted to alternate devices.",
    Severity.SEV1: "Widespread outage; major portions of the site were "
                   "unavailable until traffic was rerouted.",
}

#: Several report phrasings per cause: real postmortems do not share a
#: template, and the root-cause label audit should not be trivially
#: keyed to one sentence.
_DESCRIPTIONS = {
    RootCause.MAINTENANCE: (
        "Maintenance window went wrong while upgrading device "
        "software/firmware.",
        "A firmware update during a scheduled maintenance left the "
        "device in a bad state.",
        "Operators began a drain for routine maintenance and traffic "
        "shifted before the drain completed.",
    ),
    RootCause.HARDWARE: (
        "Faulty hardware module caused traffic to drop.",
        "A failing memory module corrupted forwarding state.",
        "A degraded optic flapped until the faulty port was replaced.",
    ),
    RootCause.CONFIGURATION: (
        "An unintended routing configuration blocked production traffic.",
        "A config change shipped a routing rule that dropped production "
        "prefixes.",
        "A load balancing policy concentrated traffic after a "
        "misconfigured update.",
    ),
    RootCause.BUG: (
        "A logical error in the switching software triggered a crash.",
        "A firmware bug caused a crash when the software disabled a "
        "port (hardware counter allocation failed).",
        "A race condition in the agent caused a crash under churn.",
    ),
    RootCause.ACCIDENTS: (
        "The wrong network device was power cycled during an operation.",
        "A technician accidentally disconnected the wrong device while "
        "recabling.",
        "An unintended action during a rack move took the device down.",
    ),
    RootCause.CAPACITY: (
        "Load exceeded provisioned capacity after a shift in traffic.",
        "Insufficient capacity planning left the device overloaded at "
        "peak; congestion followed.",
        "Web tier exhausted headroom when traffic shifted; high load "
        "persisted until capacity was added.",
    ),
    RootCause.UNDETERMINED: (
        "Transient, isolated incident; engineers reported on symptoms "
        "only.",
        "Symptoms cleared before a cause could be established.",
        "Brief connectivity blip; investigation was inconclusive.",
    ),
}


@dataclass
class RemediationMonthResult:
    """Outcome of a one-month remediation simulation (section 4.1.2/3)."""

    year: int
    month: int
    engine: RemediationEngine
    issues_per_type: Dict[DeviceType, int]

    def repair_ratio(self, device_type: DeviceType) -> float:
        return self.engine.stats(device_type).repair_ratio

    def escalation_one_in(self, device_type: DeviceType) -> float:
        return self.engine.stats(device_type).escalation_one_in


class IntraSimulator:
    """Generates the seven-year intra data center SEV corpus."""

    def __init__(self, scenario: IntraScenario) -> None:
        self._scenario = scenario
        self._rng = random.Random(scenario.seed)

    # -- corpus generation -------------------------------------------------

    def run(self, store: Optional[SEVStore] = None) -> SEVStore:
        """Generate the calibrated corpus: counts are exact.

        Every (year, type) cell of the scenario becomes exactly that
        many SEVs, with severities and root causes apportioned by
        largest remainder so the published mixes are met exactly up to
        integer rounding.
        """
        # ``is None``, not truthiness: an empty caller-built store
        # (e.g. a thread-shared one from repro.serve) has len() == 0
        # and must not be silently replaced.
        store = SEVStore() if store is None else store
        workflow = SEVAuthoringWorkflow(store)
        for year in self._scenario.years:
            for device_type in sorted(
                self._scenario.incident_counts[year],
                key=lambda t: t.value,
            ):
                count = self._scenario.incident_counts[year][device_type]
                self._emit_type_year(workflow, year, device_type, count)
        return store

    def run_with_engine(
        self,
        engine: RemediationEngine,
        store: Optional[SEVStore] = None,
    ) -> SEVStore:
        """Generate the corpus with remediation in the loop.

        For device types covered by automated repair (from the
        scenario's ``automated_repair_year`` on), the generator emits
        *raw issues* at the rate implied by the published repair
        ratios and lets the engine decide which escalate into SEVs.
        Disabling the engine therefore reproduces the pre-automation
        world where every issue needs a human — the ablation for the
        section 5.6 claim.
        """
        # ``is None``, not truthiness: an empty caller-built store
        # (e.g. a thread-shared one from repro.serve) has len() == 0
        # and must not be silently replaced.
        store = SEVStore() if store is None else store
        workflow = SEVAuthoringWorkflow(store)
        issue_seq = 0
        for year in self._scenario.years:
            for device_type in sorted(
                self._scenario.incident_counts[year],
                key=lambda t: t.value,
            ):
                count = self._scenario.incident_counts[year][device_type]
                success = self._scenario.repair_success.get(device_type)
                automated = (
                    success is not None
                    and year >= self._scenario.automated_repair_year
                    and device_type.supports_automated_repair
                )
                if not automated:
                    self._emit_type_year(workflow, year, device_type, count)
                    continue
                raw = int(round(count / max(1.0 - success, 1e-6)))
                times = deterministic_times(
                    raw, hours_of_year(year),
                    hours_of_year(year) + HOURS_PER_YEAR, self._rng,
                )
                escalated_times = []
                for t in times:
                    issue = DeviceIssue(
                        issue_id=f"iss-{issue_seq:07d}",
                        device_name=self._device_name(device_type, year),
                        device_type=device_type,
                        raised_at_h=t,
                        kind=engine.sample_issue_kind(),
                    )
                    issue_seq += 1
                    if not engine.handle(issue):
                        escalated_times.append(t)
                self._emit_at_times(
                    workflow, year, device_type, escalated_times
                )
        return store

    # -- the April 2018 remediation month (Table 1) --------------------------

    def simulate_remediation_month(
        self,
        engine: Optional[RemediationEngine] = None,
        year: int = 2018,
        month: int = 4,
        issues_per_type: Optional[Dict[DeviceType, int]] = None,
    ) -> RemediationMonthResult:
        """Run one month of raw issues through the remediation engine.

        Default volumes give every type enough issues for the Table 1
        ratios to resolve (RSW escalates ~1 in 397, so thousands of
        RSW issues are needed to observe the ratio).
        """
        engine = engine or RemediationEngine(
            success_ratio=self._scenario.repair_success or None,
            seed=self._scenario.seed,
        )
        issues_per_type = issues_per_type or {
            DeviceType.RSW: 4000,
            DeviceType.FSW: 2200,
            DeviceType.CORE: 400,
        }
        start_h, end_h = SimClock.month_window(year, month)
        issue_seq = 0
        for device_type in sorted(issues_per_type, key=lambda t: t.value):
            count = issues_per_type[device_type]
            for t in deterministic_times(count, start_h, end_h, self._rng):
                engine.submit(
                    DeviceIssue(
                        issue_id=f"month-{issue_seq:07d}",
                        device_name=self._device_name(device_type, year),
                        device_type=device_type,
                        raised_at_h=t,
                        kind=engine.sample_issue_kind(),
                    )
                )
                issue_seq += 1
        engine.drain()
        return RemediationMonthResult(
            year=year, month=month, engine=engine,
            issues_per_type=dict(issues_per_type),
        )

    # -- internals -----------------------------------------------------------

    def _emit_type_year(
        self,
        workflow: SEVAuthoringWorkflow,
        year: int,
        device_type: DeviceType,
        count: int,
    ) -> None:
        times = deterministic_times(
            count, hours_of_year(year),
            hours_of_year(year) + HOURS_PER_YEAR, self._rng,
        )
        self._emit_at_times(workflow, year, device_type, times)

    def _emit_at_times(
        self,
        workflow: SEVAuthoringWorkflow,
        year: int,
        device_type: DeviceType,
        times: List[float],
    ) -> None:
        count = len(times)
        if count == 0:
            return
        severities = interleave_categories(
            largest_remainder_allocation(
                count, self._scenario.severity_mix[device_type]
            ),
            self._rng,
        )
        causes = interleave_categories(
            largest_remainder_allocation(
                count, self._scenario.root_cause_mix
            ),
            self._rng,
        )
        mu = self._scenario.irt_mu(year)
        for t, severity, cause in zip(times, severities, causes):
            duration = math.exp(
                self._rng.gauss(mu, self._scenario.irt_sigma)
            )
            # Cap pathological tail draws at a year: the paper notes
            # occasional months-long recoveries, not multi-year ones.
            duration = min(duration, HOURS_PER_YEAR)
            draft = SEVDraft(
                severity=severity,
                device_name=self._device_name(device_type, year),
                opened_at_h=t,
                resolved_at_h=t + duration,
                root_causes=[cause],
                description=self._rng.choice(_DESCRIPTIONS[cause]),
                service_impact=_IMPACTS[severity],
            )
            workflow.author_and_publish(draft)

    def _device_name(self, device_type: DeviceType, year: int) -> str:
        return _random_device_name(
            self._rng, device_type, year, self._scenario.fabric_year
        )


def _random_device_name(
    rng: random.Random, device_type: DeviceType, year: int, fabric_year: int
) -> str:
    if device_type.is_fabric or (
        device_type is DeviceType.RSW
        and year >= fabric_year
        and rng.random() < 0.5
    ):
        unit = f"pod{rng.randrange(16)}"
    elif device_type is DeviceType.CORE:
        unit = "plane"
    else:
        unit = f"cluster{rng.randrange(16)}"
    dc = f"dc{rng.randrange(1, 13)}"
    region = f"region{rng.choice('abcdefgh')}"
    index = rng.randrange(1000)
    return f"{device_type.value}.{index:03d}.{unit}.{dc}.{region}"


# ---------------------------------------------------------------------------
# Per-cell streaming generation (repro.stream)
# ---------------------------------------------------------------------------
#
# The batch generator above consumes one RNG sequentially across the
# whole corpus, so its output cannot be partitioned across workers
# without changing.  The streaming/sharded path instead derives an
# independent RNG per (year, device type) cell from the scenario seed,
# which makes every cell reproducible in isolation: a shard can
# generate any subset of cells and the union is always the same
# corpus, regardless of how many workers produced it.  Cell counts,
# severity mixes, and root-cause mixes are identical to the batch
# generator's (both are largest-remainder exact), so count-based
# analyses agree exactly between the two corpora.


def cell_seed(seed: int, year: int, device_type: DeviceType) -> int:
    """A stable per-cell RNG seed (independent of PYTHONHASHSEED)."""
    key = f"{seed}:{year}:{device_type.value}".encode()
    return int.from_bytes(
        hashlib.blake2s(key, digest_size=8).digest(), "big"
    )


def cell_reports(
    scenario: IntraScenario, year: int, device_type: DeviceType
) -> List[SEVReport]:
    """Generate one (year, device type) cell of the corpus.

    Deterministic given (scenario.seed, year, device_type) alone, so
    cells can be generated in any order, in any process, and merged.
    Reports come back sorted by ``opened_at_h``.
    """
    count = scenario.incident_counts.get(year, {}).get(device_type, 0)
    if count == 0:
        return []
    rng = random.Random(cell_seed(scenario.seed, year, device_type))
    start_h = hours_of_year(year)
    times = deterministic_times(
        count, start_h, start_h + HOURS_PER_YEAR, rng
    )
    severities = interleave_categories(
        largest_remainder_allocation(
            count, scenario.severity_mix[device_type]
        ),
        rng,
    )
    causes = interleave_categories(
        largest_remainder_allocation(count, scenario.root_cause_mix),
        rng,
    )
    mu = scenario.irt_mu(year)
    reports = []
    for sequence, (t, severity, cause) in enumerate(
        zip(times, severities, causes)
    ):
        duration = min(
            math.exp(rng.gauss(mu, scenario.irt_sigma)), HOURS_PER_YEAR
        )
        reports.append(SEVReport(
            sev_id=f"strm-{year}-{device_type.value}-{sequence:05d}",
            severity=severity,
            device_name=_random_device_name(
                rng, device_type, year, scenario.fabric_year
            ),
            opened_at_h=t,
            resolved_at_h=t + duration,
            root_causes=(cause,),
            description=rng.choice(_DESCRIPTIONS[cause]),
            service_impact=_IMPACTS[severity],
        ))
    return reports


def scenario_cells(scenario: IntraScenario) -> List[tuple]:
    """All non-empty (year, device type) cells, in a canonical order."""
    return [
        (year, device_type)
        for year in scenario.years
        for device_type in sorted(
            scenario.incident_counts[year], key=lambda t: t.value
        )
        if scenario.incident_counts[year][device_type] > 0
    ]


def iter_scenario_reports(scenario: IntraScenario) -> Iterator[SEVReport]:
    """The whole streaming corpus as one chronological event feed.

    This is the "live feed" of the streaming runtime: SEVs arrive in
    ``opened_at_h`` order, exactly as a subscriber tailing the SEV
    database would see them.
    """
    streams = [
        iter(cell_reports(scenario, year, device_type))
        for year, device_type in scenario_cells(scenario)
    ]
    return heapq.merge(
        *streams, key=lambda r: (r.opened_at_h, r.sev_id)
    )
