"""The backbone corpus generator.

Generates eighteen months of fiber activity over a synthetic backbone
and feeds it through the production-shaped pipeline: every event
becomes a pair of structured vendor e-mails, which are parsed and
ingested into the ticket database exactly as section 4.3.2 describes.

Two failure processes produce the activity:

* **Edge-severing episodes** — correlated outages (a conduit cut plus
  the maintenance already in flight) that take *all* of an edge's
  links down simultaneously.  Their rate and duration are drawn from
  the published per-edge MTBF/MTTR exponential percentile models, so
  the monitor's derived edge failures recover Figures 15 and 16.
* **Independent link failures** — uncorrelated single-link events that
  add vendor-level noise without failing edges.

Vendor reliability emerges from which edges a vendor's links ride on
(reliable market, reliable links), reproducing the Figure 17/18
spread; one designated flaky vendor reproduces the 2-hour-MTBF
outlier of section 6.2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.backbone.emails import (
    format_completion_email,
    format_start_email,
    parse_vendor_email,
)
from repro.backbone.tickets import TicketDatabase
from repro.backbone.vendors import FiberVendor, MarketCompetition, VendorDirectory
from repro.simulation.failures import poisson_times
from repro.simulation.scenarios import BackboneScenario
from repro.topology.backbone import (
    BackboneTopology,
    Continent,
    EdgeNode,
    FiberLink,
)

#: Continent label used in the e-mails' Location header.
_CONTINENT_LOCATION = {
    Continent.NORTH_AMERICA: "North America",
    Continent.EUROPE: "Europe",
    Continent.ASIA: "Asia",
    Continent.SOUTH_AMERICA: "South America",
    Continent.AFRICA: "Africa",
    Continent.AUSTRALIA: "Australia",
}


@dataclass
class _PlannedTicket:
    link_id: str
    vendor: str
    start_h: float
    end_h: float
    maintenance: bool
    location: str


@dataclass
class BackboneCorpus:
    """The generated backbone world and its ticket database."""

    topology: BackboneTopology
    vendors: VendorDirectory
    tickets: TicketDatabase
    window_h: float
    edge_targets: Dict[str, Tuple[float, float]] = field(default_factory=dict)


class BackboneSimulator:
    """Generates the eighteen-month backbone ticket corpus."""

    def __init__(self, scenario: BackboneScenario) -> None:
        self._scenario = scenario
        self._rng = random.Random(scenario.seed)

    # -- world construction -------------------------------------------------

    def build_world(self) -> Tuple[BackboneTopology, VendorDirectory,
                                   Dict[str, Tuple[float, float]]]:
        """Build the topology, vendor directory, and per-edge targets.

        Each edge draws a percentile slot for MTBF and for MTTR; the
        model value at that slot, scaled by the continent factor, is
        the edge's target.  Each link gets its own vendor whose
        quality tracks the reliability of the edge it serves.
        """
        sc = self._scenario
        topology = BackboneTopology()
        names: List[str] = []
        index = 0
        for continent in sorted(sc.continent_edges, key=lambda c: c.value):
            for _ in range(sc.continent_edges[continent]):
                name = f"edge{index:03d}"
                topology.add_edge_node(
                    EdgeNode(name=name, continent=continent,
                             is_datacenter_region=(index % 3 == 0))
                )
                names.append(name)
                index += 1

        # Percentile slots are stratified *within* each continent: a
        # continent's k edges get evenly spread slots over [0, 1], so
        # its mean lands on (continent factor x model mean) regardless
        # of luck, while the global population still spans the model's
        # full range.
        edge_targets: Dict[str, Tuple[float, float]] = {}
        by_continent: Dict[Continent, List[str]] = {}
        for name in names:
            by_continent.setdefault(
                topology.edges[name].continent, []
            ).append(name)
        for continent, members in sorted(
            by_continent.items(), key=lambda kv: kv[0].value
        ):
            k = len(members)
            mtbf_slots = [(i + 0.5) / k for i in range(k)]
            mttr_slots = [(i + 0.5) / k for i in range(k)]
            self._rng.shuffle(mtbf_slots)
            self._rng.shuffle(mttr_slots)
            for name, p_mtbf, p_mttr in zip(members, mtbf_slots, mttr_slots):
                mtbf = (sc.edge_mtbf_model.predict(p_mtbf)
                        * sc.continent_mtbf_factor[continent])
                mtbf = min(mtbf, sc.mtbf_cap_fraction * sc.window_h)
                mttr = (sc.edge_mttr_model.predict(p_mttr)
                        * sc.continent_mttr_factor[continent])
                edge_targets[name] = (mtbf, mttr)

        # The slow-to-repair outlier: the worst-MTTR edge of the
        # largest continent gets the remote-island treatment.
        if sc.outlier_edge_mttr_h > 0:
            biggest = max(by_continent, key=lambda c: len(by_continent[c]))
            slowest = max(
                by_continent[biggest], key=lambda nm: edge_targets[nm][1]
            )
            edge_targets[slowest] = (
                edge_targets[slowest][0], sc.outlier_edge_mttr_h
            )

        vendors = VendorDirectory()
        link_seq = 0

        def new_vendor(quality: float, home: str) -> FiberVendor:
            mttr = sc.vendor_mttr_model.predict(min(max(quality, 0.0), 1.0))
            competition = (
                MarketCompetition.HIGH if quality < 1 / 3 else
                MarketCompetition.MEDIUM if quality < 2 / 3 else
                MarketCompetition.LOW
            )
            vendor = FiberVendor(
                name=f"vendor{len(vendors):03d}",
                mtbf_h=sc.independent_link_mtbf_h,
                mttr_h=mttr,
                competition=competition,
                home_market=home,
            )
            vendors.add(vendor)
            return vendor

        def add_link(a: str, b: str) -> None:
            nonlocal link_seq
            # Vendor quality tracks the MTTR percentile of the edge it
            # mostly serves: good markets, fast repairs.
            _, mttr_a = edge_targets[a]
            quality = min(mttr_a / (sc.edge_mttr_model.predict(1.0) + 1e-9),
                          1.0)
            vendor = new_vendor(
                quality, _CONTINENT_LOCATION[topology.edges[a].continent]
            )
            topology.add_link(
                FiberLink(
                    link_id=f"fbl-{link_seq:04d}", a=a, b=b,
                    vendor=vendor.name,
                    capacity_gbps=float(self._rng.choice([100, 200, 400])),
                )
            )
            link_seq += 1

        # A ring guarantees connectivity and gives every edge 2 links.
        for i, name in enumerate(names):
            add_link(name, names[(i + 1) % len(names)])
        # Chords until every edge has the scenario's minimum degree.
        while True:
            deficient = [
                nm for nm in names
                if len(topology.links_of_edge(nm)) < sc.links_per_edge
            ]
            if not deficient:
                break
            a = deficient[0]
            candidates = [nm for nm in names if nm != a]
            add_link(a, self._rng.choice(candidates))

        # The flaky outlier vendor operates one extra link on the first
        # edge; its link flaps but alone never fails the edge.
        if sc.include_flaky_vendor:
            flaky = FiberVendor(
                name="vendor-flaky",
                mtbf_h=sc.flaky_vendor_mtbf_h,
                mttr_h=sc.flaky_vendor_mttr_h,
                competition=MarketCompetition.LOW,
                home_market="remote",
            )
            vendors.add(flaky)
            topology.add_link(
                FiberLink(
                    link_id=f"fbl-{link_seq:04d}", a=names[0], b=names[1],
                    vendor=flaky.name, capacity_gbps=100.0,
                )
            )

        topology.validate()
        return topology, vendors, edge_targets

    # -- episode scheduling ------------------------------------------------

    def _episode_schedule(
        self, mtbf_h: float, mttr_h: float
    ) -> List[Tuple[float, float]]:
        """(start, duration) pairs for one edge's severing episodes.

        In low-noise mode the episode count is the expected count (with
        the fractional part resolved by one Bernoulli draw), start
        times are slot-jittered, and the exponential duration draws are
        rescaled so their sample mean equals the edge's MTTR target —
        giving smooth percentile curves like the paper's empirical
        aggregates.  Otherwise both processes are raw Poisson and
        exponential.
        """
        sc = self._scenario
        if not sc.low_noise:
            times = poisson_times(1.0 / mtbf_h, 0.0, sc.window_h, self._rng)
            return [
                (t, min(self._rng.expovariate(1.0 / mttr_h),
                        sc.window_h / 4))
                for t in times
            ]
        expected = sc.window_h / mtbf_h
        count = int(expected)
        if self._rng.random() < expected - count:
            count += 1
        # Every edge in the study registered enough failures for an
        # MTBF estimate (two starts), so the censored top of the
        # distribution still yields a point.
        count = max(count, 2)
        from repro.simulation.failures import deterministic_times

        times = deterministic_times(count, 0.0, sc.window_h, self._rng)
        durations = [self._rng.expovariate(1.0) for _ in times]
        if durations:
            mean = sum(durations) / len(durations)
            durations = [
                min(d / mean * mttr_h, sc.window_h / 4) for d in durations
            ]
        return list(zip(times, durations))

    # -- corpus generation ------------------------------------------------------

    def run(self, via_emails: bool = True) -> BackboneCorpus:
        """Generate the corpus.

        ``via_emails`` routes every event through the structured
        e-mail format and parser (the production path).  Setting it
        False inserts tickets directly, which is faster for property
        tests.
        """
        sc = self._scenario
        topology, vendors, edge_targets = self.build_world()
        planned: List[_PlannedTicket] = []

        # Edge-severing episodes.  Overlapping tickets on one link are
        # legal (a cut during someone else's maintenance window); the
        # ticket references keep start/completion pairing unambiguous.
        for edge_name in sorted(topology.edges):
            mtbf, mttr = edge_targets[edge_name]
            mtbf *= sc.mtbf_calibration
            links = topology.links_of_edge(edge_name)
            location = _CONTINENT_LOCATION[
                topology.edges[edge_name].continent
            ]
            last_end = 0.0
            for t, duration in self._episode_schedule(mtbf, mttr):
                # Keep an edge's own episodes disjoint so each remains
                # a distinct observed failure.
                t = max(t, last_end + 1.0)
                duration = min(duration, sc.window_h - t - 1.0)
                if duration <= 0:
                    continue
                last_end = t + duration
                for j, link in enumerate(links):
                    if j == 0:
                        # The final cut: exactly the severing interval,
                        # so the monitor's intersection recovers it.
                        start, end = t, t + duration
                    else:
                        start = max(
                            t - self._rng.uniform(0.0, 0.2 * duration + 0.5),
                            0.0,
                        )
                        end = (t + duration
                               + self._rng.uniform(0.0, 0.2 * duration + 0.5))
                    planned.append(
                        _PlannedTicket(
                            link_id=link.link_id,
                            vendor=link.vendor,
                            start_h=start,
                            end_h=end,
                            maintenance=(
                                j > 0
                                and self._rng.random() < sc.maintenance_fraction
                            ),
                            location=location,
                        )
                    )

        # Independent single-link failures (Poisson; adds vendor noise
        # but cannot fail an edge on its own).
        for link in sorted(topology.links.values(), key=lambda l: l.link_id):
            vendor = vendors.get(link.vendor)
            rate = 1.0 / vendor.mtbf_h
            location = _CONTINENT_LOCATION[topology.edges[link.a].continent]
            for t in poisson_times(rate, 0.0, sc.window_h, self._rng):
                duration = self._rng.expovariate(1.0 / vendor.mttr_h)
                duration = max(duration, 0.05)
                if t + duration >= sc.window_h:
                    continue
                planned.append(
                    _PlannedTicket(
                        link_id=link.link_id,
                        vendor=link.vendor,
                        start_h=t,
                        end_h=t + duration,
                        maintenance=self._rng.random()
                        < sc.maintenance_fraction / 2,
                        location=location,
                    )
                )

        tickets = TicketDatabase()
        if via_emails:
            notifications = []
            for ref, p in enumerate(planned):
                ticket_ref = f"wo-{ref:06d}"
                notifications.append(
                    (p.start_h, format_start_email(
                        p.link_id, p.vendor, p.start_h,
                        location=p.location,
                        estimated_duration_h=p.end_h - p.start_h,
                        maintenance=p.maintenance,
                        ticket_ref=ticket_ref,
                    ))
                )
                notifications.append(
                    (p.end_h, format_completion_email(
                        p.link_id, p.vendor, p.end_h,
                        maintenance=p.maintenance,
                        ticket_ref=ticket_ref,
                    ))
                )
            notifications.sort(key=lambda pair: pair[0])
            for _, raw in notifications:
                tickets.ingest(parse_vendor_email(raw))
        else:
            from repro.backbone.tickets import TicketType

            for p in sorted(planned, key=lambda q: q.start_h):
                tickets.add_completed(
                    p.link_id, p.vendor, p.start_h, p.end_h,
                    ticket_type=(
                        TicketType.MAINTENANCE if p.maintenance
                        else TicketType.REPAIR
                    ),
                    location=p.location,
                )

        return BackboneCorpus(
            topology=topology,
            vendors=vendors,
            tickets=tickets,
            window_h=sc.window_h,
            edge_targets=edge_targets,
        )
