"""Synthetic workload generation.

The paper's raw data — seven years of SEV reports and eighteen months
of fiber repair tickets — is proprietary.  This package generates a
synthetic corpus with the published statistical shape (populations,
per-type incident counts, severity and root-cause mixes, edge/vendor
MTBF and MTTR spreads) so the analysis pipeline in :mod:`repro.core`
can exercise every table and figure end to end.

Only this package and the benchmarks read :mod:`repro.paperdata`; the
analyses recover the numbers from the generated corpus.
"""

from repro.simulation.clock import SimClock
from repro.simulation.events import Event, EventQueue
from repro.simulation.failures import (
    deterministic_times,
    largest_remainder_allocation,
    poisson_times,
)
from repro.simulation.scenarios import (
    BackboneScenario,
    IntraScenario,
    no_drain_policy_scenario,
    paper_backbone_scenario,
    paper_scenario,
    shifted_fabric_scenario,
)
from repro.simulation.generator import (
    IntraSimulator,
    RemediationMonthResult,
    cell_reports,
    cell_seed,
    iter_scenario_reports,
    scenario_cells,
)
from repro.simulation.backbone_sim import BackboneCorpus, BackboneSimulator
from repro.simulation.fleetsim import FleetSimReport, FleetSimulator

__all__ = [
    "BackboneCorpus",
    "BackboneScenario",
    "BackboneSimulator",
    "Event",
    "EventQueue",
    "FleetSimReport",
    "FleetSimulator",
    "IntraScenario",
    "IntraSimulator",
    "RemediationMonthResult",
    "SimClock",
    "cell_reports",
    "cell_seed",
    "deterministic_times",
    "iter_scenario_reports",
    "largest_remainder_allocation",
    "no_drain_policy_scenario",
    "paper_backbone_scenario",
    "paper_scenario",
    "poisson_times",
    "scenario_cells",
    "shifted_fabric_scenario",
]
