"""Simulation clock.

Simulation time is hours since the study epoch (2011-01-01), matching
the timestamp convention of :mod:`repro.incidents.sev`.
"""

from __future__ import annotations

from repro.incidents.sev import EPOCH_YEAR, hours_of_year, year_of_hours

HOURS_PER_DAY = 24.0
HOURS_PER_YEAR = 8760.0
HOURS_PER_MONTH = HOURS_PER_YEAR / 12.0


class SimClock:
    """A monotonically advancing clock in hours since the epoch."""

    def __init__(self, start_h: float = 0.0) -> None:
        if start_h < 0:
            raise ValueError("the clock cannot start before the epoch")
        self._now_h = start_h

    @property
    def now_h(self) -> float:
        return self._now_h

    @property
    def year(self) -> int:
        return year_of_hours(self._now_h)

    def advance(self, hours: float) -> float:
        """Move time forward; rejects travel into the past."""
        if hours < 0:
            raise ValueError("the clock only moves forward")
        self._now_h += hours
        return self._now_h

    def advance_to(self, time_h: float) -> float:
        if time_h < self._now_h:
            raise ValueError(
                f"cannot rewind the clock from {self._now_h} to {time_h}"
            )
        self._now_h = time_h
        return self._now_h

    def advance_to_year(self, year: int) -> float:
        """Jump to the start of a calendar year."""
        return self.advance_to(hours_of_year(year))

    @staticmethod
    def month_window(year: int, month: int) -> tuple:
        """(start_h, end_h) of a calendar month, twelve equal slices.

        The study's month-scale windows (the April 2018 remediation
        slice of section 4.1.2) do not need calendar-exact month
        lengths, so a month is modeled as one twelfth of a year.
        """
        if not 1 <= month <= 12:
            raise ValueError(f"month {month} outside 1-12")
        start = hours_of_year(year, (month - 1) * HOURS_PER_MONTH)
        return start, start + HOURS_PER_MONTH

    def __repr__(self) -> str:
        return f"SimClock(now_h={self._now_h:.2f}, year={self.year})"


__all__ = [
    "EPOCH_YEAR",
    "HOURS_PER_DAY",
    "HOURS_PER_MONTH",
    "HOURS_PER_YEAR",
    "SimClock",
]
