"""Discrete-event queue.

A minimal, deterministic event queue: events fire in time order, ties
break by insertion order so runs with a fixed seed replay identically.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional


@dataclass(order=True)
class Event:
    """A scheduled event: fires at ``at_h`` with a payload."""

    at_h: float
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)
    action: Optional[Callable[["Event"], None]] = field(
        compare=False, default=None
    )


class EventQueue:
    """Time-ordered queue with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = itertools.count()

    def schedule(
        self,
        at_h: float,
        kind: str,
        payload: Any = None,
        action: Optional[Callable[[Event], None]] = None,
    ) -> Event:
        if at_h < 0:
            raise ValueError("events cannot precede the epoch")
        event = Event(at_h=at_h, seq=next(self._seq), kind=kind,
                      payload=payload, action=action)
        heapq.heappush(self._heap, event)
        return event

    def __len__(self) -> int:
        return len(self._heap)

    def peek(self) -> Optional[Event]:
        return self._heap[0] if self._heap else None

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)

    def run_until(self, end_h: float) -> List[Event]:
        """Fire (and return) every event scheduled before ``end_h``.

        Events with an ``action`` have it invoked; actions may schedule
        further events.
        """
        fired = []
        while self._heap and self._heap[0].at_h <= end_h:
            event = heapq.heappop(self._heap)
            if event.action is not None:
                event.action(event)
            fired.append(event)
        return fired

    def run_all(self) -> List[Event]:
        return self.run_until(float("inf"))
