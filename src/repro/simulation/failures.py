"""Failure-process primitives.

Two ways to place events in time:

* :func:`poisson_times` — a homogeneous Poisson process, the natural
  model for memoryless failures (the paper finds backbone time to
  failure "closely follows exponential functions");
* :func:`deterministic_times` — exactly ``n`` events jittered inside
  equal slots, used where the calibration must reproduce a published
  count exactly rather than in expectation.

Plus :func:`largest_remainder_allocation`, the integer apportionment
used to split a count across categories with published fractions, and
:func:`independent_failure_order` — the independent-draw failure order
that :mod:`repro.survivability`'s correlated generators must degrade
to bit-identically when every correlation knob sits at its default.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, Iterable, List, TypeVar

K = TypeVar("K", bound=Hashable)


def poisson_times(
    rate_per_h: float, start_h: float, end_h: float, rng: random.Random
) -> List[float]:
    """Event times of a Poisson process with the given rate."""
    if rate_per_h < 0:
        raise ValueError("rate must be non-negative")
    if end_h < start_h:
        raise ValueError("window must not be inverted")
    if rate_per_h == 0:
        return []
    times = []
    t = start_h
    while True:
        t += rng.expovariate(rate_per_h)
        if t >= end_h:
            return times
        times.append(t)


def deterministic_times(
    n: int, start_h: float, end_h: float, rng: random.Random
) -> List[float]:
    """Exactly ``n`` times, one uniform draw inside each equal slot.

    The slotting keeps inter-event gaps well behaved (no empty years,
    no same-hour pileups) while the jitter keeps the corpus from
    looking like a metronome.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if end_h < start_h:
        raise ValueError("window must not be inverted")
    if n == 0:
        return []
    slot = (end_h - start_h) / n
    return sorted(
        start_h + (i + rng.random()) * slot for i in range(n)
    )


def largest_remainder_allocation(
    total: int, weights: Dict[K, float]
) -> Dict[K, int]:
    """Apportion ``total`` across categories proportionally to weights.

    Uses the largest-remainder method so the integer counts sum to the
    total exactly and each category's share is within one unit of its
    exact proportional share.  Weights need not sum to one.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if not weights:
        raise ValueError("no categories to allocate across")
    weight_sum = sum(weights.values())
    if weight_sum <= 0:
        raise ValueError("weights must sum to a positive value")
    if any(w < 0 for w in weights.values()):
        raise ValueError("weights must be non-negative")

    quotas = {k: total * w / weight_sum for k, w in weights.items()}
    counts = {k: int(q) for k, q in quotas.items()}
    shortfall = total - sum(counts.values())
    by_remainder = sorted(
        weights, key=lambda k: (quotas[k] - counts[k]), reverse=True
    )
    for k in by_remainder[:shortfall]:
        counts[k] += 1
    return counts


def independent_failure_order(
    devices: Iterable[str], rng: random.Random
) -> List[str]:
    """A uniformly random failure order over ``devices``.

    The canonical independent-draw model: every permutation is equally
    likely, one Fisher-Yates pass over the sorted device names.  The
    sort makes the result a function of the device *set* and the RNG
    state alone, independent of input ordering — the exact sequence
    :func:`repro.survivability.correlated_failure_order` must reproduce
    when ``power_domain_size == 1`` and the storm/maintenance knobs are
    off (the degradation law the property suite pins).
    """
    order = sorted(devices)
    rng.shuffle(order)
    return order


def interleave_categories(
    counts: Dict[K, int], rng: random.Random
) -> List[K]:
    """A shuffled category sequence realizing exact counts."""
    sequence: List[K] = []
    for key, n in counts.items():
        if n < 0:
            raise ValueError("counts must be non-negative")
        sequence.extend([key] * n)
    rng.shuffle(sequence)
    return sequence
