"""Technician ticket queue.

When an automated repair fails — or the playbook itself ends at a
human (fan replacement, unreachable device) — the management software
opens a support ticket for investigation by a human (section 3.1).
The issues that reach this queue are the ones that can become network
incidents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.topology.devices import DeviceType


@dataclass
class TechnicianTicket:
    """A support ticket assigned to a human technician."""

    ticket_id: str
    device_name: str
    device_type: DeviceType
    opened_at_h: float
    summary: str
    closed_at_h: Optional[float] = None

    @property
    def open(self) -> bool:
        return self.closed_at_h is None

    def close(self, at_h: float) -> None:
        if not self.open:
            raise ValueError(f"ticket {self.ticket_id!r} is already closed")
        if at_h < self.opened_at_h:
            raise ValueError("a ticket cannot close before it opens")
        self.closed_at_h = at_h


class TicketQueue:
    """An append-only queue of technician tickets."""

    def __init__(self) -> None:
        self._tickets: List[TechnicianTicket] = []
        self._seq = 0

    def open_ticket(
        self,
        device_name: str,
        device_type: DeviceType,
        at_h: float,
        summary: str,
    ) -> TechnicianTicket:
        ticket = TechnicianTicket(
            ticket_id=f"task-{self._seq:06d}",
            device_name=device_name,
            device_type=device_type,
            opened_at_h=at_h,
            summary=summary,
        )
        self._seq += 1
        self._tickets.append(ticket)
        return ticket

    def __len__(self) -> int:
        return len(self._tickets)

    def __iter__(self) -> Iterator[TechnicianTicket]:
        return iter(self._tickets)

    def open_tickets(self) -> List[TechnicianTicket]:
        return [t for t in self._tickets if t.open]

    def for_type(self, device_type: DeviceType) -> List[TechnicianTicket]:
        return [t for t in self._tickets if t.device_type is device_type]
