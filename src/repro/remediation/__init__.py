"""Automated remediation substrate.

Section 4.1: starting in 2013 Facebook automated the remediation of
common failure modes for RSWs, later FSWs, and certain Core models.
The system shields the infrastructure from the vast majority of
issues: repairs are prioritized, scheduled, executed by software, and
escalated to a human technician only when software cannot fix them.
Incidents that survive this filter are what the intra data center
study analyzes.
"""

from repro.remediation.actions import RepairAction, RepairOutcome, execute_action
from repro.remediation.policy import RepairPolicy, ScheduledRepair
from repro.remediation.tickets import TechnicianTicket, TicketQueue
from repro.remediation.backlog import (
    RepairQueue,
    fleet_escalation_rate,
    technicians_needed,
)
from repro.remediation.engine import (
    DeviceIssue,
    IssueKind,
    RemediationEngine,
    RemediationStats,
)

__all__ = [
    "DeviceIssue",
    "IssueKind",
    "RemediationEngine",
    "RemediationStats",
    "RepairAction",
    "RepairQueue",
    "RepairOutcome",
    "RepairPolicy",
    "ScheduledRepair",
    "TechnicianTicket",
    "TicketQueue",
    "execute_action",
    "fleet_escalation_rate",
    "technicians_needed",
]
