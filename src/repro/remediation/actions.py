"""Repair actions (section 4.1.3).

The most frequent 90% of automated repairs, with their published
shares of all remediations:

* **port cycle** (50%) — device port ping failures repaired by turning
  the port off and on again;
* **config service restart** (32.4%) — configuration file backup
  failures repaired by restarting the configuration service and
  reestablishing a secure shell connection;
* **fan alert** (4.5%) — fan failures remediated by extracting failure
  details and alerting a technician;
* **liveness task** (4.0%) — device unreachable from the liveness
  monitor; details are collected and a task assigned to a technician.

The remaining tail is modeled as a generic ``OTHER`` action.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.topology.devices import Device


class RepairAction(enum.Enum):
    """Automated repair playbooks."""

    PORT_CYCLE = "port_cycle"
    CONFIG_SERVICE_RESTART = "config_backup"
    FAN_ALERT = "fan_alert"
    LIVENESS_TASK = "liveness_task"
    DEVICE_RESTART = "device_restart"
    STORAGE_RESTORE = "storage_restore"
    OTHER = "other"

    @property
    def needs_technician(self) -> bool:
        """Actions whose playbook ends at a human (fan, liveness)."""
        return self in (RepairAction.FAN_ALERT, RepairAction.LIVENESS_TASK)


@dataclass
class RepairOutcome:
    """Result of executing a repair action on a device."""

    action: RepairAction
    fixed: bool
    detail: str = ""
    technician_notified: bool = False


def execute_action(
    action: RepairAction, device: Optional[Device] = None
) -> RepairOutcome:
    """Execute one repair playbook against a device model.

    When ``device`` is None the action is treated as a pure bookkeeping
    repair (the simulator's fleet is statistical, not instantiated).
    """
    if action is RepairAction.PORT_CYCLE:
        if device is not None and device.ports:
            for port in device.ports:
                if not port.up:
                    port.cycle()
        return RepairOutcome(action, fixed=True,
                             detail="port turned off and on again")
    if action is RepairAction.CONFIG_SERVICE_RESTART:
        return RepairOutcome(
            action, fixed=True,
            detail="configuration service restarted; ssh reestablished",
        )
    if action is RepairAction.FAN_ALERT:
        return RepairOutcome(
            action, fixed=False, technician_notified=True,
            detail="failure details extracted; technician alerted to "
                   "examine the faulty fan",
        )
    if action is RepairAction.LIVENESS_TASK:
        return RepairOutcome(
            action, fixed=False, technician_notified=True,
            detail="device details collected; task assigned to technician",
        )
    if action is RepairAction.DEVICE_RESTART:
        if device is not None:
            device.undrain()
        return RepairOutcome(action, fixed=True, detail="device restarted")
    if action is RepairAction.STORAGE_RESTORE:
        return RepairOutcome(
            action, fixed=True,
            detail="persistent storage deleted and restored",
        )
    return RepairOutcome(action, fixed=True, detail="generic remediation")
