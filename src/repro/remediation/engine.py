"""The automated remediation engine (sections 3.1 and 4.1).

Centralized management software continuously checks for device
misbehavior; a skipped heartbeat or an inconsistent setting raises an
alarm.  The engine triages the issue, schedules a repair at the
assigned priority, executes the playbook, and — if software cannot fix
the problem — opens a support ticket for a human.  Issues the engine
cannot resolve are the candidates that become network incidents, which
is precisely the population the paper studies (section 4.1.3: "we
focus our analysis on the class of incidents that can not be solved by
automated repair").
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.remediation.actions import RepairAction, RepairOutcome, execute_action
from repro.remediation.policy import RepairPolicy, RepairSchedule, ScheduledRepair
from repro.remediation.tickets import TicketQueue
from repro.topology.devices import Device, DeviceType


class IssueKind(enum.Enum):
    """Detected issue classes, mapped to their repair playbooks."""

    PORT_PING_FAILURE = "port_ping_failure"
    CONFIG_BACKUP_FAILURE = "config_backup_failure"
    FAN_FAILURE = "fan_failure"
    LIVENESS_FAILURE = "liveness_failure"
    OTHER = "other"

    @property
    def action(self) -> RepairAction:
        return _ACTION_OF_KIND[self]


_ACTION_OF_KIND = {
    IssueKind.PORT_PING_FAILURE: RepairAction.PORT_CYCLE,
    IssueKind.CONFIG_BACKUP_FAILURE: RepairAction.CONFIG_SERVICE_RESTART,
    IssueKind.FAN_FAILURE: RepairAction.FAN_ALERT,
    IssueKind.LIVENESS_FAILURE: RepairAction.LIVENESS_TASK,
    IssueKind.OTHER: RepairAction.OTHER,
}

#: Issue mix observed across remediations (section 4.1.3).
DEFAULT_ISSUE_MIX: Dict[IssueKind, float] = {
    IssueKind.PORT_PING_FAILURE: 0.50,
    IssueKind.CONFIG_BACKUP_FAILURE: 0.324,
    IssueKind.FAN_FAILURE: 0.045,
    IssueKind.LIVENESS_FAILURE: 0.040,
    IssueKind.OTHER: 0.091,
}

#: Table 1 repair ratios: the fraction of issues remediation fixes.
DEFAULT_SUCCESS_RATIO: Dict[DeviceType, float] = {
    DeviceType.CORE: 0.75,
    DeviceType.FSW: 0.995,
    DeviceType.RSW: 0.997,
}


@dataclass
class DeviceIssue:
    """A detected device issue entering the remediation pipeline."""

    issue_id: str
    device_name: str
    device_type: DeviceType
    raised_at_h: float
    kind: IssueKind = IssueKind.OTHER
    device: Optional[Device] = None


@dataclass
class _Completed:
    issue: DeviceIssue
    priority: int
    wait_h: float
    repair_s: float
    outcome: RepairOutcome
    escalated: bool


@dataclass
class RemediationStats:
    """Aggregate statistics in the shape of Table 1."""

    issues: int = 0
    remediated: int = 0
    escalated: int = 0
    priorities: List[int] = field(default_factory=list)
    waits_h: List[float] = field(default_factory=list)
    repairs_s: List[float] = field(default_factory=list)

    @property
    def repair_ratio(self) -> float:
        if self.issues == 0:
            return 0.0
        return self.remediated / self.issues

    @property
    def avg_priority(self) -> float:
        if not self.priorities:
            return 0.0
        return sum(self.priorities) / len(self.priorities)

    @property
    def avg_wait_h(self) -> float:
        if not self.waits_h:
            return 0.0
        return sum(self.waits_h) / len(self.waits_h)

    @property
    def avg_repair_s(self) -> float:
        if not self.repairs_s:
            return 0.0
        return sum(self.repairs_s) / len(self.repairs_s)

    @property
    def escalation_one_in(self) -> float:
        """Issues per escalation: the section 4.1.2 "1 out of every N"."""
        if self.escalated == 0:
            return float("inf")
        return self.issues / self.escalated


class RemediationEngine:
    """Triage, schedule, repair, escalate.

    ``enabled`` exists for the ablation benches: with the engine
    disabled every issue escalates, modeling the pre-2013 fleet.
    """

    def __init__(
        self,
        policy: Optional[RepairPolicy] = None,
        success_ratio: Optional[Dict[DeviceType, float]] = None,
        issue_mix: Optional[Dict[IssueKind, float]] = None,
        tickets: Optional[TicketQueue] = None,
        enabled: bool = True,
        seed: int = 0,
    ) -> None:
        self._policy = policy or RepairPolicy(seed=seed)
        self._success = dict(success_ratio or DEFAULT_SUCCESS_RATIO)
        self._mix = dict(issue_mix or DEFAULT_ISSUE_MIX)
        self.tickets = tickets or TicketQueue()
        self.enabled = enabled
        self._rng = random.Random(seed)
        self._schedule = RepairSchedule()
        self._pending: Dict[str, Tuple[DeviceIssue, float]] = {}
        self._stats: Dict[DeviceType, RemediationStats] = {}
        self._completed: List[_Completed] = []

    # -- public API ----------------------------------------------------

    def sample_issue_kind(self) -> IssueKind:
        kinds = list(self._mix)
        weights = [self._mix[k] for k in kinds]
        return self._rng.choices(kinds, weights=weights)[0]

    def covers(self, device_type: DeviceType) -> bool:
        """Whether automated repair is deployed for this type."""
        return (
            self.enabled
            and device_type.supports_automated_repair
            and device_type in self._success
        )

    def submit(self, issue: DeviceIssue) -> None:
        """Triage an issue and schedule its repair (or escalate now)."""
        stats = self._stats_for(issue.device_type)
        stats.issues += 1
        if not self.covers(issue.device_type):
            self._escalate(issue, stats)
            return
        priority = self._policy.priority(issue.device_type)
        wait_h = self._policy.wait_hours(issue.device_type, priority)
        self._schedule.push(
            ScheduledRepair(
                priority=priority,
                ready_at_h=issue.raised_at_h + wait_h,
                issue_id=issue.issue_id,
                device_type=issue.device_type,
                action=issue.kind.action,
            )
        )
        self._pending[issue.issue_id] = (issue, wait_h)
        stats.priorities.append(priority)
        stats.waits_h.append(wait_h)

    def advance(self, now_h: float) -> List[RepairOutcome]:
        """Execute every repair whose scheduled time has arrived."""
        outcomes = []
        for scheduled in self._schedule.pop_ready(now_h):
            issue, wait_h = self._pending.pop(scheduled.issue_id)
            outcomes.append(self._execute(issue, scheduled, wait_h))
        return outcomes

    def drain(self) -> List[RepairOutcome]:
        """Execute everything still scheduled, regardless of time."""
        return self.advance(float("inf"))

    def handle(self, issue: DeviceIssue) -> bool:
        """Submit and immediately resolve one issue.

        Returns True when remediation fixed the issue, False when it
        escalated (and may become a network incident).
        """
        before = self._stats_for(issue.device_type).escalated
        self.submit(issue)
        self.drain()
        return self._stats_for(issue.device_type).escalated == before

    def stats(self, device_type: DeviceType) -> RemediationStats:
        return self._stats_for(device_type)

    @property
    def completed(self) -> List[_Completed]:
        return list(self._completed)

    # -- internals -------------------------------------------------------

    def _stats_for(self, device_type: DeviceType) -> RemediationStats:
        return self._stats.setdefault(device_type, RemediationStats())

    def _execute(
        self, issue: DeviceIssue, scheduled: ScheduledRepair, wait_h: float
    ) -> RepairOutcome:
        stats = self._stats_for(issue.device_type)
        repair_s = self._policy.repair_seconds(issue.device_type)
        stats.repairs_s.append(repair_s)
        outcome = execute_action(scheduled.action, issue.device)
        # Technician-terminated playbooks (fan, liveness) still count as
        # remediations: the automation handled the issue end to end.
        succeeded = self._rng.random() < self._success[issue.device_type]
        if outcome.fixed or outcome.technician_notified:
            if succeeded:
                stats.remediated += 1
                self._completed.append(
                    _Completed(issue, scheduled.priority, wait_h, repair_s,
                               outcome, escalated=False)
                )
                if outcome.technician_notified:
                    self.tickets.open_ticket(
                        issue.device_name, issue.device_type,
                        issue.raised_at_h + wait_h, outcome.detail,
                    )
                return outcome
        self._escalate(issue, stats, scheduled.priority, wait_h, repair_s,
                       outcome)
        return outcome

    def _escalate(
        self,
        issue: DeviceIssue,
        stats: RemediationStats,
        priority: int = 0,
        wait_h: float = 0.0,
        repair_s: float = 0.0,
        outcome: Optional[RepairOutcome] = None,
    ) -> None:
        stats.escalated += 1
        self.tickets.open_ticket(
            issue.device_name, issue.device_type, issue.raised_at_h,
            f"automated repair failed for {issue.kind.value}; "
            "human investigation required",
        )
        self._completed.append(
            _Completed(
                issue, priority, wait_h, repair_s,
                outcome or RepairOutcome(issue.kind.action, fixed=False),
                escalated=True,
            )
        )
