"""Repair prioritization and scheduling (section 4.1.3, Table 1).

Each repair is assigned a priority from 0 (highest) to 3 (lowest); the
scheduler uses the priority to decide when the repair runs.  Core
repairs get the highest priority and wait about four minutes; FSW and
RSW repairs average priorities 2.25 and 2.22 and wait up to three days
and one day respectively.  The repairs themselves are fast: about
30.1 s for Cores, 4.45 s for FSWs, 2.91 s for RSWs.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.topology.devices import DeviceType

#: Priority bounds: 0 is the highest priority, 3 the lowest.
HIGHEST_PRIORITY = 0
LOWEST_PRIORITY = 3


@dataclass(order=True)
class ScheduledRepair:
    """A repair waiting in the schedule, ordered by (priority, time)."""

    priority: int
    ready_at_h: float
    issue_id: str = field(compare=False)
    device_type: DeviceType = field(compare=False)
    action: "object" = field(compare=False, default=None)


@dataclass
class _TypePolicy:
    mean_priority: float
    mean_wait_h: float
    mean_repair_s: float


class RepairPolicy:
    """Assigns priorities, wait times, and repair durations by type.

    Parameterized with the Table 1 averages by default; priorities are
    drawn around the mean so that the *measured* average priority per
    type reproduces the published fractional values (2.25 means a mix
    of priority-2 and priority-3 repairs, not a fractional priority).
    """

    def __init__(
        self,
        per_type: Optional[Dict[DeviceType, _TypePolicy]] = None,
        seed: int = 0,
    ) -> None:
        self._rng = random.Random(seed)
        self._per_type = per_type or {
            DeviceType.CORE: _TypePolicy(0.0, 4 / 60.0, 30.1),
            DeviceType.FSW: _TypePolicy(2.25, 3 * 24.0, 4.45),
            DeviceType.RSW: _TypePolicy(2.22, 1 * 24.0, 2.91),
        }

    def covers(self, device_type: DeviceType) -> bool:
        return device_type in self._per_type

    def priority(self, device_type: DeviceType) -> int:
        """Integer priority whose expectation is the type's mean."""
        policy = self._policy(device_type)
        mean = policy.mean_priority
        lo = int(mean)
        if lo >= LOWEST_PRIORITY:
            return LOWEST_PRIORITY
        frac = mean - lo
        draw = lo + (1 if self._rng.random() < frac else 0)
        return max(HIGHEST_PRIORITY, min(LOWEST_PRIORITY, draw))

    def wait_hours(self, device_type: DeviceType, priority: int) -> float:
        """Scheduling delay: lower priority waits longer.

        The per-type mean wait is preserved; within a type the wait
        scales with the assigned priority (a priority-3 repair waits
        longer than a priority-2 one).
        """
        policy = self._policy(device_type)
        # Normalized so the expected scale over priority draws is 1.0
        # and the per-type mean wait is preserved exactly.
        scale = (priority + 0.5) / (policy.mean_priority + 0.5)
        return self._rng.expovariate(1.0 / (policy.mean_wait_h * scale))

    def repair_seconds(self, device_type: DeviceType) -> float:
        policy = self._policy(device_type)
        return self._rng.expovariate(1.0 / policy.mean_repair_s)

    def _policy(self, device_type: DeviceType) -> _TypePolicy:
        try:
            return self._per_type[device_type]
        except KeyError:
            raise KeyError(
                f"automated repair does not cover {device_type.value!r} "
                "devices (section 4.1.1 covers RSW, FSW, and some Cores)"
            ) from None


class RepairSchedule:
    """A priority queue of scheduled repairs."""

    def __init__(self) -> None:
        self._heap: List[ScheduledRepair] = []

    def push(self, repair: ScheduledRepair) -> None:
        heapq.heappush(self._heap, repair)

    def pop_ready(self, now_h: float) -> List[ScheduledRepair]:
        """Pop every repair whose scheduled time has arrived."""
        ready = []
        while self._heap and self._heap[0].ready_at_h <= now_h:
            ready.append(heapq.heappop(self._heap))
        return ready

    def __len__(self) -> int:
        return len(self._heap)

    def peek(self) -> Optional[ScheduledRepair]:
        return self._heap[0] if self._heap else None
