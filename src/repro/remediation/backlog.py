"""Repair-workforce queueing model (section 5.6).

"Facebook designs its switches to ensure their rate of failure does
not overwhelm engineers or automated repair systems."  This module
makes that design constraint checkable: an M/M/c queue of repair work
against a technician pool, with the standard steady-state results
(utilization, Erlang-C waiting probability, mean queue length and
wait), and the predicate the fleet designer cares about — is the pool
overwhelmed at this failure rate?
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class RepairQueue:
    """An M/M/c repair queue.

    ``arrival_per_h`` is the issue arrival rate; ``service_per_h`` is
    one technician's repair completion rate; ``technicians`` is c.
    """

    arrival_per_h: float
    service_per_h: float
    technicians: int

    def __post_init__(self) -> None:
        if self.arrival_per_h < 0:
            raise ValueError("arrival rate must be non-negative")
        if self.service_per_h <= 0:
            raise ValueError("service rate must be positive")
        if self.technicians < 1:
            raise ValueError("need at least one technician")

    @property
    def offered_load(self) -> float:
        """Erlang load a = lambda / mu."""
        return self.arrival_per_h / self.service_per_h

    @property
    def utilization(self) -> float:
        """rho = a / c; >= 1 means the queue grows without bound."""
        return self.offered_load / self.technicians

    @property
    def stable(self) -> bool:
        return self.utilization < 1.0

    def _p0(self) -> float:
        a, c = self.offered_load, self.technicians
        total = sum(a ** k / math.factorial(k) for k in range(c))
        total += (a ** c / math.factorial(c)) / (1.0 - self.utilization)
        return 1.0 / total

    def waiting_probability(self) -> float:
        """Erlang-C: probability an arriving issue must wait."""
        self._require_stable()
        a, c = self.offered_load, self.technicians
        return ((a ** c / math.factorial(c))
                / (1.0 - self.utilization) * self._p0())

    def mean_queue_length(self) -> float:
        self._require_stable()
        rho = self.utilization
        return self.waiting_probability() * rho / (1.0 - rho)

    def mean_wait_h(self) -> float:
        self._require_stable()
        if self.arrival_per_h == 0:
            return 0.0
        return self.mean_queue_length() / self.arrival_per_h

    def _require_stable(self) -> None:
        if not self.stable:
            raise ValueError(
                f"queue is unstable: utilization {self.utilization:.2f} "
                ">= 1 (the workforce is overwhelmed)"
            )


def technicians_needed(
    arrival_per_h: float,
    service_per_h: float,
    max_wait_h: float,
    ceiling: int = 10_000,
) -> int:
    """Smallest technician pool meeting a mean-wait target.

    The capacity-planning question behind the section 5.6 design rule:
    given the fleet's escalation rate and a target time-to-touch, how
    many humans does the repair organisation need?
    """
    if max_wait_h <= 0:
        raise ValueError("the wait target must be positive")
    c = max(1, math.ceil(arrival_per_h / service_per_h))
    while c <= ceiling:
        queue = RepairQueue(arrival_per_h, service_per_h, c)
        if queue.stable and queue.mean_wait_h() <= max_wait_h:
            return c
        c += 1
    raise ValueError(f"no pool up to {ceiling} meets the target")


def fleet_escalation_rate(
    incidents_per_year: int, hours_per_year: float = 8760.0
) -> float:
    """Convert a yearly incident count to an hourly arrival rate."""
    if incidents_per_year < 0:
        raise ValueError("incident count must be non-negative")
    return incidents_per_year / hours_per_year
