"""Central health monitoring of switch agents.

"Centralized management software continuously checks for device
misbehavior.  A skipped heartbeat or an inconsistent network setting
raise alarms for management software to handle" (section 3.1).  The
monitor scans a fleet of agents, raises alarms, converts them to
:class:`~repro.remediation.engine.DeviceIssue` submissions, and —
completing the loop — applies the escalating repair ladder:
restart interfaces, restart the device, delete and restore storage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.remediation.engine import DeviceIssue, IssueKind, RemediationEngine
from repro.switchagent.agent import AgentState, SwitchAgent
from repro.topology.naming import device_type_from_name


class AlarmKind(enum.Enum):
    SKIPPED_HEARTBEAT = "skipped_heartbeat"
    INCONSISTENT_SETTINGS = "inconsistent_settings"


@dataclass(frozen=True)
class HealthAlarm:
    """One raised alarm."""

    device_name: str
    kind: AlarmKind
    raised_at_h: float


class HealthMonitor:
    """Scans agents, raises alarms, drives the repair ladder."""

    def __init__(
        self,
        heartbeat_timeout_h: float = 0.5,
        expected_settings: Optional[Dict[str, str]] = None,
        golden_settings: Optional[Dict[str, str]] = None,
    ) -> None:
        if heartbeat_timeout_h <= 0:
            raise ValueError("heartbeat timeout must be positive")
        self.heartbeat_timeout_h = heartbeat_timeout_h
        self.expected_settings = dict(expected_settings or {})
        self._golden = dict(golden_settings or expected_settings or {})
        self.alarms: List[HealthAlarm] = []

    # -- scanning -----------------------------------------------------------

    def scan(self, agents: List[SwitchAgent], now_h: float) -> List[HealthAlarm]:
        """One monitoring sweep; returns the newly raised alarms."""
        raised = []
        for agent in agents:
            agent.heartbeat(now_h)
            if now_h - agent.last_heartbeat_h > self.heartbeat_timeout_h:
                raised.append(HealthAlarm(
                    agent.device_name, AlarmKind.SKIPPED_HEARTBEAT, now_h
                ))
            elif self.expected_settings and not agent.settings_consistent(
                self.expected_settings
            ):
                raised.append(HealthAlarm(
                    agent.device_name, AlarmKind.INCONSISTENT_SETTINGS,
                    now_h,
                ))
        self.alarms.extend(raised)
        return raised

    # -- the repair ladder ---------------------------------------------------

    def repair(self, agent: SwitchAgent, alarm: HealthAlarm,
               now_h: float) -> bool:
        """Apply the escalating repair ladder; True when healthy after.

        Section 3.1: "Repairs include restarting device interfaces,
        restarting the device itself, and deleting and restoring a
        device's persistent storage."
        """
        # Rung 1: interface restart only helps a running agent.
        if agent.state is AgentState.RUNNING:
            agent.restart_interfaces()
            if self._healthy(agent, now_h):
                return True
        # Rung 2: restart the device.
        agent.restart(now_h)
        if self._healthy(agent, now_h):
            return True
        # Rung 3: delete and restore persistent storage.
        agent.restore_storage(self._golden)
        agent.restart(now_h)
        return self._healthy(agent, now_h)

    def _healthy(self, agent: SwitchAgent, now_h: float) -> bool:
        if not agent.heartbeat(now_h):
            return False
        if self.expected_settings:
            return agent.settings_consistent(self.expected_settings)
        return True

    # -- engine integration -----------------------------------------------------

    def submit_alarm(self, engine: RemediationEngine, alarm: HealthAlarm,
                     issue_id: str) -> None:
        """Convert an alarm into a remediation-engine issue."""
        device_type = device_type_from_name(alarm.device_name)
        if device_type is None:
            raise ValueError(
                f"alarm for unclassifiable device {alarm.device_name!r}"
            )
        kind = (IssueKind.LIVENESS_FAILURE
                if alarm.kind is AlarmKind.SKIPPED_HEARTBEAT
                else IssueKind.CONFIG_BACKUP_FAILURE)
        engine.submit(DeviceIssue(
            issue_id=issue_id,
            device_name=alarm.device_name,
            device_type=device_type,
            raised_at_h=alarm.raised_at_h,
            kind=kind,
        ))
