"""The on-switch software agent.

Models the behaviors the central management software watches and the
repair actions it applies (section 3.1): heartbeats, a persistent
settings store, port enable/disable, interface restart, device
restart, and delete-and-restore of persistent storage.  Firmware bugs
manifest through the corresponding operations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

from repro.switchagent.firmware import FirmwareBug, FirmwareImage


class AgentState(enum.Enum):
    RUNNING = "running"
    HUNG = "hung"
    CRASHED = "crashed"


@dataclass
class SwitchAgent:
    """One switch's software agent."""

    device_name: str
    firmware: FirmwareImage
    state: AgentState = AgentState.RUNNING
    last_heartbeat_h: float = 0.0
    uptime_start_h: float = 0.0
    ports_enabled: Dict[int, bool] = field(default_factory=dict)
    settings: Dict[str, str] = field(default_factory=dict)
    settings_corrupt: bool = False
    crash_count: int = 0

    # -- liveness ----------------------------------------------------------

    def heartbeat(self, now_h: float) -> bool:
        """Emit a heartbeat; returns False when the agent cannot.

        The HEARTBEAT_WEDGE bug wedges the heartbeat thread after 30
        days of uptime.
        """
        if self.state is not AgentState.RUNNING:
            return False
        if (self.firmware.has_bug(FirmwareBug.HEARTBEAT_WEDGE)
                and now_h - self.uptime_start_h > 30 * 24.0):
            self.state = AgentState.HUNG
            return False
        self.last_heartbeat_h = now_h
        return True

    # -- port control --------------------------------------------------------

    def enable_port(self, index: int) -> None:
        self._require_running("enable port")
        self.ports_enabled[index] = True

    def disable_port(self, index: int) -> None:
        """Disable a port — the section 4.2 SEV3 crash path."""
        self._require_running("disable port")
        if self.firmware.has_bug(FirmwareBug.PORT_DISABLE_CRASH):
            self.state = AgentState.CRASHED
            self.crash_count += 1
            raise AgentCrash(
                f"{self.device_name}: hardware counter allocation failed "
                "while disabling a port; agent crashed"
            )
        self.ports_enabled[index] = False

    def restart_interfaces(self) -> None:
        """The lightest automated repair: bounce every port."""
        self._require_running("restart interfaces")
        for index in self.ports_enabled:
            self.ports_enabled[index] = True

    # -- settings ------------------------------------------------------------

    def write_setting(self, key: str, value: str) -> None:
        self._require_running("write setting")
        self.settings[key] = value

    def settings_consistent(self, expected: Dict[str, str]) -> bool:
        """Whether the device's settings match the fleet's intent.

        An inconsistent network setting is one of the two alarm
        triggers of section 3.1.
        """
        if self.settings_corrupt:
            return False
        return all(self.settings.get(k) == v for k, v in expected.items())

    # -- repairs ---------------------------------------------------------------

    def restart(self, now_h: float) -> None:
        """Restart the device (automated repair level 2).

        An unclean restart under the SETTINGS_CORRUPTION bug corrupts
        the persistent store — the failure the delete-and-restore
        repair exists for.
        """
        if (self.state is AgentState.CRASHED
                and self.firmware.has_bug(FirmwareBug.SETTINGS_CORRUPTION)):
            self.settings_corrupt = True
        self.state = AgentState.RUNNING
        self.uptime_start_h = now_h
        self.last_heartbeat_h = now_h

    def restore_storage(self, golden: Dict[str, str]) -> None:
        """Delete and restore persistent storage (repair level 3)."""
        self.settings = dict(golden)
        self.settings_corrupt = False

    def upgrade_firmware(self, image: FirmwareImage, now_h: float) -> None:
        """Apply a firmware upgrade: the routine-maintenance path."""
        if not image.newer_than(self.firmware):
            raise ValueError(
                f"{self.device_name}: refusing downgrade to "
                f"{image.version_string}"
            )
        self.firmware = image
        self.restart(now_h)

    # -- internals ---------------------------------------------------------------

    def _require_running(self, operation: str) -> None:
        if self.state is not AgentState.RUNNING:
            raise AgentUnavailable(
                f"{self.device_name}: cannot {operation}; agent is "
                f"{self.state.value}"
            )


class AgentCrash(RuntimeError):
    """The agent crashed mid-operation."""


class AgentUnavailable(RuntimeError):
    """The agent is not running."""
