"""Firmware images and their bugs.

Firmware matters to the study twice: *maintenance* (upgrading device
software and firmware) is the single largest determined root cause
(Table 2), and *bugs* — "logical errors in network device software or
firmware" — contribute 12%.  The section 4.2 SEV3 example is modeled
literally: "an attempt to allocate a new hardware counter failed,
triggering a hardware fault" whenever the software disabled a port.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class FirmwareBug(enum.Enum):
    """Latent firmware defects and the operation that triggers them."""

    #: Crash when disabling a port (the section 4.2 SEV3 example:
    #: hardware counter allocation fails on the port-disable path).
    PORT_DISABLE_CRASH = "port_disable_crash"
    #: Heartbeat thread wedges after long uptime.
    HEARTBEAT_WEDGE = "heartbeat_wedge"
    #: Persistent settings store corrupts on unclean restart.
    SETTINGS_CORRUPTION = "settings_corruption"


@dataclass(frozen=True)
class FirmwareImage:
    """A versioned firmware build for a switch platform."""

    name: str
    version: Tuple[int, int, int]
    vendor_stack: bool = False
    bugs: frozenset = frozenset()

    def __post_init__(self) -> None:
        if len(self.version) != 3 or any(v < 0 for v in self.version):
            raise ValueError(f"bad firmware version {self.version}")

    @property
    def version_string(self) -> str:
        return ".".join(str(v) for v in self.version)

    def has_bug(self, bug: FirmwareBug) -> bool:
        return bug in self.bugs

    def newer_than(self, other: "FirmwareImage") -> bool:
        return self.version > other.version


class FirmwareRegistry:
    """Tracks released images and which one each platform should run.

    The upgrade workflow mirrors the paper's maintenance story: the
    registry knows the *blessed* image per platform; agents running
    something older are upgrade candidates, and upgrading is exactly
    the "routine maintenance" that dominates Table 2 when it goes
    wrong.
    """

    def __init__(self) -> None:
        self._images: Dict[str, List[FirmwareImage]] = {}
        self._blessed: Dict[str, FirmwareImage] = {}

    def release(self, platform: str, image: FirmwareImage,
                bless: bool = True) -> None:
        history = self._images.setdefault(platform, [])
        if any(existing.version == image.version for existing in history):
            raise ValueError(
                f"{platform}: version {image.version_string} already released"
            )
        if history and not image.newer_than(history[-1]):
            raise ValueError(
                f"{platform}: releases must be monotonically newer "
                f"({image.version_string} after "
                f"{history[-1].version_string})"
            )
        history.append(image)
        if bless:
            self._blessed[platform] = image

    def blessed(self, platform: str) -> FirmwareImage:
        try:
            return self._blessed[platform]
        except KeyError:
            raise KeyError(f"no blessed image for platform {platform!r}") from None

    def history(self, platform: str) -> List[FirmwareImage]:
        return list(self._images.get(platform, []))

    def needs_upgrade(self, platform: str,
                      running: FirmwareImage) -> bool:
        return self.blessed(platform).newer_than(running)


def fboss_image(version: Tuple[int, int, int] = (1, 0, 0),
                bugs: Optional[frozenset] = None) -> FirmwareImage:
    """An FBOSS-style image: Facebook's own stack, no vendor firmware."""
    return FirmwareImage(
        name="fboss", version=version, vendor_stack=False,
        bugs=bugs or frozenset(),
    )


def vendor_image(version: Tuple[int, int, int] = (8, 2, 1),
                 bugs: Optional[frozenset] = None) -> FirmwareImage:
    """A proprietary third-party vendor image (Cores/CSAs, section 5.2)."""
    return FirmwareImage(
        name="vendor-os", version=version, vendor_stack=True,
        bugs=bugs or frozenset(),
    )
