"""Switch software substrate.

Section 3.1 describes the software side of the fabric: simple custom
switches running Facebook's own stack (FBOSS [5, 69]) under
centralized management software that "continuously checks for device
misbehavior.  A skipped heartbeat or an inconsistent network setting
raise alarms for management software to handle."  Repairs include
restarting device interfaces, restarting the device itself, and
deleting and restoring a device's persistent storage.

This package models that layer: the on-switch agent (heartbeats,
settings, persistent storage, port control), firmware images with
latent bugs (the section 4.2 SEV3: a crash when the software disables
a port), and the central health monitor that turns misbehavior into
:class:`~repro.remediation.engine.DeviceIssue` submissions.
"""

from repro.switchagent.agent import (
    AgentCrash,
    AgentState,
    AgentUnavailable,
    SwitchAgent,
)
from repro.switchagent.firmware import (
    FirmwareBug,
    FirmwareImage,
    FirmwareRegistry,
    fboss_image,
    vendor_image,
)
from repro.switchagent.monitor import AlarmKind, HealthAlarm, HealthMonitor

__all__ = [
    "AgentCrash",
    "AgentState",
    "AgentUnavailable",
    "AlarmKind",
    "FirmwareBug",
    "FirmwareImage",
    "FirmwareRegistry",
    "HealthAlarm",
    "HealthMonitor",
    "SwitchAgent",
    "fboss_image",
    "vendor_image",
]
