"""Switch reliability: MTBI and p75IRT (section 5.6, Figures 12-14)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.fleet.population import FleetModel, HOURS_PER_YEAR
from repro.incidents.query import SEVQuery
from repro.incidents.store import SEVStore
from repro.stats.mtbf import mtbi_device_hours
from repro.stats.mttr import p75
from repro.topology.devices import (
    CLUSTER_TYPES,
    FABRIC_TYPES,
    DeviceType,
    NetworkDesign,
)


@dataclass(frozen=True)
class SwitchReliability:
    """Per-year, per-type MTBI (device-hours) and p75IRT (hours)."""

    mtbi_h: Dict[int, Dict[DeviceType, float]]
    p75_irt_h: Dict[int, Dict[DeviceType, float]]

    @property
    def years(self) -> List[int]:
        return sorted(set(self.mtbi_h) | set(self.p75_irt_h))

    def mtbi(self, year: int, device_type: DeviceType) -> float:
        try:
            return self.mtbi_h[year][device_type]
        except KeyError:
            raise KeyError(
                f"no MTBI for {device_type.value} in {year}"
            ) from None

    def p75_irt(self, year: int, device_type: DeviceType) -> float:
        try:
            return self.p75_irt_h[year][device_type]
        except KeyError:
            raise KeyError(
                f"no p75IRT for {device_type.value} in {year}"
            ) from None

    def mtbi_spread_orders(self, year: int) -> float:
        """Orders of magnitude between the largest and smallest MTBI.

        Three orders in 2017 (Cores ~4e4 h, RSWs ~1e7 h).
        """
        values = [v for v in self.mtbi_h.get(year, {}).values()
                  if np.isfinite(v) and v > 0]
        if len(values) < 2:
            raise ValueError(f"not enough MTBI values in {year}")
        return float(np.log10(max(values) / min(values)))

    def design_mtbi(self, year: int, design: NetworkDesign) -> float:
        """Average MTBI of a design's device types (section 5.6's
        fabric 2,636,818 h versus cluster 822,518 h comparison)."""
        types = CLUSTER_TYPES if design is NetworkDesign.CLUSTER else FABRIC_TYPES
        if design is NetworkDesign.SHARED:
            raise ValueError("SHARED is not a design aggregate")
        values = [
            self.mtbi_h[year][t]
            for t in types
            if t in self.mtbi_h.get(year, {})
            and np.isfinite(self.mtbi_h[year][t])
        ]
        if not values:
            raise ValueError(f"no {design.value} MTBI values in {year}")
        return sum(values) / len(values)

    def fabric_advantage(self, year: int) -> float:
        """How many times less frequently fabric switches fail."""
        return (self.design_mtbi(year, NetworkDesign.FABRIC)
                / self.design_mtbi(year, NetworkDesign.CLUSTER))


def switch_reliability_from_counts(
    per_year: Dict[int, Dict[DeviceType, int]],
    fleet: FleetModel,
    p75_lookup: Callable[[int, DeviceType], Optional[float]],
) -> SwitchReliability:
    """The Figures 12/13 math over already-tallied counts.

    ``p75_lookup`` supplies the p75 resolution time for one
    (year, device type) cell, or None when the cell has no samples —
    exact order statistics on the SQL path, sketch quantiles on the
    streaming path (:mod:`repro.runtime`).
    """
    mtbi: Dict[int, Dict[DeviceType, float]] = {}
    p75_irt: Dict[int, Dict[DeviceType, float]] = {}
    for year, per_type in per_year.items():
        if year not in fleet.snapshots:
            continue
        mtbi[year] = {}
        p75_irt[year] = {}
        for device_type, incidents in per_type.items():
            population = fleet.count(year, device_type)
            if population == 0:
                continue
            mtbi[year][device_type] = mtbi_device_hours(
                population, incidents, HOURS_PER_YEAR
            )
            irt = p75_lookup(year, device_type)
            if irt is not None:
                p75_irt[year][device_type] = irt
    return SwitchReliability(mtbi_h=mtbi, p75_irt_h=p75_irt)


def switch_reliability(store: SEVStore, fleet: FleetModel) -> SwitchReliability:
    """Compute Figures 12 and 13 from the SEV database.

    MTBI follows the paper's device-hours convention: the type's
    population-hours in the year divided by its incident count.
    p75IRT is the 75th percentile of incident resolution times, which
    engineers document through to prevention (not just repair).
    """
    query = SEVQuery(store)
    durations = query.durations_by_cell()

    def exact_p75(year: int, device_type: DeviceType) -> Optional[float]:
        cell = durations.get((year, device_type))
        return p75(cell) if cell else None

    return switch_reliability_from_counts(
        query.count_by_year_and_type(), fleet, exact_p75
    )


def irt_vs_fleet_size(
    store: SEVStore, fleet: FleetModel
) -> List[Tuple[float, float]]:
    """Figure 14: (p75IRT across all types, normalized switches) pairs."""
    query = SEVQuery(store)
    points = []
    for year in fleet.years:
        durations = query.durations(year)
        if not durations:
            continue
        points.append((p75(durations), fleet.normalized_total(year)))
    return sorted(points)


def irt_fleet_correlation(store: SEVStore, fleet: FleetModel) -> float:
    """Pearson correlation of p75IRT with fleet size.

    The paper observes a positive correlation: larger networks
    increase the time humans take to resolve incidents.
    """
    points = irt_vs_fleet_size(store, fleet)
    if len(points) < 3:
        raise ValueError("need at least three yearly points to correlate")
    xs, ys = zip(*points)
    return float(np.corrcoef(xs, ys)[0, 1])
