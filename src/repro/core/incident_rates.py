"""Incident rates by device type (section 5.2, Figure 3).

The incident rate of a device type is ``r = i / n``: incidents caused
by the type over the active population of the type.  The rate can
exceed 1.0 — each device of the type caused more than one incident on
average — which is exactly what CSAs did in 2013 and 2014.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.fleet.population import FleetModel
from repro.incidents.query import SEVQuery
from repro.incidents.store import SEVStore
from repro.topology.devices import DeviceType


@dataclass(frozen=True)
class IncidentRateSeries:
    """Per-year, per-type incident rates (the Figure 3 series)."""

    rates: Dict[int, Dict[DeviceType, float]]

    @property
    def years(self) -> List[int]:
        return sorted(self.rates)

    def rate(self, year: int, device_type: DeviceType) -> float:
        return self.rates.get(year, {}).get(device_type, 0.0)

    def series(self, device_type: DeviceType) -> Dict[int, float]:
        return {year: self.rate(year, device_type) for year in self.years}

    def max_rate_type(self, year: int) -> DeviceType:
        per_type = self.rates.get(year, {})
        if not per_type:
            raise KeyError(f"no rates for year {year}")
        return max(per_type, key=lambda t: (per_type[t], t.value))

    def ordered_by_bisection(self, year: int) -> List[DeviceType]:
        """Device types present that year, highest bisection rank first.

        Section 5.2's first observation compares rates along this
        ordering (Cores and CSAs versus RSWs).
        """
        per_type = self.rates.get(year, {})
        return sorted(per_type, key=lambda t: -t.bisection_rank)


def rates_from_counts(
    counts: Dict[int, Dict[DeviceType, int]], fleet: FleetModel
) -> IncidentRateSeries:
    """The Figure 3 math over already-tallied per-year/type counts.

    Shared by the SQL path (:func:`incident_rates`) and the streaming
    fold path (:mod:`repro.runtime`): any backend that produces the
    same counts produces the same rates.
    """
    rates: Dict[int, Dict[DeviceType, float]] = {}
    for year in sorted(counts):
        if year not in fleet.snapshots:
            continue
        per_type: Dict[DeviceType, float] = {}
        for device_type in DeviceType:
            population = fleet.count(year, device_type)
            if population == 0:
                # A type absent from the fleet that year has no point
                # on the figure.
                continue
            per_type[device_type] = (
                counts.get(year, {}).get(device_type, 0) / population
            )
        rates[year] = per_type
    return IncidentRateSeries(rates=rates)


def incident_rates(store: SEVStore, fleet: FleetModel) -> IncidentRateSeries:
    """Compute Figure 3 from the SEV database and fleet populations."""
    return rates_from_counts(SEVQuery(store).count_by_year_and_type(), fleet)
