"""Backbone reliability analyses (section 6, Figures 15-18, Table 4)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.backbone.monitor import BackboneMonitor
from repro.stats.expfit import ExponentialModel
from repro.stats.intervals import OutageInterval
from repro.stats.mtbf import mtbf_from_intervals
from repro.stats.mttr import mean_time_to_recovery
from repro.stats.percentile import PercentileCurve, curve_of_means
from repro.topology.backbone import BackboneTopology, Continent

#: Outage intervals keyed by entity (edge name, vendor name, ...).
IntervalsByEntity = Dict[str, List[OutageInterval]]


@dataclass(frozen=True)
class BackboneReliability:
    """The four percentile curves of section 6 with their fitted models."""

    edge_mtbf: PercentileCurve
    edge_mttr: PercentileCurve
    vendor_mtbf: PercentileCurve
    vendor_mttr: PercentileCurve

    def edge_mtbf_model(self) -> ExponentialModel:
        """Figure 15's dotted line (462.88 * e^{2.3408 p} in the paper)."""
        return self.edge_mtbf.fit_exponential(strict=False)

    def edge_mttr_model(self) -> ExponentialModel:
        """Figure 16's dotted line (1.513 * e^{4.256 p})."""
        return self.edge_mttr.fit_exponential(strict=False)

    def vendor_mtbf_model(self) -> ExponentialModel:
        """Figure 17's dotted line (no constants published)."""
        return self.vendor_mtbf.fit_exponential(strict=False)

    def vendor_mttr_model(self) -> ExponentialModel:
        """Figure 18's dotted line (1.1345 * e^{4.7709 p})."""
        return self.vendor_mttr.fit_exponential(strict=False)


def reliability_from_outages(
    failures_by_edge: IntervalsByEntity,
    outages_by_vendor: IntervalsByEntity,
    window_h: float,
) -> BackboneReliability:
    """The section 6 curves from pre-derived outage interval views.

    The pure finalizer behind :func:`backbone_reliability`: the monitor
    path and the fold states of :mod:`repro.runtime` both reduce to
    these two views, so every execution backend runs the identical
    curve math.  Per-entity interval lists must be chronologically
    sorted (both producers guarantee it) so the float summations agree
    bit for bit.
    """
    if window_h <= 0:
        raise ValueError("the observation window must be positive")

    edge_mtbf: Dict[str, float] = {}
    edge_mttr: Dict[str, float] = {}
    for edge, intervals in failures_by_edge.items():
        edge_mtbf[edge] = mtbf_from_intervals(intervals, window_h)
        edge_mttr[edge] = mean_time_to_recovery(intervals)

    vendor_mtbf: Dict[str, float] = {}
    vendor_mttr: Dict[str, float] = {}
    for vendor, intervals in outages_by_vendor.items():
        vendor_mtbf[vendor] = mtbf_from_intervals(intervals, window_h)
        vendor_mttr[vendor] = mean_time_to_recovery(intervals)

    if not edge_mtbf:
        raise ValueError("no edge failures observed in the corpus")
    if not vendor_mtbf:
        raise ValueError("no link outages observed in the corpus")

    return BackboneReliability(
        edge_mtbf=curve_of_means(edge_mtbf),
        edge_mttr=curve_of_means(edge_mttr),
        vendor_mtbf=curve_of_means(vendor_mtbf),
        vendor_mttr=curve_of_means(vendor_mttr),
    )


def backbone_reliability(
    monitor: BackboneMonitor, window_h: float
) -> BackboneReliability:
    """Compute the section 6 curves from the ticket-derived outages.

    ``window_h`` is the observation window (eighteen months in the
    study); it provides the MTBF scale for entities observed failing
    only once.  Entities with no failures at all contribute no point,
    as in the paper.
    """
    return reliability_from_outages(
        monitor.failures_by_edge(), monitor.outages_by_vendor(), window_h
    )


@dataclass(frozen=True)
class ContinentRow:
    """One Table 4 row."""

    continent: Continent
    edge_count: int
    share: float
    mtbf_h: Optional[float]
    mttr_h: Optional[float]


def continent_table(
    monitor: BackboneMonitor,
    topology: BackboneTopology,
    window_h: float,
) -> List[ContinentRow]:
    """Compute Table 4: edge distribution and reliability by continent.

    Per-continent MTBF/MTTR are means over the continent's edges that
    failed at least once; continents whose edges never failed report
    None for both.
    """
    return continent_rows_from_failures(
        monitor.failures_by_edge(), topology, window_h
    )


def continent_rows_from_failures(
    failures: IntervalsByEntity,
    topology: BackboneTopology,
    window_h: float,
) -> List[ContinentRow]:
    """Table 4 from a pre-derived edge-failure view (pure finalizer)."""
    total_edges = len(topology.edges)
    rows = []
    for continent in Continent:
        edges = topology.edges_on(continent)
        if not edges:
            continue
        mtbfs, mttrs = [], []
        for edge in edges:
            intervals = failures.get(edge.name)
            if not intervals:
                continue
            mtbfs.append(mtbf_from_intervals(intervals, window_h))
            mttrs.append(mean_time_to_recovery(intervals))
        rows.append(
            ContinentRow(
                continent=continent,
                edge_count=len(edges),
                share=len(edges) / total_edges,
                mtbf_h=sum(mtbfs) / len(mtbfs) if mtbfs else None,
                mttr_h=sum(mttrs) / len(mttrs) if mttrs else None,
            )
        )
    rows.sort(key=lambda r: -r.share)
    return rows


@dataclass(frozen=True)
class RepairDurationSummary:
    """Repair-duration percentiles over a ticket corpus.

    The streamed counterpart of section 6's repair-time discussion:
    how long vendor work items take, overall and split by ticket type
    (unplanned repair vs planned maintenance).  ``by_type`` maps the
    :class:`~repro.backbone.tickets.TicketType` value to its ticket
    count.
    """

    tickets: int
    p50_h: float
    p90_h: float
    p99_h: float
    by_type: Dict[str, int]
