"""Remediation statistics (section 4.1, Table 1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.remediation.engine import RemediationEngine
from repro.topology.devices import DeviceType


@dataclass(frozen=True)
class RemediationRow:
    """One Table 1 row."""

    device_type: DeviceType
    repair_ratio: float
    avg_priority: float
    avg_wait_h: float
    avg_repair_s: float
    escalation_one_in: float


@dataclass(frozen=True)
class RemediationTable:
    """Table 1: automated remediation summarized per device type."""

    rows: Dict[DeviceType, RemediationRow]

    def row(self, device_type: DeviceType) -> RemediationRow:
        try:
            return self.rows[device_type]
        except KeyError:
            raise KeyError(
                f"no remediation data for {device_type.value}"
            ) from None

    def ordered(self) -> List[RemediationRow]:
        """Rows ordered as the paper prints them: Core, FSW, RSW."""
        order = (DeviceType.CORE, DeviceType.FSW, DeviceType.RSW)
        return [self.rows[t] for t in order if t in self.rows]

    def highest_priority_type(self) -> DeviceType:
        """The type repaired at the highest priority (Cores)."""
        return min(
            self.rows, key=lambda t: (self.rows[t].avg_priority, t.value)
        )


def remediation_table(engine: RemediationEngine) -> RemediationTable:
    """Summarize an engine's history into Table 1."""
    rows = {}
    for device_type in DeviceType:
        stats = engine.stats(device_type)
        if stats.issues == 0:
            continue
        rows[device_type] = RemediationRow(
            device_type=device_type,
            repair_ratio=stats.repair_ratio,
            avg_priority=stats.avg_priority,
            avg_wait_h=stats.avg_wait_h,
            avg_repair_s=stats.avg_repair_s,
            escalation_one_in=stats.escalation_one_in,
        )
    return RemediationTable(rows=rows)
