"""The paper's analyses.

One module per analysis section:

=========================  ==========================================
Module                     Paper artifact
=========================  ==========================================
``root_causes``            Table 2, Figure 2 (section 5.1)
``incident_rates``         Figure 3 (section 5.2)
``severity``               Figures 4-6 (section 5.3)
``distribution``           Figures 7-8 (section 5.4)
``design_comparison``      Figures 9-11 (section 5.5)
``switch_reliability``     Figures 12-14 (section 5.6)
``remediation_stats``      Table 1 (section 4.1)
``backbone_reliability``   Figures 15-18, Table 4 (section 6)
``conditional_risk``       capacity planning consumer (section 6.1)
=========================  ==========================================

Every function takes the substrate objects (SEV store, fleet model,
monitor, ...) and returns plain result dataclasses; nothing in here
reads :mod:`repro.paperdata`.
"""

from repro.core.root_causes import (
    RootCauseBreakdown,
    root_cause_breakdown,
    root_causes_by_device,
)
from repro.core.incident_rates import IncidentRateSeries, incident_rates
from repro.core.severity import (
    SeverityByDevice,
    SeverityRateSeries,
    sevs_per_employee,
    severity_by_device,
    severity_rates_over_time,
    switches_vs_employees,
)
from repro.core.distribution import (
    IncidentDistribution,
    incident_distribution,
    incident_growth,
)
from repro.core.design_comparison import (
    DesignComparison,
    design_comparison,
    population_breakdown,
)
from repro.core.switch_reliability import (
    SwitchReliability,
    irt_vs_fleet_size,
    switch_reliability,
)
from repro.core.remediation_stats import RemediationTable, remediation_table
from repro.core.backbone_reliability import (
    BackboneReliability,
    ContinentRow,
    RepairDurationSummary,
    backbone_reliability,
    continent_rows_from_failures,
    continent_table,
    reliability_from_outages,
)
from repro.core.conditional_risk import (
    CapacityReport,
    SurvivableCapacityRow,
    capacity_report,
    survivable_capacity,
)
from repro.core.fault_tolerance import (
    RedundancyMargin,
    redundancy_margin,
    redundancy_report,
)
from repro.core.reports import (
    BackboneStudyReport,
    IntraStudyReport,
    backbone_study_report,
    intra_study_report,
)

__all__ = [
    "BackboneReliability",
    "BackboneStudyReport",
    "CapacityReport",
    "ContinentRow",
    "DesignComparison",
    "IncidentDistribution",
    "IncidentRateSeries",
    "IntraStudyReport",
    "RedundancyMargin",
    "RemediationTable",
    "RepairDurationSummary",
    "RootCauseBreakdown",
    "SeverityByDevice",
    "SeverityRateSeries",
    "SurvivableCapacityRow",
    "SwitchReliability",
    "backbone_reliability",
    "backbone_study_report",
    "capacity_report",
    "continent_rows_from_failures",
    "continent_table",
    "design_comparison",
    "incident_distribution",
    "incident_growth",
    "incident_rates",
    "intra_study_report",
    "irt_vs_fleet_size",
    "population_breakdown",
    "redundancy_margin",
    "redundancy_report",
    "reliability_from_outages",
    "remediation_table",
    "root_cause_breakdown",
    "root_causes_by_device",
    "severity_by_device",
    "severity_rates_over_time",
    "sevs_per_employee",
    "survivable_capacity",
    "switch_reliability",
    "switches_vs_employees",
]
