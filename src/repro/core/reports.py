"""Full-study report composition.

Bundles every analysis into one structured object and renders it as a
text document — the terminal version of the paper's evaluation
sections.  Used by the CLI's ``report full`` and by downstream users
who want all artifacts from one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.backbone_reliability import BackboneReliability, ContinentRow
from repro.core.design_comparison import DesignComparison
from repro.core.distribution import IncidentDistribution
from repro.core.incident_rates import IncidentRateSeries
from repro.core.root_causes import RootCauseBreakdown
from repro.core.severity import SeverityByDevice, SeverityRateSeries
from repro.core.switch_reliability import SwitchReliability
from repro.fleet.population import FleetModel
from repro.incidents.sev import RootCause, Severity
from repro.incidents.store import SEVStore
from repro.topology.devices import DeviceType
from repro.viz.tables import format_table


@dataclass
class IntraStudyReport:
    """Every intra data center artifact from one corpus."""

    root_causes: RootCauseBreakdown
    rates: IncidentRateSeries
    severity: SeverityByDevice
    severity_over_time: SeverityRateSeries
    distribution: IncidentDistribution
    designs: DesignComparison
    switches: SwitchReliability
    growth: float
    last_year: int

    def render(self) -> str:
        sections: List[str] = []
        sections.append(format_table(
            ["Root cause", "Share"],
            [[c.value, f"{self.root_causes.fraction(c):.1%}"]
             for c in RootCause],
            title="Table 2: root causes",
        ))
        sections.append(format_table(
            ["Severity", "Share"],
            [[s.label, f"{self.severity.level_share(s):.1%}"]
             for s in sorted(Severity)],
            title=f"Figure 4: severity mix, {self.last_year}",
        ))
        sections.append(format_table(
            ["Device", "Incident share", "Rate/device", "MTBI (h)"],
            [
                [t.value,
                 f"{self.distribution.fraction_of_year(self.last_year, t):.1%}",
                 f"{self.rates.rate(self.last_year, t):.2g}",
                 (f"{self.switches.mtbi_h[self.last_year][t]:.3g}"
                  if t in self.switches.mtbi_h.get(self.last_year, {})
                  else "-")]
                for t in DeviceType
            ],
            title=f"Figures 3/7/12: device types in {self.last_year}",
        ))
        sections.append(
            f"Growth (Figure 8): {self.growth:.1f}x; cluster inflection "
            f"(Figure 9): {self.designs.cluster_inflection_year()}; "
            f"fabric/cluster {self.last_year}: "
            f"{self.designs.fabric_to_cluster_ratio(self.last_year):.0%}"
        )
        return "\n\n".join(sections)


@dataclass
class BackboneStudyReport:
    """Every inter data center artifact from one corpus.

    ``vendors`` and ``durations`` are the section 6.2 ride-alongs the
    runtime's backbone run adds (graded vendor scorecards and
    repair-duration percentiles); older call sites that build a report
    without them render the original two sections only.
    """

    reliability: BackboneReliability
    continents: List[ContinentRow]
    window_h: float
    vendors: Optional[dict] = None
    durations: Optional[object] = None

    def render(self) -> str:
        rel = self.reliability
        curves = format_table(
            ["Curve", "p50", "p90", "Fitted model"],
            [
                ["edge MTBF (h)", f"{rel.edge_mtbf.p50:.0f}",
                 f"{rel.edge_mtbf.p90:.0f}", str(rel.edge_mtbf_model())],
                ["edge MTTR (h)", f"{rel.edge_mttr.p50:.1f}",
                 f"{rel.edge_mttr.p90:.1f}", str(rel.edge_mttr_model())],
                ["vendor MTBF (h)", f"{rel.vendor_mtbf.p50:.0f}",
                 f"{rel.vendor_mtbf.p90:.0f}",
                 str(rel.vendor_mtbf_model())],
                ["vendor MTTR (h)", f"{rel.vendor_mttr.p50:.1f}",
                 f"{rel.vendor_mttr.p90:.1f}",
                 str(rel.vendor_mttr_model())],
            ],
            title="Figures 15-18: backbone reliability",
        )
        continents = format_table(
            ["Continent", "Share", "MTBF (h)", "MTTR (h)"],
            [[r.continent.value, f"{r.share:.0%}",
              f"{r.mtbf_h:.0f}" if r.mtbf_h else "-",
              f"{r.mttr_h:.1f}" if r.mttr_h else "-"]
             for r in self.continents],
            title="Table 4: edges by continent",
        )
        sections = [curves, continents]
        if self.vendors:
            from repro.viz.ticket_view import scorecard_table

            sections.append(scorecard_table(self.vendors))
        if self.durations is not None:
            from repro.viz.ticket_view import duration_table

            sections.append(duration_table(self.durations))
        return "\n\n".join(sections)


def intra_study_report(
    store: SEVStore,
    fleet: FleetModel,
    year: Optional[int] = None,
    backend: str = "batch",
    cache=None,
) -> IntraStudyReport:
    """Run every intra data center analysis over one corpus.

    Composition and execution live in :mod:`repro.runtime`; this entry
    point keeps its historical signature and default batch semantics.
    ``backend`` selects the execution strategy (``batch`` / ``stream``
    / ``sharded``) and ``cache`` an optional
    :class:`repro.runtime.ResultCache` for fingerprint-keyed reuse.
    """
    # Imported lazily: repro.runtime folds with these report dataclasses.
    from repro.runtime import RunContext, run_intra_report

    if not store.years():
        raise ValueError("the SEV corpus is empty")
    context = RunContext(store=store, fleet=fleet, year=year)
    return run_intra_report(context, backend=backend, cache=cache)


def backbone_study_report(monitor, topology, window_h: float
                          ) -> BackboneStudyReport:
    """Run every backbone analysis over one ticket corpus."""
    from repro.runtime import RunContext, run_backbone_report

    context = RunContext(
        monitor=monitor, topology=topology, window_h=window_h
    )
    return run_backbone_report(context)
