"""Incident distribution over device types and time (section 5.4,
Figures 7 and 8)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.incidents.query import SEVQuery
from repro.incidents.store import SEVStore
from repro.topology.devices import DeviceType


@dataclass(frozen=True)
class IncidentDistribution:
    """Per-year incident counts by device type with both of the
    paper's normalizations."""

    counts: Dict[int, Dict[DeviceType, int]]
    baseline_year: int

    @property
    def years(self) -> List[int]:
        return sorted(self.counts)

    def count(self, year: int, device_type: DeviceType) -> int:
        return self.counts.get(year, {}).get(device_type, 0)

    def year_total(self, year: int) -> int:
        return sum(self.counts.get(year, {}).values())

    def fraction_of_year(self, year: int, device_type: DeviceType) -> float:
        """Figure 7: share of the year's incidents by type."""
        total = self.year_total(year)
        if total == 0:
            return 0.0
        return self.count(year, device_type) / total

    def normalized(self, year: int, device_type: DeviceType) -> float:
        """Figure 8: counts normalized to the fixed baseline total.

        The paper uses the total number of SEVs in 2017 as the fixed
        baseline so per-type growth stays visible across years.
        """
        baseline = self.year_total(self.baseline_year)
        if baseline == 0:
            raise ValueError(
                f"baseline year {self.baseline_year} has no incidents"
            )
        return self.count(year, device_type) / baseline

    def top_contributors(self, year: int, k: int = 2) -> List[DeviceType]:
        """The device types with the most incidents in a year.

        Section 5.4's headline: Cores (~34%) and RSWs (~28%) in 2017.
        """
        per_type = self.counts.get(year, {})
        ordered = sorted(per_type, key=lambda t: (-per_type[t], t.value))
        return ordered[:k]


def incident_distribution(
    store: SEVStore, baseline_year: int = 2017
) -> IncidentDistribution:
    """Compute Figures 7/8 from the SEV database."""
    return IncidentDistribution(
        counts=SEVQuery(store).count_by_year_and_type(),
        baseline_year=baseline_year,
    )


def growth_from_totals(
    totals: Dict[int, int], first_year: int, last_year: int
) -> float:
    """The Figure 8 growth math over already-tallied yearly totals."""
    first = totals.get(first_year, 0)
    if first == 0:
        raise ValueError(f"no incidents in the base year {first_year}")
    return totals.get(last_year, 0) / first


def incident_growth(store: SEVStore, first_year: int, last_year: int) -> float:
    """Total SEV growth factor between two years (9.4x in the paper)."""
    return growth_from_totals(
        SEVQuery(store).count_by_year(), first_year, last_year
    )
