"""Cluster-versus-fabric comparison (section 5.5, Figures 9-11)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.fleet.population import FleetModel
from repro.incidents.query import SEVQuery
from repro.incidents.store import SEVStore
from repro.topology.devices import (
    CLUSTER_TYPES,
    FABRIC_TYPES,
    DeviceType,
    NetworkDesign,
)


@dataclass(frozen=True)
class DesignComparison:
    """Per-year incident counts aggregated by network design."""

    counts: Dict[int, Dict[NetworkDesign, int]]
    baseline_year: int
    fleet: FleetModel

    @property
    def years(self) -> List[int]:
        return sorted(self.counts)

    def count(self, year: int, design: NetworkDesign) -> int:
        return self.counts.get(year, {}).get(design, 0)

    def normalized(self, year: int, design: NetworkDesign) -> float:
        """Figure 9: design incidents over the fixed baseline total."""
        baseline = sum(self.counts.get(self.baseline_year, {}).values())
        if baseline == 0:
            raise ValueError(
                f"baseline year {self.baseline_year} has no design incidents"
            )
        return self.count(year, design) / baseline

    def per_device(self, year: int, design: NetworkDesign) -> float:
        """Figure 10: design incidents over the design's population."""
        population = self.fleet.design_count(year, design)
        count = self.count(year, design)
        if population == 0:
            if count == 0:
                return 0.0
            raise ValueError(
                f"{count} {design.value} incidents in {year} with no "
                f"{design.value} devices in the fleet"
            )
        return count / population

    def fabric_to_cluster_ratio(self, year: int) -> float:
        """Fabric incidents as a fraction of cluster incidents
        (~50% in 2017, section 5.5)."""
        cluster = self.count(year, NetworkDesign.CLUSTER)
        if cluster == 0:
            raise ValueError(f"no cluster incidents in {year}")
        return self.count(year, NetworkDesign.FABRIC) / cluster

    def cluster_inflection_year(self) -> int:
        """The year cluster incidents peaked (the Figure 9 inflection,
        2015 in the paper -- when fabric deployment began)."""
        series = {
            y: self.count(y, NetworkDesign.CLUSTER) for y in self.years
        }
        if not series:
            raise ValueError("empty design comparison")
        return max(series, key=lambda y: (series[y], -y))


def design_counts_from_type_counts(
    per_year: Dict[int, Dict[DeviceType, int]],
) -> Dict[int, Dict[NetworkDesign, int]]:
    """Aggregate per-type counts into the paper's design buckets.

    Only design-specific device types participate (CSA/CSW for
    cluster, ESW/SSW/FSW for fabric); Cores and RSWs are shared by
    both designs and excluded, as in the paper's definition.
    """
    counts: Dict[int, Dict[NetworkDesign, int]] = {}
    for year, per_type in per_year.items():
        counts[year] = {
            NetworkDesign.CLUSTER: sum(
                per_type.get(t, 0) for t in CLUSTER_TYPES
            ),
            NetworkDesign.FABRIC: sum(
                per_type.get(t, 0) for t in FABRIC_TYPES
            ),
        }
    return counts


def design_comparison(
    store: SEVStore, fleet: FleetModel, baseline_year: int = 2017
) -> DesignComparison:
    """Compute Figures 9/10: aggregate incidents by network design."""
    return DesignComparison(
        counts=design_counts_from_type_counts(
            SEVQuery(store).count_by_year_and_type()
        ),
        baseline_year=baseline_year,
        fleet=fleet,
    )


def population_breakdown(fleet: FleetModel) -> Dict[int, Dict[DeviceType, float]]:
    """Figure 11: per-year fraction of the fleet by device type."""
    out: Dict[int, Dict[DeviceType, float]] = {}
    for year in fleet.years:
        out[year] = {
            device_type: fleet.fraction(year, device_type)
            for device_type in DeviceType
            if fleet.count(year, device_type) > 0
        }
    return out
