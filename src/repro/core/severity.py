"""Incident severity analyses (section 5.3, Figures 4-6)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.fleet.employees import EmployeeModel
from repro.fleet.population import FleetModel
from repro.incidents.query import SEVQuery
from repro.incidents.sev import Severity
from repro.incidents.store import SEVStore
from repro.topology.devices import (
    CLUSTER_TYPES,
    FABRIC_TYPES,
    DeviceType,
)


@dataclass(frozen=True)
class SeverityByDevice:
    """Figure 4: how each severity level distributes across devices."""

    counts: Dict[Severity, Dict[DeviceType, int]]
    year: int

    def level_total(self, severity: Severity) -> int:
        return sum(self.counts.get(severity, {}).values())

    @property
    def total(self) -> int:
        return sum(self.level_total(s) for s in Severity)

    def level_share(self, severity: Severity) -> float:
        """The N=... annotations of Figure 4 (82/13/5 in the paper)."""
        total = self.total
        if total == 0:
            return 0.0
        return self.level_total(severity) / total

    def device_fraction(
        self, severity: Severity, device_type: DeviceType
    ) -> float:
        """Share of one severity row attributed to one device type."""
        row_total = self.level_total(severity)
        if row_total == 0:
            return 0.0
        return self.counts.get(severity, {}).get(device_type, 0) / row_total

    def device_mix(self, device_type: DeviceType) -> Dict[Severity, float]:
        """A device type's own severity mix (e.g. Core 81/15/4)."""
        total = sum(
            self.counts.get(s, {}).get(device_type, 0) for s in Severity
        )
        if total == 0:
            return {s: 0.0 for s in Severity}
        return {
            s: self.counts.get(s, {}).get(device_type, 0) / total
            for s in Severity
        }

    def design_totals(self, severity: Severity) -> Tuple[int, int]:
        """(cluster, fabric) counts at one level, for the 5.3 contrast."""
        row = self.counts.get(severity, {})
        cluster = sum(row.get(t, 0) for t in CLUSTER_TYPES)
        fabric = sum(row.get(t, 0) for t in FABRIC_TYPES)
        return cluster, fabric


def severity_by_device(store: SEVStore, year: int = 2017) -> SeverityByDevice:
    """Compute Figure 4 for a year."""
    return SeverityByDevice(
        counts=SEVQuery(store).count_by_severity_and_type(year), year=year
    )


@dataclass(frozen=True)
class SeverityRateSeries:
    """Figure 5: SEVs per device per year, by severity level."""

    rates: Dict[int, Dict[Severity, float]]

    @property
    def years(self) -> List[int]:
        return sorted(self.rates)

    def rate(self, year: int, severity: Severity) -> float:
        return self.rates.get(year, {}).get(severity, 0.0)

    def inflection_year(self, severity: Severity = Severity.SEV3) -> int:
        """The year the per-device rate peaked (2015 in the paper,
        corresponding to the fabric deployment)."""
        series = {y: self.rate(y, severity) for y in self.years}
        if not series:
            raise ValueError("empty severity rate series")
        return max(series, key=lambda y: (series[y], -y))


def severity_rates_from_counts(
    per_year: Dict[int, Dict[Severity, int]], fleet: FleetModel
) -> SeverityRateSeries:
    """The Figure 5 math over already-tallied per-year severity counts.

    Shared by the SQL path (:func:`severity_rates_over_time`) and the
    streaming fold path (:mod:`repro.runtime`).
    """
    rates: Dict[int, Dict[Severity, float]] = {}
    for year, per_sev in per_year.items():
        if year not in fleet.snapshots:
            continue
        total_devices = fleet.total(year)
        if total_devices == 0:
            continue
        rates[year] = {
            severity: n / total_devices for severity, n in per_sev.items()
        }
    return SeverityRateSeries(rates=rates)


def severity_rates_over_time(
    store: SEVStore, fleet: FleetModel
) -> SeverityRateSeries:
    """Compute Figure 5: yearly SEV counts normalized by fleet size."""
    return severity_rates_from_counts(
        SEVQuery(store).count_by_year_and_severity(), fleet
    )


def sevs_per_employee(
    store: SEVStore, employees: EmployeeModel
) -> Dict[int, float]:
    """Yearly SEVs per employee (the section 5.3 engineer-count test)."""
    out = {}
    for year, count in SEVQuery(store).count_by_year().items():
        if year in employees.by_year:
            out[year] = count / employees.count(year)
    return out


def switches_vs_employees(
    fleet: FleetModel, employees: EmployeeModel
) -> List[Tuple[int, float]]:
    """Figure 6: (employees, normalized switches) points per year.

    The paper concludes switches grew in proportion to employees, so
    engineer headcount does not explain SEV growth.
    """
    points = []
    for year in fleet.years:
        if year in employees.by_year:
            points.append(
                (employees.count(year), fleet.normalized_total(year))
            )
    return sorted(points)
