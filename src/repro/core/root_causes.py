"""Root cause analysis (section 5.1, Table 2, Figure 2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.incidents.query import SEVQuery
from repro.incidents.sev import RootCause
from repro.incidents.store import SEVStore
from repro.topology.devices import DeviceType


@dataclass(frozen=True)
class RootCauseBreakdown:
    """Table 2: root cause counts and fractions over the study."""

    counts: Dict[RootCause, int]

    @property
    def total_attributions(self) -> int:
        """Total root-cause attributions.

        Exceeds the SEV count when SEVs carry multiple causes, exactly
        as Table 2's counting rule implies.
        """
        return sum(self.counts.values())

    def fraction(self, cause: RootCause) -> float:
        total = self.total_attributions
        if total == 0:
            return 0.0
        return self.counts.get(cause, 0) / total

    def distribution(self) -> Dict[RootCause, float]:
        return {cause: self.fraction(cause) for cause in RootCause}

    @property
    def human_to_hardware_ratio(self) -> float:
        """Human-induced (bug + misconfiguration) over hardware.

        Section 5.1 observes human-induced software issues occur at
        nearly double the rate of hardware failures.
        """
        hardware = self.counts.get(RootCause.HARDWARE, 0)
        human = (self.counts.get(RootCause.BUG, 0)
                 + self.counts.get(RootCause.CONFIGURATION, 0))
        if hardware == 0:
            return float("inf") if human else 0.0
        return human / hardware

    @property
    def dominant_determined_cause(self) -> RootCause:
        """The largest category other than undetermined (maintenance
        in the paper)."""
        determined = {
            c: n for c, n in self.counts.items()
            if c is not RootCause.UNDETERMINED
        }
        if not determined:
            raise ValueError("no determined root causes in the corpus")
        return max(determined, key=lambda c: (determined[c], c.value))


def root_cause_breakdown(
    store: SEVStore, year: Optional[int] = None
) -> RootCauseBreakdown:
    """Compute Table 2 from the SEV database."""
    return RootCauseBreakdown(counts=SEVQuery(store).count_by_root_cause(year))


def device_fractions_from_counts(
    raw: Dict[RootCause, Dict[DeviceType, int]],
) -> Dict[RootCause, Dict[DeviceType, float]]:
    """The Figure 2 math: normalize each root-cause row across types."""
    fractions: Dict[RootCause, Dict[DeviceType, float]] = {}
    for cause, per_type in raw.items():
        total = sum(per_type.values())
        if total == 0:
            continue
        fractions[cause] = {t: n / total for t, n in per_type.items()}
    return fractions


def root_causes_by_device(
    store: SEVStore,
) -> Dict[RootCause, Dict[DeviceType, float]]:
    """Figure 2: per root cause, the fraction of incidents by device type.

    Each root-cause row is normalized across device types, matching
    the figure's stacked-fraction rendering.
    """
    return device_fractions_from_counts(
        SEVQuery(store).count_by_root_cause_and_type()
    )
