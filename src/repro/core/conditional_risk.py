"""Conditional-risk capacity planning (section 6.1).

"At Facebook, we use these models in capacity planning to calculate
conditional risk, the likelihood of edge or link being unavailable
given a set of failures.  We plan edge and link capacity to tolerate
the 99.99th percentile of conditional risk."

This module is the consumer of the fitted section 6 models: it runs
the planner over every edge of a backbone topology and reports which
edges need more links to meet the availability target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.backbone.traffic import CapacityPlan, TrafficEngineer
from repro.core.backbone_reliability import BackboneReliability
from repro.topology.backbone import BackboneTopology

#: The paper's planning target: the 99.99th percentile of conditional risk.
PLANNING_PERCENTILE = 0.9999

#: The survivability planner's default capacity floor: a design is
#: survivable at a failed fraction while it keeps at least this share
#: of its links up.
CAPACITY_FLOOR = 0.5


@dataclass(frozen=True)
class CapacityReport:
    """Fleet-wide capacity planning outcome."""

    plans: Dict[str, CapacityPlan]
    percentile: float

    @property
    def compliant_edges(self) -> List[str]:
        return sorted(
            e for e, p in self.plans.items() if p.survives_target
        )

    @property
    def deficient_edges(self) -> List[str]:
        return sorted(
            e for e, p in self.plans.items() if not p.survives_target
        )

    def recommended_links(self, edge: str) -> int:
        try:
            return self.plans[edge].recommended_links
        except KeyError:
            raise KeyError(f"no capacity plan for edge {edge!r}") from None


def capacity_report(
    topology: BackboneTopology,
    reliability: BackboneReliability,
    percentile: float = PLANNING_PERCENTILE,
    link_percentile: float = 0.5,
) -> CapacityReport:
    """Plan every edge's link count against the fitted models.

    The per-link unavailability comes from the *measured* edge MTBF
    and MTTR models (the planner consumes the same fits the paper
    publishes), evaluated at ``link_percentile`` — the planner's
    median link assumption.
    """
    engineer = TrafficEngineer(topology)
    mtbf_model = reliability.edge_mtbf_model()
    mttr_model = reliability.edge_mttr_model()
    plans = {
        edge: engineer.plan_capacity(
            edge, mtbf_model, mttr_model,
            percentile=percentile, link_percentile=link_percentile,
        )
        for edge in topology.edges
    }
    return CapacityReport(plans=plans, percentile=percentile)


@dataclass(frozen=True)
class SurvivableCapacityRow:
    """One design's correlated-failure capacity margin."""

    design: str
    #: The capacity-remaining floor the row was planned against.
    floor: float
    #: Largest swept failed percent at which mean surviving capacity
    #: still meets the floor (0 when even the smallest fraction
    #: breaches it).
    max_survivable_pct: int
    #: Mean surviving-capacity share at that percent (1.0 when no
    #: fraction survives the floor, i.e. the intact network).
    capacity_at_pct: float


def survivable_capacity(
    survivability, floor: float = CAPACITY_FLOOR,
) -> Tuple[SurvivableCapacityRow, ...]:
    """Join the survivability curves into the capacity-planning view.

    The intra data center analog of the conditional-risk planner: where
    :func:`capacity_report` asks how many backbone links an edge needs
    to tolerate the modeled failure percentile, this asks how large a
    *correlated* device-failure fraction each design tolerates before
    mean remaining capacity breaches ``floor``.  ``survivability`` is a
    :class:`~repro.survivability.analysis.SurvivabilityStudyReport`
    (duck-typed: anything with a ``capacity`` curve family serves).
    """
    if not 0.0 < floor <= 1.0:
        raise ValueError("capacity floor must be within (0, 1]")
    rows = []
    for curve in survivability.capacity.curves:
        best_pct, best_value = 0, 1.0
        for point in curve.points:
            if point.value >= floor and point.fraction_pct > best_pct:
                best_pct, best_value = point.fraction_pct, point.value
        rows.append(SurvivableCapacityRow(
            design=curve.design, floor=floor,
            max_survivable_pct=best_pct, capacity_at_pct=best_value,
        ))
    return tuple(rows)
