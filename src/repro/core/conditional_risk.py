"""Conditional-risk capacity planning (section 6.1).

"At Facebook, we use these models in capacity planning to calculate
conditional risk, the likelihood of edge or link being unavailable
given a set of failures.  We plan edge and link capacity to tolerate
the 99.99th percentile of conditional risk."

This module is the consumer of the fitted section 6 models: it runs
the planner over every edge of a backbone topology and reports which
edges need more links to meet the availability target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.backbone.traffic import CapacityPlan, TrafficEngineer
from repro.core.backbone_reliability import BackboneReliability
from repro.topology.backbone import BackboneTopology

#: The paper's planning target: the 99.99th percentile of conditional risk.
PLANNING_PERCENTILE = 0.9999


@dataclass(frozen=True)
class CapacityReport:
    """Fleet-wide capacity planning outcome."""

    plans: Dict[str, CapacityPlan]
    percentile: float

    @property
    def compliant_edges(self) -> List[str]:
        return sorted(
            e for e, p in self.plans.items() if p.survives_target
        )

    @property
    def deficient_edges(self) -> List[str]:
        return sorted(
            e for e, p in self.plans.items() if not p.survives_target
        )

    def recommended_links(self, edge: str) -> int:
        try:
            return self.plans[edge].recommended_links
        except KeyError:
            raise KeyError(f"no capacity plan for edge {edge!r}") from None


def capacity_report(
    topology: BackboneTopology,
    reliability: BackboneReliability,
    percentile: float = PLANNING_PERCENTILE,
    link_percentile: float = 0.5,
) -> CapacityReport:
    """Plan every edge's link count against the fitted models.

    The per-link unavailability comes from the *measured* edge MTBF
    and MTTR models (the planner consumes the same fits the paper
    publishes), evaluated at ``link_percentile`` — the planner's
    median link assumption.
    """
    engineer = TrafficEngineer(topology)
    mtbf_model = reliability.edge_mtbf_model()
    mttr_model = reliability.edge_mttr_model()
    plans = {
        edge: engineer.plan_capacity(
            edge, mtbf_model, mttr_model,
            percentile=percentile, link_percentile=link_percentile,
        )
        for edge in topology.edges
    }
    return CapacityReport(plans=plans, percentile=percentile)
