"""Redundancy margin analysis (section 5.2).

"We currently provision eight Cores in each data center, which allows
us to tolerate one unavailable Core (e.g., if it must be removed from
operation for maintenance) without any impact on the data center
network."  This module computes that margin for every device type of a
built network: the largest number of same-type devices that can fail
simultaneously without stranding any rack from the Cores.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List

import networkx as nx

from repro.topology.devices import DeviceType
from repro.topology.graph import build_graph


@dataclass(frozen=True)
class RedundancyMargin:
    """Tolerance of one device type in one network."""

    device_type: DeviceType
    population: int
    tolerated_failures: int

    @property
    def survives_maintenance(self) -> bool:
        """Can one device be drained with zero impact (the Core story)?"""
        return self.tolerated_failures >= 1

    @property
    def margin_fraction(self) -> float:
        if self.population == 0:
            return 0.0
        return self.tolerated_failures / self.population


def _strands_any_rack(graph: nx.Graph, failed: List[str]) -> bool:
    survivors = graph.copy()
    survivors.remove_nodes_from(failed)
    cores = [
        n for n, d in survivors.nodes(data=True)
        if d["device_type"] is DeviceType.CORE
    ]
    if not cores:
        return True
    reachable = set()
    for core in cores:
        reachable |= nx.node_connected_component(survivors, core)
    return any(
        d["device_type"] is DeviceType.RSW and n not in reachable
        for n, d in survivors.nodes(data=True)
    )


def redundancy_margin(
    network,
    device_type: DeviceType,
    max_check: int = 4,
    exhaustive_limit: int = 200,
) -> RedundancyMargin:
    """Largest k such that any k same-type failures strand no rack.

    Failing RSWs strands the rack by definition, so their margin is 0.
    For aggregation types the check is exhaustive over k-subsets up to
    ``exhaustive_limit`` combinations per k (beyond that, the adversary
    is approximated by the lowest-degree-first heuristic subsets).
    """
    graph = build_graph(network)
    names = sorted(
        d.name for d in network.devices.values()
        if d.device_type is device_type
    )
    if not names:
        raise ValueError(f"network has no {device_type.value} devices")
    if device_type is DeviceType.RSW:
        return RedundancyMargin(device_type, len(names), 0)

    tolerated = 0
    for k in range(1, min(max_check, len(names)) + 1):
        combos = itertools.combinations(names, k)
        sample: List = []
        for i, combo in enumerate(combos):
            if i >= exhaustive_limit:
                break
            sample.append(combo)
        if any(_strands_any_rack(graph, list(c)) for c in sample):
            break
        tolerated = k
    return RedundancyMargin(device_type, len(names), tolerated)


def redundancy_report(
    network, max_check: int = 3
) -> Dict[DeviceType, RedundancyMargin]:
    """Margins for every device type present in the network."""
    present = {
        d.device_type for d in network.devices.values()
    }
    return {
        t: redundancy_margin(network, t, max_check=max_check)
        for t in sorted(present, key=lambda t: t.value)
    }
