"""Prior-work comparison data (section 5.1, section 7).

The paper positions its root-cause findings against two earlier
studies, quoting their published distributions:

* Turner et al. [74] ("California Fault Lines"): 5% unknown issues
  (Table 5) and a 9% configuration share;
* Wu et al. [75] (NetPilot): 23% unknown issues and a dominant 38%
  configuration share (Table 1).

These published numbers are *inputs* to the comparison, not outputs of
our pipeline, so they live here (not in :mod:`repro.core`) alongside
the comparison helper the section 5.1 discussion performs: Facebook's
review-and-canary practice lands its configuration share between
Turner's and Wu's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.incidents.sev import RootCause


@dataclass(frozen=True)
class PriorStudy:
    """A prior study's published root-cause shares."""

    name: str
    venue: str
    configuration_share: float
    undetermined_share: float
    hardware_share: float

    def __post_init__(self) -> None:
        for share in (self.configuration_share, self.undetermined_share,
                      self.hardware_share):
            if not 0.0 <= share <= 1.0:
                raise ValueError(f"share {share} outside [0, 1]")


TURNER_ET_AL = PriorStudy(
    name="Turner et al.",
    venue="SIGCOMM 2010",
    configuration_share=0.09,
    undetermined_share=0.05,
    hardware_share=0.20,
)

WU_ET_AL = PriorStudy(
    name="Wu et al. (NetPilot)",
    venue="SIGCOMM 2012",
    configuration_share=0.38,
    undetermined_share=0.23,
    hardware_share=0.18,
)

PRIOR_STUDIES = (TURNER_ET_AL, WU_ET_AL)


@dataclass(frozen=True)
class ComparisonRow:
    study: str
    metric: str
    theirs: float
    ours: float

    @property
    def delta(self) -> float:
        return self.ours - self.theirs


def compare_root_causes(
    distribution: Dict[RootCause, float]
) -> List[ComparisonRow]:
    """Compare a measured Table 2 distribution with the prior studies.

    Returns the rows section 5.1 discusses: undetermined versus both
    studies' unknown shares, configuration versus both, and hardware
    ("within 7% of us").
    """
    ours_config = distribution.get(RootCause.CONFIGURATION, 0.0)
    ours_undet = distribution.get(RootCause.UNDETERMINED, 0.0)
    ours_hw = distribution.get(RootCause.HARDWARE, 0.0)
    rows = []
    for study in PRIOR_STUDIES:
        rows.append(ComparisonRow(study.name, "configuration",
                                  study.configuration_share, ours_config))
        rows.append(ComparisonRow(study.name, "undetermined",
                                  study.undetermined_share, ours_undet))
        rows.append(ComparisonRow(study.name, "hardware",
                                  study.hardware_share, ours_hw))
    return rows


def configuration_between_prior_studies(
    distribution: Dict[RootCause, float]
) -> bool:
    """The section 5.1 conclusion: Facebook's configuration share sits
    above Turner et al.'s 9% but far below Wu et al.'s 38%, which the
    paper attributes to the review-and-canary operational practice."""
    share = distribution.get(RootCause.CONFIGURATION, 0.0)
    return (TURNER_ET_AL.configuration_share
            <= share < WU_ET_AL.configuration_share)
