"""One-shot reproduction verification.

Runs both pipelines and checks every headline anchor against the
published value, printing a PASS/FAIL line per artifact.  This is the
``python -m repro verify`` backend — the quickest way to confirm a
checkout still reproduces the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro import paperdata
from repro.backbone.monitor import BackboneMonitor
from repro.core import backbone_reliability
from repro.incidents.sev import RootCause, Severity
from repro.simulation.backbone_sim import BackboneSimulator
from repro.simulation.generator import IntraSimulator
from repro.simulation.scenarios import paper_backbone_scenario, paper_scenario
from repro.topology.devices import DeviceType


@dataclass(frozen=True)
class Check:
    """One verified anchor."""

    artifact: str
    claim: str
    paper: float
    measured: float
    tolerance: float
    relative: bool = True

    @property
    def passed(self) -> bool:
        if self.relative:
            if self.paper == 0:
                return self.measured == 0
            return abs(self.measured - self.paper) <= (
                self.tolerance * abs(self.paper)
            )
        return abs(self.measured - self.paper) <= self.tolerance

    def line(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return (f"[{status}] {self.artifact:<8} {self.claim:<46} "
                f"paper={self.paper:<12.4g} measured={self.measured:.4g}")


def run_verification(seed: int = 1, backbone_seed: int = 7) -> List[Check]:
    """Generate fresh corpora and evaluate every anchor.

    The intra anchors are read off one :class:`repro.runtime` report —
    every analysis answered by one executor run — so ``verify`` also
    exercises the unified execution layer end to end.
    """
    from repro.runtime import RunContext, run_intra_report

    checks: List[Check] = []

    scenario = paper_scenario(seed=seed)
    store = IntraSimulator(scenario).run()
    fleet = scenario.fleet
    report = run_intra_report(
        RunContext(store=store, fleet=fleet, corpus_seed=scenario.seed),
        backend="batch",
    )

    t2 = report.root_causes.distribution()
    for cause_name, share in paperdata.ROOT_CAUSE_DISTRIBUTION.items():
        checks.append(Check(
            "Table 2", f"{cause_name} share", share,
            t2[RootCause(cause_name)], 0.02, relative=False,
        ))

    rates = report.rates
    for year, rate in paperdata.CSA_INCIDENT_RATE.items():
        checks.append(Check(
            "Fig 3", f"CSA incident rate {year}", rate,
            rates.rate(year, DeviceType.CSA), 0.05,
        ))

    fig4 = report.severity
    for sev_name, share in paperdata.SEVERITY_MIX_2017.items():
        severity = Severity[sev_name.upper()]
        checks.append(Check(
            "Fig 4", f"2017 {sev_name} share", share,
            fig4.level_share(severity), 0.02, relative=False,
        ))

    checks.append(Check(
        "Fig 5", "per-device rate inflection year",
        paperdata.FABRIC_DEPLOYMENT_YEAR,
        report.severity_over_time.inflection_year(),
        0.0, relative=False,
    ))
    checks.append(Check(
        "Fig 8", "SEV growth 2011-2017",
        paperdata.SEV_GROWTH_2011_TO_2017,
        report.growth, 0.03,
    ))

    checks.append(Check(
        "Fig 9", "fabric/cluster incidents 2017",
        paperdata.FABRIC_TO_CLUSTER_INCIDENTS_2017,
        report.designs.fabric_to_cluster_ratio(2017), 0.06, relative=False,
    ))

    sr = report.switches
    checks.append(Check(
        "Fig 12", "Core MTBI 2017 (h)",
        paperdata.MTBI_2017_HOURS["core"],
        sr.mtbi(2017, DeviceType.CORE), 0.03,
    ))
    checks.append(Check(
        "Fig 12", "RSW MTBI 2017 (h)",
        paperdata.MTBI_2017_HOURS["rsw"],
        sr.mtbi(2017, DeviceType.RSW), 0.03,
    ))
    checks.append(Check(
        "Fig 12", "fabric MTBI advantage",
        paperdata.FABRIC_MTBI_ADVANTAGE,
        sr.fabric_advantage(2017), 0.06,
    ))

    corpus = BackboneSimulator(
        paper_backbone_scenario(seed=backbone_seed)
    ).run()
    monitor = BackboneMonitor(corpus.topology, corpus.tickets)
    rel = backbone_reliability(monitor, corpus.window_h)
    checks.append(Check(
        "Fig 15", "edge MTBF p50 (h)", paperdata.EDGE_MTBF_P50_H,
        rel.edge_mtbf.p50, 0.15,
    ))
    checks.append(Check(
        "Fig 15", "edge MTBF model slope b",
        paperdata.EDGE_MTBF_MODEL["b"], rel.edge_mtbf_model().b, 0.15,
    ))
    checks.append(Check(
        "Fig 16", "edge MTTR p50 (h)", paperdata.EDGE_MTTR_P50_H,
        rel.edge_mttr.p50, 0.35,
    ))
    checks.append(Check(
        "Fig 16", "edge MTTR model slope b",
        paperdata.EDGE_MTTR_MODEL["b"], rel.edge_mttr_model().b, 0.15,
    ))
    checks.append(Check(
        "Fig 18", "vendor MTTR p50 (h)", paperdata.VENDOR_MTTR_P50_H,
        rel.vendor_mttr.p50, 0.4,
    ))

    checks.extend(stream_smoke_checks(seed=seed))
    checks.extend(runtime_equivalence_checks(seed=seed))
    checks.extend(backbone_runtime_checks(backbone_seed=backbone_seed))
    checks.extend(faultline_checks(seed=seed))
    checks.extend(serve_checks(seed=seed, backbone_seed=backbone_seed))
    checks.extend(storage_checks(seed=seed, backbone_seed=backbone_seed))
    checks.extend(columnar_checks(seed=seed))
    checks.extend(scenario_grid_checks(seed=seed))
    checks.extend(survivability_checks(seed=seed))
    return checks


def survivability_checks(seed: int = 1) -> List[Check]:
    """Exercise the correlated-failure model (:mod:`repro.survivability`).

    Three invariants, all exact: the correlated failure order at
    all-default knobs degrades to the independent shuffle bit for bit
    (over three seeds — the property the whole knob family is anchored
    to); every survivability curve is monotone non-increasing in the
    failed fraction (trials share nested failure prefixes, so more
    failure can never help); and every runtime backend answers the
    survivability study with the identical ``report_digest``.
    """
    import random

    from repro.faultline.oracle import report_digest
    from repro.runtime import BACKENDS, RunContext
    from repro.simulation.failures import independent_failure_order
    from repro.survivability import (
        correlated_failure_order,
        generate_trials,
        run_survivability_report,
    )

    checks: List[Check] = []

    devices = [f"rsw.{i:03d}" for i in range(40)] + ["core.001", "csw.007"]
    degrades = all(
        correlated_failure_order(devices, random.Random(s))
        == independent_failure_order(devices, random.Random(s))
        for s in (seed, seed + 6, seed + 12)
    )
    checks.append(Check(
        "Surv", "correlated order degrades to independent", 1.0,
        float(degrades), 0.0, relative=False,
    ))

    trials = generate_trials(seed=seed, correlated={"trials": 8})
    context = RunContext(trials=trials, corpus_seed=seed)
    report = run_survivability_report(context, backend="stream")
    monotone = all(
        all(
            earlier.value >= later.value
            for earlier, later in zip(curve.points, curve.points[1:])
        )
        for family in (report.connectivity, report.capacity)
        for curve in family.curves
    )
    checks.append(Check(
        "Surv", "survivability curves monotone non-increasing", 1.0,
        float(monotone), 0.0, relative=False,
    ))

    digests = {
        report_digest(run_survivability_report(
            context, backend=backend,
            use_processes=backend == "sharded", jobs=2,
        ))
        for backend in BACKENDS
    }
    checks.append(Check(
        "Surv", "survivability digest identical on all backends", 1.0,
        float(len(digests) == 1), 0.0, relative=False,
    ))
    return checks


def scenario_grid_checks(seed: int = 1, scale: float = 0.25) -> List[Check]:
    """Exercise the scenario-spec and grid layer (:mod:`repro.scenarios`).

    Three invariants, all exact: materializing the shipped presets
    reproduces the legacy scenario constructors field for field (the
    declarative layer is a pure re-expression, not a fork); a grid
    cell's ``report_digest`` equals a standalone runtime run of the
    same spec (grids add orchestration, never content); and a warm
    re-run of the grid is 100% cell-cache hits with an identical
    ``summary_digest``.
    """
    from repro.faultline.oracle import report_digest
    from repro.runtime import ResultCache, RunContext, run_intra_report
    from repro.scenarios import GridRunner, GridSpec, preset
    from repro.simulation.scenarios import (
        apply_no_drain_policy,
        build_paper_intra,
        shift_fabric_rollout,
    )

    checks: List[Check] = []

    legacy_paper = build_paper_intra(seed=seed)
    legacy_no_drain = apply_no_drain_policy(build_paper_intra(seed=seed))
    legacy_shifted = shift_fabric_rollout(build_paper_intra(seed=seed), 2016)
    presets_match = (
        preset("paper").with_updates(seed=seed).materialize() == legacy_paper
        and preset("no_drain_policy").with_updates(seed=seed).materialize()
        == legacy_no_drain
        and preset("shifted_fabric").with_updates(seed=seed).materialize()
        == legacy_shifted
    )
    checks.append(Check(
        "Grid", "preset materialization equals legacy scenarios", 1.0,
        float(presets_match), 0.0, relative=False,
    ))

    base = preset("paper").with_updates(seed=seed, scale=scale)
    grid = GridSpec(base=base, axes={"fabric_year": [2015, 2016]})
    cache = ResultCache()
    runner = GridRunner(backend="stream", cache=cache)
    report = runner.run(grid)

    cell_spec = base.with_updates(fabric_year=2016)
    scenario = cell_spec.materialize()
    standalone = report_digest(run_intra_report(
        RunContext(
            store=IntraSimulator(scenario).run(), fleet=scenario.fleet,
            corpus_seed=scenario.seed,
            scenario_digest=scenario.spec_digest,
        ),
        backend="stream",
    ))
    by_digest = {
        cell["spec_digest"]: cell["report_digest"]
        for cell in report["cells"]
    }
    checks.append(Check(
        "Grid", "grid cell digest equals standalone run", 1.0,
        float(by_digest.get(cell_spec.digest()) == standalone),
        0.0, relative=False,
    ))

    rerun_runner = GridRunner(backend="stream", cache=cache)
    rerun = rerun_runner.run(grid)
    checks.append(Check(
        "Grid", "warm grid re-run all cache hits, same digest", 1.0,
        float(
            rerun_runner.cell_hits == grid.cell_count()
            and rerun_runner.cell_misses == 0
            and rerun["summary_digest"] == report["summary_digest"]
        ),
        0.0, relative=False,
    ))
    return checks


def columnar_checks(seed: int = 1, scale: float = 0.25) -> List[Check]:
    """Exercise the columnar fast path (:mod:`repro.runtime.columns`).

    Three invariants, all exact: the columnar backend — array-at-a-time
    folds over :class:`~repro.runtime.ColumnBatch` chunks — reproduces
    the batch SQL report bit for bit over the monolithic store; it does
    so again over a tiered partitioned store (hot SQLite shards scanned
    column-wise, cold gzip partitions rebatched), alongside the batch
    backend's per-partition SQL pushdown; and process-parallel column
    shards (chunk-framed batches shipped to the shared worker pool)
    merge to the identical report.
    """
    import tempfile
    from pathlib import Path

    from repro.runtime import RunContext, run_intra_report
    from repro.storage import PartitionedSEVStore

    checks: List[Check] = []
    scenario = paper_scenario(seed=seed, scale=scale)
    mono = IntraSimulator(scenario).run()
    context = RunContext(
        store=mono, fleet=scenario.fleet, corpus_seed=scenario.seed
    )

    batch = run_intra_report(context, backend="batch")
    checks.append(Check(
        "Columnar", "columnar backend equals batch report", 1.0,
        float(run_intra_report(context, backend="columnar") == batch),
        0.0, relative=False,
    ))
    checks.append(Check(
        "Columnar", "process-parallel column shards equal batch", 1.0,
        float(run_intra_report(
            context, backend="columnar", jobs=2, use_processes=True
        ) == batch),
        0.0, relative=False,
    ))

    with tempfile.TemporaryDirectory() as tmp:
        store = PartitionedSEVStore.init(Path(tmp) / "sev")
        store.ingest(mono.all_reports())
        years = store.years()
        if len(years) > 1:
            store.compact(keep_hot_years=max(1, len(years) // 2))
        tiered = RunContext(
            store=store, fleet=scenario.fleet, corpus_seed=scenario.seed
        )
        agree = (
            run_intra_report(tiered, backend="columnar") == batch
            and run_intra_report(tiered, backend="batch") == batch
        )
    checks.append(Check(
        "Columnar", "columnar + SQL pushdown over partitions", 1.0,
        float(agree), 0.0, relative=False,
    ))
    return checks


def storage_checks(seed: int = 1, backbone_seed: int = 7,
                   scale: float = 0.25) -> List[Check]:
    """Exercise the tiered storage layer (:mod:`repro.storage`).

    Three invariants, all exact: a partitioned store holding the same
    rows fingerprints identically to the monolithic store (cache keys
    survive the layout change); every backend over the partitioned SEV
    store — with part of its history demoted to the gzip cold tier —
    reproduces the monolithic batch report bit for bit; and the
    partitioned ticket store does the same for the backbone report.
    """
    import tempfile
    from pathlib import Path

    from repro.runtime import (
        RunContext, run_backbone_report, run_intra_report,
    )
    from repro.runtime.cache import corpus_fingerprint
    from repro.storage import PartitionedSEVStore, PartitionedTicketStore

    checks: List[Check] = []

    scenario = paper_scenario(seed=seed, scale=scale)
    mono = IntraSimulator(scenario).run()
    with tempfile.TemporaryDirectory() as tmp:
        store = PartitionedSEVStore.init(Path(tmp) / "sev")
        store.ingest(mono.all_reports())
        years = store.years()
        if len(years) > 1:
            store.compact(keep_hot_years=max(1, len(years) // 2))
        checks.append(Check(
            "Storage", "partitioned fingerprint equals monolithic", 1.0,
            float(
                len(store) == len(mono)
                and corpus_fingerprint(store, seed)
                == corpus_fingerprint(mono, seed)
            ),
            0.0, relative=False,
        ))
        batch = run_intra_report(
            RunContext(store=mono, fleet=scenario.fleet, corpus_seed=seed),
            backend="batch",
        )
        agree = all(
            run_intra_report(
                RunContext(store=store, fleet=scenario.fleet,
                           corpus_seed=seed),
                backend=backend, **kwargs,
            ) == batch
            for backend, kwargs in (
                ("batch", {}), ("stream", {}), ("sharded", {"jobs": 4}),
            )
        )
        checks.append(Check(
            "Storage", "backends over partitions equal monolithic", 1.0,
            float(agree), 0.0, relative=False,
        ))

    corpus = BackboneSimulator(
        paper_backbone_scenario(seed=backbone_seed)
    ).run()
    base = run_backbone_report(
        RunContext(
            monitor=BackboneMonitor(corpus.topology, corpus.tickets),
            topology=corpus.topology, window_h=corpus.window_h,
            corpus_seed=backbone_seed,
        ),
        backend="batch",
    )
    with tempfile.TemporaryDirectory() as tmp:
        tickets = PartitionedTicketStore.init(Path(tmp) / "tickets")
        tickets.ingest(corpus.tickets.completed())
        if len(tickets.years()) > 1:
            tickets.compact(keep_hot_years=1)
        context = RunContext(
            monitor=BackboneMonitor(corpus.topology, tickets.to_database()),
            topology=corpus.topology, window_h=corpus.window_h,
            corpus_seed=backbone_seed, tickets=tickets,
        )
        agree = all(
            run_backbone_report(context, backend=backend, **kwargs) == base
            for backend, kwargs in (
                ("batch", {}), ("stream", {}), ("sharded", {"jobs": 4}),
            )
        )
    checks.append(Check(
        "Storage", "partitioned tickets equal backbone report", 1.0,
        float(agree), 0.0, relative=False,
    ))
    return checks


def runtime_equivalence_checks(seed: int = 1,
                               scale: float = 0.25) -> List[Check]:
    """Exercise the unified execution layer (:mod:`repro.runtime`).

    Three invariants, all exact at this scale: the streaming backend
    (one fused fold pass) and the sharded backend (shard-local folds
    merged) must reproduce the batch SQL report bit for bit, and a
    cached re-run must return the identical report without touching
    the corpus.
    """
    from repro.runtime import ResultCache, RunContext, run_intra_report

    checks: List[Check] = []
    scenario = paper_scenario(seed=seed, scale=scale)
    store = IntraSimulator(scenario).run()
    context = RunContext(
        store=store, fleet=scenario.fleet, corpus_seed=scenario.seed
    )

    batch = run_intra_report(context, backend="batch")
    checks.append(Check(
        "Runtime", "stream backend equals batch report", 1.0,
        float(run_intra_report(context, backend="stream") == batch),
        0.0, relative=False,
    ))
    checks.append(Check(
        "Runtime", "sharded backend equals batch report", 1.0,
        float(run_intra_report(context, backend="sharded", jobs=4) == batch),
        0.0, relative=False,
    ))

    cache = ResultCache()
    first = run_intra_report(context, backend="stream", cache=cache)
    second = run_intra_report(context, backend="stream", cache=cache)
    all_hits = cache.hits == cache.misses and cache.hits > 0
    checks.append(Check(
        "Runtime", "cached re-run identical, zero recomputation", 1.0,
        float(first == second == batch and all_hits),
        0.0, relative=False,
    ))
    return checks


def backbone_runtime_checks(backbone_seed: int = 7) -> List[Check]:
    """Cross-backend equivalence for the ticket-domain analyses.

    The domain-generic runtime must answer the section 6 artifacts
    identically however it executes: the streaming fold, the sharded
    merge (serial and process-parallel), and a cached re-run all have
    to reproduce the batch (monitor-path) backbone report bit for bit.
    """
    from repro.runtime import ResultCache, RunContext, run_backbone_report

    checks: List[Check] = []
    corpus = BackboneSimulator(
        paper_backbone_scenario(seed=backbone_seed)
    ).run()
    monitor = BackboneMonitor(corpus.topology, corpus.tickets)
    context = RunContext(
        monitor=monitor, topology=corpus.topology,
        window_h=corpus.window_h, corpus_seed=backbone_seed,
    )

    batch = run_backbone_report(context, backend="batch")
    checks.append(Check(
        "Backbone", "stream backend equals batch report", 1.0,
        float(run_backbone_report(context, backend="stream") == batch),
        0.0, relative=False,
    ))
    checks.append(Check(
        "Backbone", "sharded backend equals batch report", 1.0,
        float(run_backbone_report(
            context, backend="sharded", jobs=4
        ) == batch),
        0.0, relative=False,
    ))
    checks.append(Check(
        "Backbone", "process-parallel shards equal batch report", 1.0,
        float(run_backbone_report(
            context, backend="sharded", jobs=2, use_processes=True
        ) == batch),
        0.0, relative=False,
    ))

    cache = ResultCache()
    first = run_backbone_report(context, backend="stream", cache=cache)
    second = run_backbone_report(context, backend="stream", cache=cache)
    all_hits = cache.hits == cache.misses and cache.hits > 0
    checks.append(Check(
        "Backbone", "cached re-run identical, zero recomputation", 1.0,
        float(first == second == batch and all_hits),
        0.0, relative=False,
    ))
    return checks


def stream_smoke_checks(seed: int = 1, scale: float = 0.25) -> List[Check]:
    """Exercise the streaming runtime (:mod:`repro.stream`).

    Three invariants, all exact: a checkpoint written mid-stream and
    resumed must finish with the same aggregates as an uninterrupted
    run; a sharded generation must merge to the 1-worker result; and
    the streamed root-cause/severity counts must equal the batch
    recomputation over the same corpus.
    """
    import tempfile
    from pathlib import Path

    from repro.core import root_cause_breakdown as batch_root_causes
    from repro.incidents.store import SEVStore
    from repro.simulation.generator import iter_scenario_reports
    from repro.stream import StreamEngine, generate_aggregates, live_feed

    checks: List[Check] = []
    scenario = paper_scenario(seed=seed, scale=scale)

    one_shot = StreamEngine()
    one_shot.run(live_feed(scenario))
    total = one_shot.events_ingested

    with tempfile.TemporaryDirectory() as tmp:
        snapshot = Path(tmp) / "stream.ckpt.json"
        first_half = StreamEngine(checkpoint_path=snapshot)
        first_half.run(live_feed(scenario), limit=total // 2)
        resumed = StreamEngine.resume(snapshot)
        resumed.run(live_feed(scenario))
    checks.append(Check(
        "Stream", "checkpoint->resume equals one-shot run", 1.0,
        float(resumed.aggregates.digest() == one_shot.aggregates.digest()),
        0.0, relative=False,
    ))

    sharded = generate_aggregates(scenario, jobs=4, use_processes=False)
    checks.append(Check(
        "Stream", "4-shard merge equals 1-worker run", 1.0,
        float(sharded.digest()
              == generate_aggregates(scenario, jobs=1).digest()),
        0.0, relative=False,
    ))

    store = SEVStore()
    store.insert_many(iter_scenario_reports(scenario))
    batch = batch_root_causes(store)
    streamed = one_shot.aggregates
    causes_match = len(store) == streamed.events and all(
        abs(batch.fraction(c) - streamed.root_cause_fraction(c)) < 1e-12
        for c in RootCause
    )
    checks.append(Check(
        "Stream", "streamed counts equal batch recomputation", 1.0,
        float(causes_match), 0.0, relative=False,
    ))
    return checks


def faultline_checks(seed: int = 1) -> List[Check]:
    """Exercise the fault-injection layer (:mod:`repro.faultline`).

    Three invariants: the chaos drill suite is deterministic in its
    seed (two runs produce byte-identical fault reports — same fault
    logs, same digests); every backend reproduces the fault-free
    report bit-identically while cache and shard-worker faults fire;
    and a corrupt on-disk cache entry is recovered as a counted miss,
    never an error or a wrong answer.
    """
    import tempfile
    from pathlib import Path

    from repro.faultline import FaultPlan, FaultSpec
    from repro.faultline.drills import chaos_suite, report_json
    from repro.faultline.oracle import run_differential
    from repro.runtime import ResultCache

    checks: List[Check] = []

    first = chaos_suite(seed=seed, quick=True)
    second = chaos_suite(seed=seed, quick=True)
    checks.append(Check(
        "Faultline", "chaos suite deterministic across runs", 1.0,
        float(report_json(first) == report_json(second) and first["passed"]),
        0.0, relative=False,
    ))

    plan = FaultPlan(seed, [
        FaultSpec("cache.lookup", probability=0.5, max_fires=4),
        FaultSpec("cache.store", probability=0.5, max_fires=4),
        FaultSpec("executor.shard", probability=0.5, max_fires=4),
    ])
    with tempfile.TemporaryDirectory() as tmp:
        oracle = run_differential(
            seed=seed, scale=0.25, plan=plan,
            cache_dir=Path(tmp) / "cache",
        )
    checks.append(Check(
        "Faultline", "backends identical under injected faults", 1.0,
        float(oracle.identical), 0.0, relative=False,
    ))

    with tempfile.TemporaryDirectory() as tmp:
        writer = ResultCache(tmp)
        writer.store("anchor-key", {"value": 42})
        (entry,) = Path(tmp).glob("*.pkl")
        entry.write_bytes(entry.read_bytes()[:10])
        import warnings

        reader = ResultCache(tmp)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            hit, _ = reader.lookup("anchor-key")
        reader.store("anchor-key", {"value": 42})
        rehit, value = ResultCache(tmp).lookup("anchor-key")
    checks.append(Check(
        "Faultline", "corrupt cache entry recovered as miss", 1.0,
        float(not hit and reader.misses == 1 and rehit
              and value == {"value": 42}),
        0.0, relative=False,
    ))
    return checks


def serve_checks(seed: int = 1, backbone_seed: int = 7,
                 scale: float = 0.25) -> List[Check]:
    """Exercise the serving layer (:mod:`repro.serve`).

    Three invariants: the intra report served over the in-process API
    carries the same canonical ``report_digest`` as a direct runtime
    run over the same corpus+seed (what the CLI's ``--digest`` flag
    prints); the backbone endpoint likewise; and two independent job
    queues given the identical report job produce bit-identical
    artifact digests — the determinism that makes kill/resume safe.
    """
    import tempfile

    from repro.faultline.oracle import report_digest
    from repro.runtime import run_backbone_report, run_intra_report
    from repro.serve import JobQueue, ServeApp
    from repro.serve.payloads import (
        build_backbone_context,
        build_intra_context,
    )

    checks: List[Check] = []

    with ServeApp(seed=seed, scale=scale, backbone_seed=backbone_seed,
                  prewarm=False) as app:
        _, intra = app.handle("GET", "/reports/intra")
        _, backbone = app.handle("GET", "/reports/backbone")
    direct_intra = report_digest(run_intra_report(
        build_intra_context(seed=seed, scale=scale), backend="stream",
    ))
    direct_backbone = report_digest(run_backbone_report(
        build_backbone_context(seed=backbone_seed), backend="stream",
    ))
    checks.append(Check(
        "Serve", "intra endpoint digest equals CLI digest", 1.0,
        float(intra["report_digest"] == direct_intra),
        0.0, relative=False,
    ))
    checks.append(Check(
        "Serve", "backbone endpoint digest equals CLI digest", 1.0,
        float(backbone["report_digest"] == direct_backbone),
        0.0, relative=False,
    ))

    params = {"study": "intra", "seed": seed, "scale": 0.1}
    digests = []
    for _ in range(2):
        with tempfile.TemporaryDirectory() as tmp:
            queue = JobQueue(tmp, workers=1)
            queue.start()
            job = queue.submit("report", params)
            queue.join(timeout=300)
            queue.stop()
            digests.append(queue.get(job.id).artifact_digest)
    checks.append(Check(
        "Serve", "job artifact digest deterministic per seed", 1.0,
        float(digests[0] is not None and digests[0] == digests[1]),
        0.0, relative=False,
    ))
    return checks


def render_verification(checks: List[Check]) -> str:
    lines = [c.line() for c in checks]
    passed = sum(c.passed for c in checks)
    lines.append(f"\n{passed}/{len(checks)} anchors reproduced")
    return "\n".join(lines)
