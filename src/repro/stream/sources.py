"""Event sources for the ingestion engine.

Three ways SEV reports arrive, all exposed as plain iterators so the
engine is agnostic to where the stream comes from:

* :func:`live_feed` — the simulator as an online producer: the
  calibrated scenario's SEVs, yielded in the order they open, exactly
  as a subscriber tailing the production SEV database would see them;
* :func:`replay_store` — re-stream an existing :class:`SEVStore`
  corpus in chronological order;
* :func:`replay_file` — re-stream an exported corpus (``.csv``,
  ``.json``, or ``.jsonl``) through :mod:`repro.io` without loading
  it into a store first.

The ticket domain mirrors all three: :func:`live_ticket_feed` runs the
backbone simulator as a producer of completed repair tickets,
:func:`replay_tickets` re-streams a ticket database, and
:func:`replay_tickets_file` re-streams a ticket export in any format
:mod:`repro.io` emits.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Union

from repro.incidents.sev import SEVReport
from repro.incidents.store import SEVStore
from repro.simulation.generator import iter_scenario_reports
from repro.simulation.scenarios import IntraScenario

PathLike = Union[str, Path]


def live_feed(scenario: IntraScenario) -> Iterator[SEVReport]:
    """SEVs of a scenario as a chronological online feed."""
    return iter_scenario_reports(scenario)


def replay_store(store: SEVStore) -> Iterator[SEVReport]:
    """Re-stream a store's corpus in chronological order."""
    return store.all_reports()


def replay_file(path: PathLike, strict: bool = True,
                errors=None) -> Iterator[SEVReport]:
    """Re-stream an exported SEV corpus, dispatching on the suffix.

    ``strict``/``errors`` apply to the JSONL format (the append-and-
    tail feed, the one format that tears line-wise in practice): with
    ``strict=False`` malformed lines are skipped and counted in the
    :class:`~repro.io.errors.ReadErrors` instead of raising.
    """
    from repro.io import (
        iter_sevs_csv, iter_sevs_json, iter_sevs_jsonl, strip_gz_suffix,
    )

    suffix = Path(strip_gz_suffix(path)).suffix.lower()
    if suffix == ".jsonl":
        return iter_sevs_jsonl(path, strict=strict, errors=errors)
    if suffix == ".json":
        return iter_sevs_json(path)
    if suffix == ".csv":
        return iter_sevs_csv(path)
    raise ValueError(
        f"cannot replay {path!s}: expected .csv, .json, .jsonl, "
        "or .jsonl.gz"
    )


# -- ticket domain -----------------------------------------------------


def live_ticket_feed(scenario) -> Iterator:
    """Completed repair tickets of a backbone scenario as a feed.

    Runs the :class:`~repro.simulation.backbone_sim.BackboneSimulator`
    and yields the corpus' completed tickets ordered by start time —
    the order the monitoring pipeline would close them out in, modulo
    repair overlaps.
    """
    from repro.simulation.backbone_sim import BackboneSimulator

    corpus = BackboneSimulator(scenario).run()
    tickets = sorted(
        corpus.tickets.completed(),
        key=lambda t: (t.started_at_h, t.ticket_id),
    )
    return iter(tickets)


def replay_tickets(tickets) -> Iterator:
    """Re-stream a ticket database's completed tickets."""
    return iter(tickets.completed())


def replay_tickets_file(path: PathLike) -> Iterator:
    """Re-stream an exported ticket corpus, dispatching on the suffix."""
    from repro.io import (
        iter_tickets_csv,
        iter_tickets_json,
        iter_tickets_jsonl,
        strip_gz_suffix,
    )

    suffix = Path(strip_gz_suffix(path)).suffix.lower()
    if suffix == ".jsonl":
        return iter_tickets_jsonl(path)
    if suffix == ".json":
        return iter_tickets_json(path)
    if suffix == ".csv":
        return iter_tickets_csv(path)
    raise ValueError(
        f"cannot replay {path!s}: expected .csv, .json, .jsonl, "
        "or .jsonl.gz"
    )
