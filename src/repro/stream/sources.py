"""Event sources for the ingestion engine.

Three ways SEV reports arrive, all exposed as plain iterators so the
engine is agnostic to where the stream comes from:

* :func:`live_feed` — the simulator as an online producer: the
  calibrated scenario's SEVs, yielded in the order they open, exactly
  as a subscriber tailing the production SEV database would see them;
* :func:`replay_store` — re-stream an existing :class:`SEVStore`
  corpus in chronological order;
* :func:`replay_file` — re-stream an exported corpus (``.csv``,
  ``.json``, or ``.jsonl``) through :mod:`repro.io` without loading
  it into a store first.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Union

from repro.incidents.sev import SEVReport
from repro.incidents.store import SEVStore
from repro.simulation.generator import iter_scenario_reports
from repro.simulation.scenarios import IntraScenario

PathLike = Union[str, Path]


def live_feed(scenario: IntraScenario) -> Iterator[SEVReport]:
    """SEVs of a scenario as a chronological online feed."""
    return iter_scenario_reports(scenario)


def replay_store(store: SEVStore) -> Iterator[SEVReport]:
    """Re-stream a store's corpus in chronological order."""
    return store.all_reports()


def replay_file(path: PathLike) -> Iterator[SEVReport]:
    """Re-stream an exported SEV corpus, dispatching on the suffix."""
    from repro.io import iter_sevs_csv, iter_sevs_json, iter_sevs_jsonl

    suffix = Path(path).suffix.lower()
    if suffix == ".jsonl":
        return iter_sevs_jsonl(path)
    if suffix == ".json":
        return iter_sevs_json(path)
    if suffix == ".csv":
        return iter_sevs_csv(path)
    raise ValueError(
        f"cannot replay {path!s}: expected .csv, .json, or .jsonl"
    )
