"""Incremental analytics state.

:class:`StreamAggregates` is the streaming counterpart of the batch
analyses in :mod:`repro.core`: one pass over the SEV feed maintains
every count the paper's tables and figures need — per-year/per-type
incident counts (Figures 3, 7, 8, 12), severity-by-device
cross-tabulations (Figures 4, 5), root-cause attributions (Table 2,
Figure 2) — plus fixed-memory quantile sketches of resolution times
(Figure 13's p75IRT), all without retaining the corpus.

Since the batch/stream unification, the fold and merge math lives in
:mod:`repro.runtime.states` — the same mergeable tallies every
execution backend of :class:`repro.runtime.Executor` folds —  and
``StreamAggregates`` is a bundle of those states behind its historical
attribute names.  Counting rules therefore mirror the SQL layer
(:mod:`repro.incidents.query`) exactly: device types come from the
name prefix, untyped reports are excluded from per-type breakdowns but
counted in yearly totals, and a SEV with multiple root causes
contributes one attribution per cause (none recorded counts as
undetermined).  That is what makes the parity guarantee possible — for
any corpus, the streaming counts equal the batch recomputation
*exactly*, and the streamed percentiles are exact up to the sketch
budget, approximate (bounded by bucket width) beyond.

Aggregates merge: ``merge`` is associative and commutative, so a
corpus can be partitioned across worker processes arbitrarily
(:mod:`repro.stream.sharding`) and the merged state is independent of
the partitioning and of merge order.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List, Optional

from repro.fleet.population import FleetModel, HOURS_PER_YEAR
from repro.incidents.sev import RootCause, Severity, SEVReport
from repro.runtime.states import (
    CauseTallies,
    DurationSketches,
    SeverityTallies,
    YearTypeCounts,
)
from repro.stats.quantile import QuantileSketch
from repro.topology.devices import DeviceType

FORMAT = "repro.stream-aggregates/1"


class StreamAggregates:
    """Single-pass, constant-memory incident analytics.

    A bundle of the runtime's mergeable fold states; the public dict
    attributes below are views into them, so the streaming feed and
    the :class:`repro.runtime.Executor` backends share one
    implementation of every counting rule.
    """

    def __init__(self) -> None:
        self.events = 0
        self._year_type = YearTypeCounts()
        self._severity = SeverityTallies()
        self._causes = CauseTallies()
        self._irt = DurationSketches()

    # -- state views (the historical public attributes) --------------

    @property
    def counts(self) -> Dict[int, Dict[DeviceType, int]]:
        """Typed incident counts by year and device type."""
        return self._year_type.counts

    @counts.setter
    def counts(self, value: Dict[int, Dict[DeviceType, int]]) -> None:
        self._year_type.counts = value

    @property
    def yearly_totals(self) -> Dict[int, int]:
        """Every report by year, typed or not (Figure 8 totals)."""
        return self._year_type.yearly_totals

    @yearly_totals.setter
    def yearly_totals(self, value: Dict[int, int]) -> None:
        self._year_type.yearly_totals = value

    @property
    def severity_counts(
        self,
    ) -> Dict[int, Dict[Severity, Dict[DeviceType, int]]]:
        """Figure 4 cross-tabulation, per year."""
        return self._severity.by_year_type

    @severity_counts.setter
    def severity_counts(self, value) -> None:
        self._severity.by_year_type = value

    @property
    def yearly_severity(self) -> Dict[int, Dict[Severity, int]]:
        """Figure 5 numerators: all reports by year and severity."""
        return self._severity.by_year

    @yearly_severity.setter
    def yearly_severity(self, value: Dict[int, Dict[Severity, int]]) -> None:
        self._severity.by_year = value

    @property
    def cause_counts(self) -> Dict[RootCause, int]:
        """Table 2 attributions (one per cause per SEV)."""
        return self._causes.counts

    @cause_counts.setter
    def cause_counts(self, value: Dict[RootCause, int]) -> None:
        self._causes.counts = value

    @property
    def cause_type_counts(self) -> Dict[RootCause, Dict[DeviceType, int]]:
        """Figure 2 numerators: attributions by cause and device type."""
        return self._causes.by_type

    @cause_type_counts.setter
    def cause_type_counts(self, value) -> None:
        self._causes.by_type = value

    @property
    def irt(self) -> Dict[int, Dict[DeviceType, QuantileSketch]]:
        """Resolution-time sketches per (year, device type)."""
        return self._irt.by_year_type

    @irt.setter
    def irt(self, value: Dict[int, Dict[DeviceType, QuantileSketch]]) -> None:
        self._irt.by_year_type = value

    @property
    def irt_by_year(self) -> Dict[int, QuantileSketch]:
        """Resolution-time sketch per year, across all types."""
        return self._irt.by_year

    @irt_by_year.setter
    def irt_by_year(self, value: Dict[int, QuantileSketch]) -> None:
        self._irt.by_year = value

    # -- ingestion ---------------------------------------------------

    def ingest(self, report: SEVReport) -> None:
        """Fold one SEV report into every state."""
        self.events += 1
        self._year_type.fold(report)
        self._severity.fold(report)
        self._causes.fold(report)
        self._irt.fold(report)

    def ingest_many(self, reports: Iterable[SEVReport]) -> int:
        count = 0
        for report in reports:
            self.ingest(report)
            count += 1
        return count

    # -- summary reads (the repro.core counterparts) -----------------

    @property
    def years(self) -> List[int]:
        return sorted(self.yearly_totals)

    def incident_count(self, year: int, device_type: DeviceType) -> int:
        return self.counts.get(year, {}).get(device_type, 0)

    def year_total(self, year: int, typed_only: bool = False) -> int:
        if typed_only:
            return sum(self.counts.get(year, {}).values())
        return self.yearly_totals.get(year, 0)

    def fraction_of_year(self, year: int, device_type: DeviceType) -> float:
        """Figure 7: a type's share of a year's typed incidents."""
        total = self.year_total(year, typed_only=True)
        if total == 0:
            return 0.0
        return self.incident_count(year, device_type) / total

    def growth(self, first_year: int, last_year: int) -> float:
        """Figure 8: total SEV growth factor between two years."""
        first = self.year_total(first_year)
        if first == 0:
            raise ValueError(f"no incidents in the base year {first_year}")
        return self.year_total(last_year) / first

    def incident_rate(
        self, year: int, device_type: DeviceType, fleet: FleetModel
    ) -> float:
        """Figure 3: incidents over the active population of the type."""
        population = fleet.count(year, device_type)
        if population == 0:
            raise ValueError(
                f"no {device_type.value} population in {year}"
            )
        return self.incident_count(year, device_type) / population

    def mtbi_h(
        self, year: int, device_type: DeviceType, fleet: FleetModel
    ) -> float:
        """Figure 12: device-hours MTBI (population-hours per incident)."""
        incidents = self.incident_count(year, device_type)
        if incidents == 0:
            return float("inf")
        return fleet.count(year, device_type) * HOURS_PER_YEAR / incidents

    def root_cause_fraction(self, cause: RootCause) -> float:
        """Table 2: one cause's share of all attributions."""
        total = sum(self.cause_counts.values())
        if total == 0:
            return 0.0
        return self.cause_counts.get(cause, 0) / total

    def root_cause_distribution(self) -> Dict[RootCause, float]:
        return {c: self.root_cause_fraction(c) for c in RootCause}

    def severity_level_total(self, year: int, severity: Severity) -> int:
        return sum(
            self.severity_counts.get(year, {}).get(severity, {}).values()
        )

    def severity_share(self, year: int, severity: Severity) -> float:
        """Figure 4: one level's share of a year's typed incidents."""
        total = sum(self.severity_level_total(year, s) for s in Severity)
        if total == 0:
            return 0.0
        return self.severity_level_total(year, severity) / total

    def p75_irt(
        self, year: int, device_type: Optional[DeviceType] = None
    ) -> float:
        """Figure 13: streamed p75 of incident resolution times."""
        sketch = (
            self.irt_by_year.get(year)
            if device_type is None
            else self.irt.get(year, {}).get(device_type)
        )
        if sketch is None or sketch.n == 0:
            raise ValueError(
                f"no resolution times for {device_type} in {year}"
            )
        return sketch.p75()

    # -- merging -----------------------------------------------------

    def merge(self, other: "StreamAggregates") -> "StreamAggregates":
        """Fold another shard's aggregates in (in place); returns self.

        Order-independent: any merge tree over the same shards yields
        the same state.
        """
        self.events += other.events
        self._year_type.merge(other._year_type)
        self._severity.merge(other._severity)
        self._causes.merge(other._causes)
        self._irt.merge(other._irt)
        return self

    # -- serialization -----------------------------------------------

    def to_state(self) -> dict:
        """A JSON-safe snapshot of the full aggregate state."""
        return {
            "format": FORMAT,
            "events": self.events,
            "counts": {
                str(year): {t.value: n for t, n in sorted(
                    per_type.items(), key=lambda kv: kv[0].value
                )}
                for year, per_type in sorted(self.counts.items())
            },
            "yearly_totals": {
                str(year): n
                for year, n in sorted(self.yearly_totals.items())
            },
            "yearly_severity": {
                str(year): {str(int(s)): n for s, n in sorted(per_sev.items())}
                for year, per_sev in sorted(self.yearly_severity.items())
            },
            "severity_counts": {
                str(year): {
                    str(int(severity)): {
                        t.value: n for t, n in sorted(
                            per_type.items(), key=lambda kv: kv[0].value
                        )
                    }
                    for severity, per_type in sorted(per_sev_type.items())
                }
                for year, per_sev_type in sorted(self.severity_counts.items())
            },
            "cause_counts": {
                cause.value: n for cause, n in sorted(
                    self.cause_counts.items(), key=lambda kv: kv[0].value
                )
            },
            "cause_type_counts": {
                cause.value: {
                    t.value: n for t, n in sorted(
                        per_type.items(), key=lambda kv: kv[0].value
                    )
                }
                for cause, per_type in sorted(
                    self.cause_type_counts.items(),
                    key=lambda kv: kv[0].value,
                )
            },
            "irt": {
                str(year): {
                    t.value: sketch.to_dict()
                    for t, sketch in sorted(
                        per_type.items(), key=lambda kv: kv[0].value
                    )
                }
                for year, per_type in sorted(self.irt.items())
            },
            "irt_by_year": {
                str(year): sketch.to_dict()
                for year, sketch in sorted(self.irt_by_year.items())
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "StreamAggregates":
        if state.get("format") != FORMAT:
            raise ValueError(
                f"not a stream aggregate snapshot: {state.get('format')!r}"
            )
        agg = cls()
        agg.events = state["events"]
        agg.counts = {
            int(year): {DeviceType(t): n for t, n in per_type.items()}
            for year, per_type in state["counts"].items()
        }
        agg.yearly_totals = {
            int(year): n for year, n in state["yearly_totals"].items()
        }
        agg.yearly_severity = {
            int(year): {Severity(int(s)): n for s, n in per_sev.items()}
            for year, per_sev in state["yearly_severity"].items()
        }
        agg.severity_counts = {
            int(year): {
                Severity(int(severity)): {
                    DeviceType(t): n for t, n in per_type.items()
                }
                for severity, per_type in per_sev_type.items()
            }
            for year, per_sev_type in state["severity_counts"].items()
        }
        agg.cause_counts = {
            RootCause(c): n for c, n in state["cause_counts"].items()
        }
        agg.cause_type_counts = {
            RootCause(c): {DeviceType(t): n for t, n in per_type.items()}
            for c, per_type in state["cause_type_counts"].items()
        }
        agg.irt = {
            int(year): {
                DeviceType(t): QuantileSketch.from_dict(payload)
                for t, payload in per_type.items()
            }
            for year, per_type in state["irt"].items()
        }
        agg.irt_by_year = {
            int(year): QuantileSketch.from_dict(payload)
            for year, payload in state["irt_by_year"].items()
        }
        return agg

    def digest(self) -> str:
        """A content hash of the canonical state, for equality checks."""
        canonical = json.dumps(self.to_state(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamAggregates):
            return NotImplemented
        return self.to_state() == other.to_state()
