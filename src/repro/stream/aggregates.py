"""Incremental analytics state.

:class:`StreamAggregates` is the streaming counterpart of the batch
analyses in :mod:`repro.core`: one pass over the SEV feed maintains
every count the paper's tables and figures need — per-year/per-type
incident counts (Figures 3, 7, 8, 12), severity-by-device
cross-tabulations (Figures 4, 5), root-cause attributions (Table 2,
Figure 2) — plus fixed-memory quantile sketches of resolution times
(Figure 13's p75IRT), all without retaining the corpus.

Counting rules mirror the SQL layer (:mod:`repro.incidents.query`)
exactly: device types come from the name prefix, untyped reports are
excluded from per-type breakdowns but counted in yearly totals, and a
SEV with multiple root causes contributes one attribution per cause
(none recorded counts as undetermined).  That is what makes the parity
guarantee possible — for any corpus, the streaming counts equal the
batch recomputation *exactly*, and the streamed percentiles are exact
up to the sketch budget, approximate (bounded by bucket width) beyond.

Aggregates merge: ``merge`` is associative and commutative, so a
corpus can be partitioned across worker processes arbitrarily
(:mod:`repro.stream.sharding`) and the merged state is independent of
the partitioning and of merge order.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List, Optional

from repro.fleet.population import FleetModel, HOURS_PER_YEAR
from repro.incidents.sev import RootCause, Severity, SEVReport
from repro.stats.quantile import QuantileSketch
from repro.topology.devices import DeviceType

FORMAT = "repro.stream-aggregates/1"


def _new_sketch() -> QuantileSketch:
    return QuantileSketch()


class StreamAggregates:
    """Single-pass, constant-memory incident analytics."""

    def __init__(self) -> None:
        self.events = 0
        #: typed incident counts by year and device type
        self.counts: Dict[int, Dict[DeviceType, int]] = {}
        #: every report by year, typed or not (Figure 8 totals)
        self.yearly_totals: Dict[int, int] = {}
        #: Figure 4 cross-tabulation, per year
        self.severity_counts: Dict[int, Dict[Severity, Dict[DeviceType, int]]] = {}
        #: Figure 5 numerators: all reports by year and severity
        self.yearly_severity: Dict[int, Dict[Severity, int]] = {}
        #: Table 2 attributions (one per cause per SEV)
        self.cause_counts: Dict[RootCause, int] = {}
        #: Figure 2 numerators: attributions by cause and device type
        self.cause_type_counts: Dict[RootCause, Dict[DeviceType, int]] = {}
        #: resolution-time sketches per (year, device type)
        self.irt: Dict[int, Dict[DeviceType, QuantileSketch]] = {}
        #: resolution-time sketch per year, across all types
        self.irt_by_year: Dict[int, QuantileSketch] = {}

    # -- ingestion ---------------------------------------------------

    def ingest(self, report: SEVReport) -> None:
        """Fold one SEV report into the aggregates."""
        year = report.opened_year
        self.events += 1
        self.yearly_totals[year] = self.yearly_totals.get(year, 0) + 1
        per_sev = self.yearly_severity.setdefault(year, {})
        per_sev[report.severity] = per_sev.get(report.severity, 0) + 1
        for cause in report.effective_root_causes():
            self.cause_counts[cause] = self.cause_counts.get(cause, 0) + 1

        device_type = report.device_type
        if device_type is None:
            return
        per_type = self.counts.setdefault(year, {})
        per_type[device_type] = per_type.get(device_type, 0) + 1
        row = self.severity_counts.setdefault(year, {}).setdefault(
            report.severity, {}
        )
        row[device_type] = row.get(device_type, 0) + 1
        for cause in report.effective_root_causes():
            per_cause = self.cause_type_counts.setdefault(cause, {})
            per_cause[device_type] = per_cause.get(device_type, 0) + 1
        cell = self.irt.setdefault(year, {})
        if device_type not in cell:
            cell[device_type] = _new_sketch()
        cell[device_type].add(report.duration_h)
        if year not in self.irt_by_year:
            self.irt_by_year[year] = _new_sketch()
        self.irt_by_year[year].add(report.duration_h)

    def ingest_many(self, reports: Iterable[SEVReport]) -> int:
        count = 0
        for report in reports:
            self.ingest(report)
            count += 1
        return count

    # -- summary reads (the repro.core counterparts) -----------------

    @property
    def years(self) -> List[int]:
        return sorted(self.yearly_totals)

    def incident_count(self, year: int, device_type: DeviceType) -> int:
        return self.counts.get(year, {}).get(device_type, 0)

    def year_total(self, year: int, typed_only: bool = False) -> int:
        if typed_only:
            return sum(self.counts.get(year, {}).values())
        return self.yearly_totals.get(year, 0)

    def fraction_of_year(self, year: int, device_type: DeviceType) -> float:
        """Figure 7: a type's share of a year's typed incidents."""
        total = self.year_total(year, typed_only=True)
        if total == 0:
            return 0.0
        return self.incident_count(year, device_type) / total

    def growth(self, first_year: int, last_year: int) -> float:
        """Figure 8: total SEV growth factor between two years."""
        first = self.year_total(first_year)
        if first == 0:
            raise ValueError(f"no incidents in the base year {first_year}")
        return self.year_total(last_year) / first

    def incident_rate(
        self, year: int, device_type: DeviceType, fleet: FleetModel
    ) -> float:
        """Figure 3: incidents over the active population of the type."""
        population = fleet.count(year, device_type)
        if population == 0:
            raise ValueError(
                f"no {device_type.value} population in {year}"
            )
        return self.incident_count(year, device_type) / population

    def mtbi_h(
        self, year: int, device_type: DeviceType, fleet: FleetModel
    ) -> float:
        """Figure 12: device-hours MTBI (population-hours per incident)."""
        incidents = self.incident_count(year, device_type)
        if incidents == 0:
            return float("inf")
        return fleet.count(year, device_type) * HOURS_PER_YEAR / incidents

    def root_cause_fraction(self, cause: RootCause) -> float:
        """Table 2: one cause's share of all attributions."""
        total = sum(self.cause_counts.values())
        if total == 0:
            return 0.0
        return self.cause_counts.get(cause, 0) / total

    def root_cause_distribution(self) -> Dict[RootCause, float]:
        return {c: self.root_cause_fraction(c) for c in RootCause}

    def severity_level_total(self, year: int, severity: Severity) -> int:
        return sum(
            self.severity_counts.get(year, {}).get(severity, {}).values()
        )

    def severity_share(self, year: int, severity: Severity) -> float:
        """Figure 4: one level's share of a year's typed incidents."""
        total = sum(self.severity_level_total(year, s) for s in Severity)
        if total == 0:
            return 0.0
        return self.severity_level_total(year, severity) / total

    def p75_irt(
        self, year: int, device_type: Optional[DeviceType] = None
    ) -> float:
        """Figure 13: streamed p75 of incident resolution times."""
        sketch = (
            self.irt_by_year.get(year)
            if device_type is None
            else self.irt.get(year, {}).get(device_type)
        )
        if sketch is None or sketch.n == 0:
            raise ValueError(
                f"no resolution times for {device_type} in {year}"
            )
        return sketch.p75()

    # -- merging -----------------------------------------------------

    def merge(self, other: "StreamAggregates") -> "StreamAggregates":
        """Fold another shard's aggregates in (in place); returns self.

        Order-independent: any merge tree over the same shards yields
        the same state.
        """
        self.events += other.events
        for year, n in other.yearly_totals.items():
            self.yearly_totals[year] = self.yearly_totals.get(year, 0) + n
        for year, per_type in other.counts.items():
            mine = self.counts.setdefault(year, {})
            for device_type, n in per_type.items():
                mine[device_type] = mine.get(device_type, 0) + n
        for year, per_sev in other.yearly_severity.items():
            mine_sev = self.yearly_severity.setdefault(year, {})
            for severity, n in per_sev.items():
                mine_sev[severity] = mine_sev.get(severity, 0) + n
        for year, per_sev_type in other.severity_counts.items():
            for severity, per_type in per_sev_type.items():
                row = self.severity_counts.setdefault(year, {}).setdefault(
                    severity, {}
                )
                for device_type, n in per_type.items():
                    row[device_type] = row.get(device_type, 0) + n
        for cause, n in other.cause_counts.items():
            self.cause_counts[cause] = self.cause_counts.get(cause, 0) + n
        for cause, per_type in other.cause_type_counts.items():
            mine_cause = self.cause_type_counts.setdefault(cause, {})
            for device_type, n in per_type.items():
                mine_cause[device_type] = mine_cause.get(device_type, 0) + n
        for year, per_type_sketch in other.irt.items():
            cell = self.irt.setdefault(year, {})
            for device_type, sketch in per_type_sketch.items():
                if device_type in cell:
                    cell[device_type].merge(sketch)
                else:
                    cell[device_type] = QuantileSketch.from_dict(
                        sketch.to_dict()
                    )
        for year, sketch in other.irt_by_year.items():
            if year in self.irt_by_year:
                self.irt_by_year[year].merge(sketch)
            else:
                self.irt_by_year[year] = QuantileSketch.from_dict(
                    sketch.to_dict()
                )
        return self

    # -- serialization -----------------------------------------------

    def to_state(self) -> dict:
        """A JSON-safe snapshot of the full aggregate state."""
        return {
            "format": FORMAT,
            "events": self.events,
            "counts": {
                str(year): {t.value: n for t, n in sorted(
                    per_type.items(), key=lambda kv: kv[0].value
                )}
                for year, per_type in sorted(self.counts.items())
            },
            "yearly_totals": {
                str(year): n
                for year, n in sorted(self.yearly_totals.items())
            },
            "yearly_severity": {
                str(year): {str(int(s)): n for s, n in sorted(per_sev.items())}
                for year, per_sev in sorted(self.yearly_severity.items())
            },
            "severity_counts": {
                str(year): {
                    str(int(severity)): {
                        t.value: n for t, n in sorted(
                            per_type.items(), key=lambda kv: kv[0].value
                        )
                    }
                    for severity, per_type in sorted(per_sev_type.items())
                }
                for year, per_sev_type in sorted(self.severity_counts.items())
            },
            "cause_counts": {
                cause.value: n for cause, n in sorted(
                    self.cause_counts.items(), key=lambda kv: kv[0].value
                )
            },
            "cause_type_counts": {
                cause.value: {
                    t.value: n for t, n in sorted(
                        per_type.items(), key=lambda kv: kv[0].value
                    )
                }
                for cause, per_type in sorted(
                    self.cause_type_counts.items(),
                    key=lambda kv: kv[0].value,
                )
            },
            "irt": {
                str(year): {
                    t.value: sketch.to_dict()
                    for t, sketch in sorted(
                        per_type.items(), key=lambda kv: kv[0].value
                    )
                }
                for year, per_type in sorted(self.irt.items())
            },
            "irt_by_year": {
                str(year): sketch.to_dict()
                for year, sketch in sorted(self.irt_by_year.items())
            },
        }

    @classmethod
    def from_state(cls, state: dict) -> "StreamAggregates":
        if state.get("format") != FORMAT:
            raise ValueError(
                f"not a stream aggregate snapshot: {state.get('format')!r}"
            )
        agg = cls()
        agg.events = state["events"]
        agg.counts = {
            int(year): {DeviceType(t): n for t, n in per_type.items()}
            for year, per_type in state["counts"].items()
        }
        agg.yearly_totals = {
            int(year): n for year, n in state["yearly_totals"].items()
        }
        agg.yearly_severity = {
            int(year): {Severity(int(s)): n for s, n in per_sev.items()}
            for year, per_sev in state["yearly_severity"].items()
        }
        agg.severity_counts = {
            int(year): {
                Severity(int(severity)): {
                    DeviceType(t): n for t, n in per_type.items()
                }
                for severity, per_type in per_sev_type.items()
            }
            for year, per_sev_type in state["severity_counts"].items()
        }
        agg.cause_counts = {
            RootCause(c): n for c, n in state["cause_counts"].items()
        }
        agg.cause_type_counts = {
            RootCause(c): {DeviceType(t): n for t, n in per_type.items()}
            for c, per_type in state["cause_type_counts"].items()
        }
        agg.irt = {
            int(year): {
                DeviceType(t): QuantileSketch.from_dict(payload)
                for t, payload in per_type.items()
            }
            for year, per_type in state["irt"].items()
        }
        agg.irt_by_year = {
            int(year): QuantileSketch.from_dict(payload)
            for year, payload in state["irt_by_year"].items()
        }
        return agg

    def digest(self) -> str:
        """A content hash of the canonical state, for equality checks."""
        canonical = json.dumps(self.to_state(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StreamAggregates):
            return NotImplemented
        return self.to_state() == other.to_state()
