"""Online ingestion + incremental analytics runtime.

Where :mod:`repro.core` analyzes a complete corpus after the fact,
this package keeps the study current as events arrive — the shape of
the production pipeline the paper describes, where SEVs and vendor
tickets stream in continuously and dashboards never wait for a batch
job:

* :mod:`~repro.stream.sources` — event feeds: the simulator as a live
  producer, or replay of stored/exported corpora;
* :mod:`~repro.stream.aggregates` — single-pass, constant-memory
  counterparts of the batch analyses (counts, rates, MTBI, severity
  and root-cause mixes, sketched resolution-time percentiles);
* :mod:`~repro.stream.engine` — the ingestion loop, with periodic
  checkpointing;
* :mod:`~repro.stream.checkpoint` — JSON snapshots and resume;
* :mod:`~repro.stream.sharding` — parallel corpus generation whose
  N-worker merge is bit-identical to the 1-worker run: cost-weighted
  LPT sharding, a reused worker pool fed the scenario once per worker,
  and ``jobs="auto"`` with a serial fallback for small corpora.

Quickstart::

    from repro import paper_scenario
    from repro.stream import StreamEngine, live_feed

    engine = StreamEngine()
    engine.run(live_feed(paper_scenario(scale=0.25)))
    print(engine.aggregates.root_cause_distribution())
"""

from repro.stream.aggregates import StreamAggregates
from repro.stream.checkpoint import load_checkpoint, save_checkpoint
from repro.stream.engine import StreamEngine
from repro.stream.sharding import (
    AUTO_SERIAL_THRESHOLD,
    aggregate_cells,
    cell_weights,
    generate_aggregates,
    resolve_jobs,
    shard_cells,
    shutdown_pool,
)
from repro.stream.sources import (
    live_feed,
    live_ticket_feed,
    replay_file,
    replay_store,
    replay_tickets,
    replay_tickets_file,
)

__all__ = [
    "AUTO_SERIAL_THRESHOLD",
    "StreamAggregates",
    "StreamEngine",
    "aggregate_cells",
    "cell_weights",
    "generate_aggregates",
    "live_feed",
    "live_ticket_feed",
    "load_checkpoint",
    "replay_file",
    "replay_store",
    "replay_tickets",
    "replay_tickets_file",
    "resolve_jobs",
    "save_checkpoint",
    "shard_cells",
    "shutdown_pool",
]
