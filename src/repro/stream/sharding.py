"""Sharded parallel corpus generation.

The paper scenario factors into independent (year, device type) cells
(:func:`repro.simulation.generator.cell_reports` derives each cell's
RNG from the scenario seed alone), so generation parallelizes
embarrassingly: shard the cells across worker processes, aggregate
each shard locally, and merge the shard aggregates.  Because cells are
deterministic in isolation and
:meth:`~repro.stream.aggregates.StreamAggregates.merge` is
order-independent, the merged output is bit-identical no matter how
many workers produced it — ``--jobs 4`` equals ``--jobs 1``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Sequence, Tuple

from repro.simulation.generator import cell_reports, scenario_cells
from repro.simulation.scenarios import IntraScenario
from repro.stream.aggregates import StreamAggregates
from repro.topology.devices import DeviceType

Cell = Tuple[int, DeviceType]


def shard_cells(cells: Sequence[Cell], jobs: int) -> List[List[Cell]]:
    """Deal cells round-robin into ``jobs`` shards.

    Round-robin spreads the big 2016/2017 cells across workers instead
    of piling the heavy tail onto the last shard.  Empty shards are
    dropped (more jobs than cells).
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    shards: List[List[Cell]] = [[] for _ in range(jobs)]
    for index, cell in enumerate(cells):
        shards[index % jobs].append(cell)
    return [shard for shard in shards if shard]


def aggregate_cells(
    scenario: IntraScenario, cells: Sequence[Cell]
) -> StreamAggregates:
    """Generate and aggregate one shard of cells (the worker body)."""
    aggregates = StreamAggregates()
    for year, device_type in cells:
        aggregates.ingest_many(cell_reports(scenario, year, device_type))
    return aggregates


def _worker(args: Tuple[IntraScenario, List[Cell]]) -> dict:
    scenario, cells = args
    return aggregate_cells(scenario, cells).to_state()


def generate_aggregates(
    scenario: IntraScenario,
    jobs: int = 1,
    use_processes: bool = True,
) -> StreamAggregates:
    """Generate a scenario's streaming aggregates with ``jobs`` workers.

    ``use_processes=False`` runs the shards sequentially in-process
    (same sharding, same merge, no pool) — useful for tests and for
    the verify smoke check where process spawn overhead isn't wanted.
    The result is identical either way, and identical for any ``jobs``.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    shards = shard_cells(scenario_cells(scenario), jobs)
    merged = StreamAggregates()
    if jobs == 1 or not use_processes or len(shards) <= 1:
        for shard in shards:
            merged.merge(aggregate_cells(scenario, shard))
        return merged
    with ProcessPoolExecutor(max_workers=len(shards)) as pool:
        states = list(
            pool.map(_worker, [(scenario, shard) for shard in shards])
        )
    for state in states:
        merged.merge(StreamAggregates.from_state(state))
    return merged
