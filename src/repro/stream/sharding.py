"""Sharded parallel corpus generation.

The paper scenario factors into independent (year, device type) cells
(:func:`repro.simulation.generator.cell_reports` derives each cell's
RNG from the scenario seed alone), so generation parallelizes
embarrassingly: shard the cells across worker processes, aggregate
each shard locally, and merge the shard aggregates.  Because cells are
deterministic in isolation and
:meth:`~repro.stream.aggregates.StreamAggregates.merge` is
order-independent, the merged output is bit-identical no matter how
many workers produced it — ``--jobs 4`` equals ``--jobs 1``.

Three things make the parallel path actually pay for itself:

* **Cost-weighted LPT sharding.**  Cells are wildly unequal — the 2017
  CORE cell carries ~100x the incidents of the 2015 SSW cell — so
  round-robin dealing can leave one worker with most of the corpus.
  :func:`shard_cells` instead packs cells longest-processing-time
  first onto the least-loaded shard, using per-cell work estimates
  (:func:`cell_weights`) read straight off the scenario's calibrated
  incident counts (jointly derived with the :mod:`repro.fleet`
  populations).  LPT keeps the makespan within ``mean + max_weight``
  of perfect balance, and within 4/3 of optimal whenever no single
  cell dominates.
* **Ship the scenario once per worker.**  The worker pool is created
  with an initializer that unpickles the scenario a single time per
  process; tasks then carry only the (tiny) cell lists instead of
  re-pickling the scenario per task.  The pool itself is created
  lazily and reused across calls with the same (scenario, workers)
  pair, so repeated generation — parameter sweeps, benchmarks,
  many-seed studies — pays the spawn cost once.
* **``jobs="auto"`` with a serial crossover.**  Below
  :data:`AUTO_SERIAL_THRESHOLD` estimated events (or on a single-core
  host) the pool overhead exceeds the parallel win, so ``auto`` falls
  back to serial; above it, ``auto`` uses one worker per core (capped
  at :data:`AUTO_MAX_JOBS`).
"""

from __future__ import annotations

import atexit
import hashlib
import heapq
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple, Union

from repro.simulation.generator import cell_reports, scenario_cells
from repro.simulation.scenarios import IntraScenario
from repro.stream.aggregates import StreamAggregates
from repro.topology.devices import DeviceType

Cell = Tuple[int, DeviceType]
Jobs = Union[int, str]

#: Estimated event count below which ``jobs="auto"`` stays serial.
#: Measured crossover on the reference corpus: pool spawn + shard
#: pickling + state merging costs a low-double-digit number of
#: milliseconds, which per-cell generation only amortizes once the
#: corpus reaches roughly the scale-4 paper corpus (~9k events); the
#: threshold is set just below twice that so scale<=4 corpora on
#: modest hosts never pay the overhead by accident.
AUTO_SERIAL_THRESHOLD = 16_000

#: ``jobs="auto"`` never asks for more workers than this, however many
#: cores the host reports — shard merging is serial, so returns
#: diminish well before the typical cell count (~37) is reached.
AUTO_MAX_JOBS = 8


def cell_weight(scenario: IntraScenario, cell: Cell) -> float:
    """Estimated generation cost of one (year, device type) cell.

    Report generation dominates, so the cost estimate is the cell's
    calibrated incident count (the same per-(year, type) volumes that
    are jointly calibrated with the :mod:`repro.fleet` populations),
    plus a constant for the per-cell fixed work (seed derivation,
    allocation apportioning).
    """
    year, device_type = cell
    count = scenario.incident_counts.get(year, {}).get(device_type, 0)
    return float(count) + 1.0


def cell_weights(
    scenario: IntraScenario, cells: Sequence[Cell]
) -> List[float]:
    """Per-cell work estimates for :func:`shard_cells`."""
    return [cell_weight(scenario, cell) for cell in cells]


def shard_cells(
    cells: Sequence[Cell],
    jobs: int,
    weights: Optional[Sequence[float]] = None,
) -> List[List[Cell]]:
    """Pack cells into ``jobs`` shards, LPT (longest first) on weight.

    ``weights`` gives each cell's estimated cost; without it every
    cell weighs the same and the packing degenerates to round-robin
    dealing (the executor shards already-generated records this way).
    Cells of equal weight keep their input order, so the packing is
    deterministic.  Empty shards are dropped (more jobs than cells).
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    if weights is not None and len(weights) != len(cells):
        raise ValueError(
            f"{len(weights)} weights for {len(cells)} cells"
        )
    if weights is None:
        shards: List[List[Cell]] = [[] for _ in range(jobs)]
        for index, cell in enumerate(cells):
            shards[index % jobs].append(cell)
        return [shard for shard in shards if shard]
    # Longest processing time first: sort by descending weight (stable,
    # so ties keep canonical cell order), then place each cell on the
    # currently least-loaded shard.
    order = sorted(
        range(len(cells)), key=lambda i: -weights[i]
    )
    shards = [[] for _ in range(jobs)]
    heap = [(0.0, index) for index in range(jobs)]
    heapq.heapify(heap)
    for i in order:
        load, index = heapq.heappop(heap)
        shards[index].append(cells[i])
        heapq.heappush(heap, (load + weights[i], index))
    return [shard for shard in shards if shard]


def resolve_jobs(jobs: Jobs, total_weight: Optional[float] = None) -> int:
    """Turn a ``jobs`` knob (int or ``"auto"``) into a worker count.

    ``"auto"`` picks one worker per core, capped at
    :data:`AUTO_MAX_JOBS` — but stays serial on single-core hosts and
    whenever the estimated work (``total_weight``, in events) is below
    :data:`AUTO_SERIAL_THRESHOLD`, where pool overhead would exceed
    the parallel win.
    """
    if jobs == "auto":
        cores = os.cpu_count() or 1
        if cores < 2:
            return 1
        if (total_weight is not None
                and total_weight < AUTO_SERIAL_THRESHOLD):
            return 1
        return min(cores, AUTO_MAX_JOBS)
    if not isinstance(jobs, int) or isinstance(jobs, bool):
        raise ValueError(f"jobs must be an int or 'auto', got {jobs!r}")
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    return jobs


def aggregate_cells(
    scenario: IntraScenario, cells: Sequence[Cell]
) -> StreamAggregates:
    """Generate and aggregate one shard of cells (the worker body)."""
    aggregates = StreamAggregates()
    for year, device_type in cells:
        aggregates.ingest_many(cell_reports(scenario, year, device_type))
    return aggregates


# -- the reusable worker pool ------------------------------------------
#
# One scenario pickle per *worker* (via the pool initializer), not per
# task; one pool per (scenario, workers) pair, reused across calls.

_POOL: Optional[ProcessPoolExecutor] = None
_POOL_KEY: Optional[Tuple[int, str]] = None

#: Per-worker-process scenario, installed by :func:`_init_worker`.
_WORKER_SCENARIO: Optional[IntraScenario] = None


def _init_worker(payload: bytes) -> None:
    global _WORKER_SCENARIO
    _WORKER_SCENARIO = pickle.loads(payload)


def _worker(cells: List[Cell]) -> dict:
    return aggregate_cells(_WORKER_SCENARIO, cells).to_state()


def _pool_for(scenario: IntraScenario, workers: int) -> ProcessPoolExecutor:
    """The shared pool, rebuilt only when scenario or width changes."""
    global _POOL, _POOL_KEY
    payload = pickle.dumps(scenario, protocol=pickle.HIGHEST_PROTOCOL)
    key = (workers, hashlib.sha256(payload).hexdigest())
    if _POOL is not None and _POOL_KEY == key:
        return _POOL
    shutdown_pool()
    _POOL = ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(payload,),
    )
    _POOL_KEY = key
    return _POOL


def shutdown_pool() -> None:
    """Tear down the shared worker pool (idempotent).

    Registered atexit; also useful for tests and for releasing the
    worker processes after a large run.
    """
    global _POOL, _POOL_KEY
    if _POOL is not None:
        _POOL.shutdown()
    _POOL = None
    _POOL_KEY = None


atexit.register(shutdown_pool)


def generate_aggregates(
    scenario: IntraScenario,
    jobs: Jobs = 1,
    use_processes: bool = True,
) -> StreamAggregates:
    """Generate a scenario's streaming aggregates with ``jobs`` workers.

    ``jobs`` is a worker count or ``"auto"`` (serial below the
    :data:`AUTO_SERIAL_THRESHOLD` crossover, one worker per core above
    it).  ``use_processes=False`` runs the shards sequentially
    in-process (same sharding, same merge, no pool) — useful for tests
    and for the verify smoke check where process spawn overhead isn't
    wanted.  The result is identical either way, and identical for any
    ``jobs``: LPT only changes *where* a cell is generated, never its
    content, and the merge is order-independent.
    """
    cells = scenario_cells(scenario)
    weights = cell_weights(scenario, cells)
    workers = resolve_jobs(jobs, total_weight=sum(weights))
    shards = shard_cells(cells, workers, weights)
    merged = StreamAggregates()
    if workers == 1 or not use_processes or len(shards) <= 1:
        for shard in shards:
            merged.merge(aggregate_cells(scenario, shard))
        return merged
    pool = _pool_for(scenario, len(shards))
    states = list(pool.map(_worker, shards))
    for state in states:
        merged.merge(StreamAggregates.from_state(state))
    return merged
