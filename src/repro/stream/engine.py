"""The ingestion engine.

:class:`StreamEngine` pulls SEV reports from any source iterator
(:mod:`repro.stream.sources`), folds each one into its
:class:`~repro.stream.aggregates.StreamAggregates`, and optionally
checkpoints the state every ``checkpoint_every`` events.  Resuming
from a checkpoint re-attaches the saved aggregates and skips the
already-ingested prefix of the stream, so an interrupted replay
finishes with exactly the state an uninterrupted one produces.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from repro.incidents.sev import SEVReport
from repro.stream.aggregates import StreamAggregates
from repro.stream.checkpoint import load_checkpoint, save_checkpoint
from repro.stream.sources import PathLike


class StreamEngine:
    """Incremental ingestion over a SEV event stream."""

    def __init__(
        self,
        aggregates: Optional[StreamAggregates] = None,
        checkpoint_path: Optional[PathLike] = None,
        checkpoint_every: int = 0,
    ) -> None:
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        if checkpoint_every and checkpoint_path is None:
            raise ValueError("checkpoint_every needs a checkpoint_path")
        self.aggregates = aggregates or StreamAggregates()
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        #: Events this engine (plus any resumed state) has consumed.
        self.events_ingested = self.aggregates.events

    # -- lifecycle ---------------------------------------------------

    @classmethod
    def resume(
        cls,
        checkpoint_path: PathLike,
        checkpoint_every: int = 0,
    ) -> "StreamEngine":
        """Re-attach to a snapshot written by :meth:`save_checkpoint`."""
        aggregates, _ = load_checkpoint(checkpoint_path)
        return cls(
            aggregates=aggregates,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
        )

    @classmethod
    def resume_or_fresh(
        cls,
        checkpoint_path: PathLike,
        checkpoint_every: int = 0,
    ) -> "StreamEngine":
        """Resume when a readable snapshot exists; otherwise start fresh.

        A missing checkpoint means a first run; a *corrupt* one (torn
        write, foreign format) is warned about and ignored rather than
        crashing the replay — the engine re-ingests from the start and
        overwrites the bad snapshot at the next save.
        """
        import os
        import warnings

        if os.path.exists(checkpoint_path):
            try:
                return cls.resume(checkpoint_path, checkpoint_every)
            except ValueError as exc:
                warnings.warn(
                    f"ignoring unusable checkpoint: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return cls(
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
        )

    def save_checkpoint(self, path: Optional[PathLike] = None) -> None:
        target = path or self.checkpoint_path
        if target is None:
            raise ValueError("no checkpoint path configured")
        save_checkpoint(target, self.aggregates, self.events_ingested)

    # -- ingestion ---------------------------------------------------

    def ingest(self, report: SEVReport) -> None:
        """Fold one report in, checkpointing on the configured cadence."""
        self.aggregates.ingest(report)
        self.events_ingested += 1
        if (
            self.checkpoint_every
            and self.events_ingested % self.checkpoint_every == 0
        ):
            self.save_checkpoint()

    def run(
        self,
        source: Iterable[SEVReport],
        from_start: bool = True,
        limit: Optional[int] = None,
    ) -> int:
        """Drain a source into the aggregates; returns events consumed.

        ``from_start=True`` (the default) treats ``source`` as the
        complete stream and skips the first ``events_ingested`` events
        — the resume contract: hand a resumed engine the same replay
        source and it continues where the checkpoint stopped.  Pass
        ``from_start=False`` for a source that is already positioned
        (a live tail).  ``limit`` bounds how many *new* events are
        consumed, for incremental draining.
        """
        iterator = iter(source)
        if from_start and self.events_ingested:
            iterator = itertools.islice(iterator, self.events_ingested, None)
        if limit is not None:
            if limit < 0:
                raise ValueError("limit must be non-negative")
            iterator = itertools.islice(iterator, limit)
        consumed = 0
        for report in iterator:
            self.ingest(report)
            consumed += 1
        if self.checkpoint_path is not None and consumed:
            self.save_checkpoint()
        return consumed
