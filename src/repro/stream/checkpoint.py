"""Aggregate snapshots on disk.

A checkpoint is one JSON document: the serialized
:class:`~repro.stream.aggregates.StreamAggregates` state plus the
number of events ingested, so a replay can resume exactly where it
stopped.  Writes go through a temporary file and an atomic rename —
a crash mid-checkpoint leaves the previous snapshot intact.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Tuple, Union

from repro.stream.aggregates import StreamAggregates

FORMAT = "repro.stream-checkpoint/1"

PathLike = Union[str, Path]


def save_checkpoint(
    path: PathLike, aggregates: StreamAggregates, events_ingested: int
) -> None:
    """Snapshot aggregate state to ``path`` atomically."""
    if events_ingested < 0:
        raise ValueError("events_ingested must be non-negative")
    payload = {
        "format": FORMAT,
        "events_ingested": events_ingested,
        "aggregates": aggregates.to_state(),
    }
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True))
    os.replace(tmp, target)


def load_checkpoint(path: PathLike) -> Tuple[StreamAggregates, int]:
    """Load a snapshot; returns (aggregates, events_ingested)."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != FORMAT:
        raise ValueError(
            f"{path!s}: not a stream checkpoint "
            f"(format {payload.get('format')!r})"
        )
    aggregates = StreamAggregates.from_state(payload["aggregates"])
    events = payload["events_ingested"]
    if events != aggregates.events:
        raise ValueError(
            f"{path!s}: corrupt checkpoint (events_ingested={events} "
            f"but aggregates saw {aggregates.events})"
        )
    return aggregates, events
