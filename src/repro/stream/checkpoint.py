"""Aggregate snapshots on disk.

A checkpoint is one JSON document: the serialized
:class:`~repro.stream.aggregates.StreamAggregates` state plus the
number of events ingested, so a replay can resume exactly where it
stopped.  Writes go through a temporary file and an atomic rename —
a crash mid-checkpoint (injectable at the ``checkpoint.save`` fault
site) leaves the previous snapshot intact.  Loading raises a plain
:class:`ValueError` for every way a snapshot can be bad — unparseable
JSON, a foreign format tag, an internally inconsistent event count —
so callers can treat "corrupt checkpoint" as one condition.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Tuple, Union

from repro.faultline import hooks
from repro.faultline.plan import CheckpointKilled
from repro.stream.aggregates import StreamAggregates

FORMAT = "repro.stream-checkpoint/1"

PathLike = Union[str, Path]


def save_checkpoint(
    path: PathLike, aggregates: StreamAggregates, events_ingested: int
) -> None:
    """Snapshot aggregate state to ``path`` atomically."""
    if events_ingested < 0:
        raise ValueError("events_ingested must be non-negative")
    payload = {
        "format": FORMAT,
        "events_ingested": events_ingested,
        "aggregates": aggregates.to_state(),
    }
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True))
    if hooks.fire("checkpoint.save"):
        # Simulated kill between the tmp write and the publish: the
        # tmp file survives, the last good snapshot stays in place.
        raise CheckpointKilled(
            f"simulated crash before publishing checkpoint {target}"
        )
    os.replace(tmp, target)


def load_checkpoint(path: PathLike) -> Tuple[StreamAggregates, int]:
    """Load a snapshot; returns (aggregates, events_ingested)."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path!s}: corrupt checkpoint (unparseable JSON: {exc})"
        ) from exc
    fmt = payload.get("format") if isinstance(payload, dict) else None
    if fmt != FORMAT:
        raise ValueError(
            f"{path!s}: not a stream checkpoint (format {fmt!r})"
        )
    try:
        aggregates = StreamAggregates.from_state(payload["aggregates"])
        events = payload["events_ingested"]
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(
            f"{path!s}: corrupt checkpoint ({type(exc).__name__}: {exc})"
        ) from exc
    if events != aggregates.events:
        raise ValueError(
            f"{path!s}: corrupt checkpoint (events_ingested={events} "
            f"but aggregates saw {aggregates.events})"
        )
    return aggregates, events
