"""A checkpointed job queue for expensive serving work.

``POST /jobs`` lands here: report builds, benchmark runs, chaos
drills, and what-if grid sweeps are queued as :class:`Job` records,
executed by worker threads, and their outputs published to an artifact
registry under the serve data directory (a grid job additionally
publishes one artifact per lattice cell).  The queue checkpoints its full state to ``jobs.json``
on every transition (atomic tmp-write + rename), so a killed server
picks its queue back up on restart: jobs that were ``queued`` or
``running`` when the process died are re-enqueued and produce
artifacts bit-identical to an uninterrupted run — every job kind is
deterministic in its parameters (benchmark timings excepted; their
*shape* is deterministic, the measured seconds are not).

Fault sites (:mod:`repro.faultline`):

``serve.worker``
    a job crashes mid-execution.  Recovery mirrors the sharded
    executor's contract: the crashed job is retried once, and a second
    *injected* crash runs a final attempt with the site suppressed —
    so a fault plan can never wedge a job forever.  A real (non-
    injected) second failure marks the job ``failed`` with its error.
``serve.checkpoint``
    the ``jobs.json`` write tears mid-JSON.  Only the tmp file is
    damaged and nothing is published, so the previous checkpoint
    survives and a restart resumes cleanly — at worst it re-runs a
    job whose completion the torn checkpoint failed to record, which
    is safe because artifacts are deterministic and replaced
    atomically.
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import threading
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.faultline import hooks
from repro.faultline.plan import InjectedFault, JobWorkerCrash

__all__ = ["JOB_KINDS", "Job", "JobQueue"]

PathLike = Union[str, Path]

JOB_KINDS = ("report", "bench", "chaos", "grid")

CHECKPOINT_FORMAT = "repro.serve-jobs/1"

#: queued -> running -> done | failed
STATUSES = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """One unit of queued work and its lifecycle record."""

    id: str
    kind: str
    params: dict = field(default_factory=dict)
    status: str = "queued"
    attempts: int = 0
    error: Optional[str] = None
    artifact: Optional[str] = None
    artifact_digest: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "kind": self.kind,
            "params": self.params,
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
            "artifact": self.artifact,
            "artifact_digest": self.artifact_digest,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Job":
        return cls(
            id=payload["id"],
            kind=payload["kind"],
            params=dict(payload.get("params", {})),
            status=payload.get("status", "queued"),
            attempts=int(payload.get("attempts", 0)),
            error=payload.get("error"),
            artifact=payload.get("artifact"),
            artifact_digest=payload.get("artifact_digest"),
        )


def execute_job(kind: str, params: dict) -> str:
    """Run one job body; returns the artifact text (canonical JSON).

    Pure in its inputs: a (kind, params) pair always produces the
    same artifact bytes (modulo measured seconds for ``bench``), which
    is what makes kill/resume safe and per-seed artifact digests a
    verify anchor.
    """
    from repro.serve.payloads import (
        backbone_report_payload,
        build_backbone_context,
        build_intra_context,
        build_survivability_context,
        canonical_json,
        intra_report_payload,
        survivability_report_payload,
    )

    if kind == "report":
        study = params.get("study", "intra")
        seed = int(params.get("seed", 1))
        backend = params.get("backend", "stream")
        if study == "backbone":
            context = build_backbone_context(seed=seed)
            payload = backbone_report_payload(context, backend=backend)
        elif study == "survivability":
            context = build_survivability_context(seed=seed)
            payload = survivability_report_payload(context, backend=backend)
        elif study == "intra":
            scale = float(params.get("scale", 1.0))
            context = build_intra_context(seed=seed, scale=scale)
            payload = intra_report_payload(context, backend=backend)
        else:
            raise ValueError(f"unknown report study {study!r}")
        return canonical_json(payload)
    if kind == "bench":
        from repro.perf.bench import bench_stream_throughput

        record = bench_stream_throughput(
            seed=int(params.get("seed", 2)),
            scale=float(params.get("scale", 0.25)),
            jobs_list=tuple(params.get("jobs_list", (1, 2))),
            rounds=int(params.get("rounds", 1)),
        )
        return record.to_json()
    if kind == "chaos":
        from repro.faultline.drills import chaos_suite, report_json

        report = chaos_suite(
            seed=int(params.get("seed", 7)),
            quick=bool(params.get("quick", True)),
            sites=params.get("sites"),
        )
        return report_json(report)
    if kind == "grid":
        from repro.scenarios import GridRunner, GridSpec, spec_from_dict
        from repro.scenarios import preset as load_preset

        if params.get("spec") is not None:
            base = spec_from_dict(params["spec"], source="<job params>")
        else:
            base = load_preset(params.get("preset", "paper"))
        updates = {}
        if params.get("seed") is not None:
            updates["seed"] = int(params["seed"])
        if params.get("scale") is not None:
            updates["scale"] = float(params["scale"])
        if updates:
            base = base.with_updates(**updates)
        axes = params.get("axes")
        if not isinstance(axes, dict) or not axes:
            raise ValueError(
                'grid jobs need params.axes: {"knob.path": [values, ...]}'
            )
        grid = GridSpec(base=base, axes=axes)
        runner = GridRunner(backend=params.get("backend", "stream"))
        return canonical_json(runner.run(grid))
    raise ValueError(f"unknown job kind {kind!r}; expected one of {JOB_KINDS}")


class JobQueue:
    """Worker threads over a JSON-checkpointed job table.

    Construction loads the checkpoint (if any) and re-queues every
    job that had not finished; :meth:`start` spawns the workers and
    begins draining.  All state transitions happen under one lock and
    every transition rewrites the checkpoint, so the on-disk view
    never lags by more than the in-flight transition.
    """

    _SENTINEL = None

    def __init__(self, data_dir: PathLike, workers: int = 2) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self._dir = Path(data_dir)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._artifact_dir = self._dir / "artifacts"
        self._artifact_dir.mkdir(exist_ok=True)
        self._checkpoint = self._dir / "jobs.json"
        self.workers = workers
        self._lock = threading.RLock()
        self._idle = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._next_id = 1
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._threads: List[threading.Thread] = []
        self._started = False
        self._load()

    # -- persistence -------------------------------------------------

    def _load(self) -> None:
        if not self._checkpoint.exists():
            return
        try:
            payload = json.loads(self._checkpoint.read_text())
            if payload.get("format") != CHECKPOINT_FORMAT:
                raise ValueError(
                    f"foreign checkpoint format {payload.get('format')!r}"
                )
            jobs = [Job.from_dict(entry) for entry in payload["jobs"]]
        except (ValueError, KeyError, TypeError) as exc:
            warnings.warn(
                f"ignoring unusable job checkpoint {self._checkpoint}: "
                f"{exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            return
        for job in jobs:
            # A job caught mid-run by the kill goes back to the queue;
            # its artifact write is atomic, so a re-run is safe.
            if job.status == "running":
                job.status = "queued"
            self._jobs[job.id] = job
            self._order.append(job.id)
        self._next_id = int(payload.get("next_id", len(jobs) + 1))

    def _save(self) -> None:
        payload = {
            "format": CHECKPOINT_FORMAT,
            "next_id": self._next_id,
            "jobs": [self._jobs[jid].to_dict() for jid in self._order],
        }
        text = json.dumps(payload, indent=1, sort_keys=True)
        tmp = self._checkpoint.with_name(self._checkpoint.name + ".tmp")
        if hooks.fire("serve.checkpoint"):
            # Torn checkpoint write: the tmp file is damaged, nothing
            # is published, the previous checkpoint stays authoritative.
            tmp.write_text(hooks.torn(text))
            return
        tmp.write_text(text)
        os.replace(tmp, self._checkpoint)

    # -- lifecycle ---------------------------------------------------

    def start(self) -> None:
        """Spawn the workers and enqueue every unfinished job."""
        with self._lock:
            if self._started:
                return
            self._started = True
            pending = [
                jid for jid in self._order
                if self._jobs[jid].status == "queued"
            ]
        for jid in pending:
            self._queue.put(jid)
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker, name=f"repro-serve-job-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def stop(self) -> None:
        """Drain-free shutdown: workers exit after their current job."""
        if not self._started:
            return
        for _ in self._threads:
            self._queue.put(self._SENTINEL)
        for thread in self._threads:
            thread.join(timeout=60)
        self._threads = []
        self._started = False

    def join(self, timeout: Optional[float] = None) -> bool:
        """Block until no job is queued or running; True on success."""
        with self._idle:
            return self._idle.wait_for(
                lambda: not any(
                    job.status in ("queued", "running")
                    for job in self._jobs.values()
                ),
                timeout=timeout,
            )

    # -- submission and inspection -----------------------------------

    def submit(self, kind: str, params: Optional[dict] = None) -> Job:
        if kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {kind!r}; expected one of {JOB_KINDS}"
            )
        params = dict(params or {})
        json.dumps(params)  # params must be JSON-able to checkpoint
        with self._lock:
            job = Job(id=f"job-{self._next_id:06d}", kind=kind,
                      params=params)
            self._next_id += 1
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._save()
        if self._started:
            self._queue.put(job.id)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return [self._jobs[jid] for jid in self._order]

    def stats(self) -> dict:
        with self._lock:
            counts = {status: 0 for status in STATUSES}
            for job in self._jobs.values():
                counts[job.status] += 1
            counts["total"] = len(self._jobs)
            counts["workers"] = self.workers
            return counts

    # -- artifacts ---------------------------------------------------

    def artifact_path(self, artifact_id: str) -> Path:
        if "/" in artifact_id or artifact_id in (".", ".."):
            raise ValueError(f"bad artifact id {artifact_id!r}")
        return self._artifact_dir / f"{artifact_id}.json"

    def read_artifact(self, artifact_id: str) -> Optional[str]:
        path = self.artifact_path(artifact_id)
        if not path.exists():
            return None
        return path.read_text()

    def artifacts(self) -> List[str]:
        return sorted(p.stem for p in self._artifact_dir.glob("*.json"))

    def _publish_artifact(self, artifact_id: str, text: str) -> str:
        """Atomic artifact write; returns the content digest."""
        path = self.artifact_path(artifact_id)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(text)
        os.replace(tmp, path)
        return hashlib.sha256(text.encode()).hexdigest()

    def _publish_grid_cells(self, job_id: str, text: str) -> None:
        """Publish each grid cell as its own ``<job>-cellNNN`` artifact.

        A grid sweep's comparative report stays the job artifact;
        every lattice cell additionally publishes standalone, so a
        client can fetch one what-if's report record without parsing
        the whole grid.
        """
        from repro.serve.payloads import canonical_json

        report = json.loads(text)
        for cell in report.get("cells", []):
            cell_id = f"{job_id}-cell{cell['cell']:03d}"
            self._publish_artifact(cell_id, canonical_json(cell))

    # -- execution ---------------------------------------------------

    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is self._SENTINEL:
                return
            try:
                self._run(job_id)
            finally:
                self._queue.task_done()

    def _run(self, job_id: str) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.status not in ("queued",):
                return
            job.status = "running"
            job.attempts += 1
            self._save()
        try:
            text = self._execute_resilient(job)
        except Exception as exc:  # a genuinely failed job, recorded
            with self._lock:
                job.status = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
                self._save()
                self._idle.notify_all()
            return
        digest = self._publish_artifact(job.id, text)
        if job.kind == "grid":
            self._publish_grid_cells(job.id, text)
        with self._lock:
            job.status = "done"
            job.error = None
            job.artifact = job.id
            job.artifact_digest = digest
            self._save()
            self._idle.notify_all()

    def _execute_resilient(self, job: Job) -> str:
        """Run a job body, surviving a crashed worker.

        The recovery contract: a crashed execution is retried once; a
        second *injected* crash runs a final attempt with the
        ``serve.worker`` site suppressed (so chaos plans always
        converge to the fault-free artifact); a second real failure
        propagates and marks the job failed.
        """
        last: Optional[Exception] = None
        for _ in range(2):
            try:
                if hooks.fire("serve.worker"):
                    raise JobWorkerCrash("injected job-worker crash")
                return execute_job(job.kind, job.params)
            except Exception as exc:
                last = exc
                with self._lock:
                    job.attempts += 1
        if isinstance(last, InjectedFault):
            with hooks.suppressed("serve.worker"):
                return execute_job(job.kind, job.params)
        assert last is not None
        raise last
