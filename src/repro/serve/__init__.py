"""repro.serve — reliability reports as a long-lived HTTP service.

The offline pipeline answers questions by re-running the study; this
package keeps the answers resident.  Stdlib only
(:class:`http.server.ThreadingHTTPServer` — no new runtime deps):

:mod:`~repro.serve.api`
    the HTTP API — every CLI report (intra, backbone, per-figure,
    per-table) as JSON through a shared
    :class:`~repro.runtime.cache.ResultCache`, so repeat queries are
    cache hits; plus ``/healthz``, ``/stats``, and the job endpoints.
:mod:`~repro.serve.jobs`
    a checkpointed job queue — ``POST /jobs`` accepts report builds,
    benchmark runs, and chaos drills; worker threads execute them and
    publish artifacts; job state is JSON-checkpointed so a killed
    server resumes its queue on restart.
:mod:`~repro.serve.warm`
    a cache pre-warmer — folds both studies at startup and tails the
    :mod:`repro.stream` engine, re-folding dirty analyses so the
    request path is never O(corpus).
:mod:`~repro.serve.payloads`
    the JSON the service speaks — payload builders shared with the
    CLI's ``report --digest``, each embedding the canonical
    ``report_digest`` so HTTP and CLI answers are comparable with one
    string.

Entry point: ``python -m repro serve --port 8351``.
"""

from repro.serve.api import ApiError, ServeApp, ServeState
from repro.serve.jobs import JOB_KINDS, Job, JobQueue, execute_job
from repro.serve.payloads import (
    FIGURES,
    backbone_report_payload,
    build_backbone_context,
    build_intra_context,
    canonical_json,
    figure_ids,
    intra_report_payload,
    payload_digest,
)
from repro.serve.warm import CacheWarmer

__all__ = [
    "ApiError",
    "CacheWarmer",
    "FIGURES",
    "JOB_KINDS",
    "Job",
    "JobQueue",
    "ServeApp",
    "ServeState",
    "backbone_report_payload",
    "build_backbone_context",
    "build_intra_context",
    "canonical_json",
    "execute_job",
    "figure_ids",
    "intra_report_payload",
    "payload_digest",
]
