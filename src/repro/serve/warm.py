"""Cache pre-warming: hot reports before the first request.

The serving contract is that the request path is never O(corpus): a
report request is a corpus fingerprint plus a cache lookup.  That
only holds if someone else already paid for the fold.  This module is
that someone:

* :meth:`CacheWarmer.prewarm` folds every study through the shared
  :class:`~repro.runtime.cache.ResultCache` at startup, so even the
  *first* HTTP request is a cache hit.
* :meth:`CacheWarmer.tail` consumes a live SEV source through the
  server's :mod:`repro.stream` engine.  Every ingested event rotates
  the corpus fingerprint (all cached report keys go stale), so the
  warmer counts dirty events and re-folds at a cadence — new data
  becomes visible in served reports without any request ever paying
  the fold.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional, Sequence

__all__ = ["CacheWarmer"]

#: Every served study, in warm order.  Only the intra corpus can move
#: under live ingest; the backbone and survivability corpora are
#: static, so one startup fold keeps them warm for the process's life.
STUDIES = ("intra", "backbone", "survivability")


class CacheWarmer:
    """Keeps the serve cache hot across startup and live ingest."""

    def __init__(self, state, refold_every: int = 64) -> None:
        if refold_every < 1:
            raise ValueError("refold_every must be at least 1")
        self.state = state
        self.refold_every = refold_every
        self._lock = threading.Lock()
        self._dirty = 0
        self.prewarms = 0
        self.refolds = 0
        self.events_tailed = 0

    # -- warming -----------------------------------------------------

    def prewarm(self, studies: Sequence[str] = STUDIES) -> dict:
        """Fold ``studies`` through the shared cache; returns digests.

        Idempotent: a second call on an unchanged corpus is all cache
        hits.  After live ingest it re-folds exactly the analyses whose
        corpus moved (the backbone corpus is static, so its entries
        stay warm for free).
        """
        digests = {}
        for study in studies:
            payload = self.state.report_payload(study)
            digests[study] = payload["report_digest"]
        with self._lock:
            self.prewarms += 1
        return digests

    def refold(self) -> dict:
        """Re-warm the dirty analyses and reset the dirty counter."""
        with self._lock:
            self._dirty = 0
            self.refolds += 1
        # Only the intra corpus can move under live ingest.
        return self.prewarm(studies=("intra",))

    def notify(self, events: int = 1) -> bool:
        """Record ``events`` new corpus events; refold at the cadence.

        Returns True when this notification triggered a refold.
        """
        with self._lock:
            self._dirty += events
            due = self._dirty >= self.refold_every
        if due:
            self.refold()
        return due

    # -- live ingest -------------------------------------------------

    def tail(
        self,
        source: Iterable,
        limit: Optional[int] = None,
        batch: int = 16,
    ) -> int:
        """Fold a SEV source into the served corpus, re-warming as it goes.

        ``source`` is any iterator of :class:`~repro.incidents.sev.SEVReport`
        (e.g. :func:`repro.stream.sources.replay_file`).  Events are
        ingested in batches through :meth:`ServeState.ingest` — which
        updates both the SQL store and the stream aggregates — and the
        dirty counter re-folds the intra report at the configured
        cadence.  Always finishes with a final refold when anything
        landed, so the served reports include the complete tail.
        """
        ingested = 0
        pending = []
        for report in source:
            pending.append(report)
            if len(pending) >= batch:
                ingested += self._flush(pending)
                pending = []
            if limit is not None and ingested + len(pending) >= limit:
                break
        ingested += self._flush(pending)
        if ingested:
            self.refold()
        return ingested

    def _flush(self, pending) -> int:
        if not pending:
            return 0
        count = self.state.ingest(pending)
        with self._lock:
            self.events_tailed += count
        self.notify(count)
        return count

    # -- inspection --------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "prewarms": self.prewarms,
                "refolds": self.refolds,
                "events_tailed": self.events_tailed,
                "dirty": self._dirty,
                "refold_every": self.refold_every,
            }
