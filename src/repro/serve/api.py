"""The HTTP API: reliability reports as a long-lived service.

Stdlib only (:class:`http.server.ThreadingHTTPServer`) — no new
runtime dependencies.  The server holds both seeded corpora in memory
behind one shared :class:`~repro.runtime.Executor` path and a shared
:class:`~repro.runtime.cache.ResultCache`, so the first request for a
report folds the corpus once and every repeat request is a cache
lookup: the request path is never O(corpus) after warm-up (the
:mod:`repro.serve.warm` pre-warmer makes even the first request hot).

Endpoints (all JSON):

====================  =================================================
``GET /``             endpoint index
``GET /healthz``      liveness: status, uptime, corpus sizes
``GET /stats``        cache hit/miss counters, request counts, job and
                      stream statistics
``GET /reports/intra``     the intra study (``?backend=`` optional)
``GET /reports/backbone``  the backbone study (``?backend=`` optional)
``GET /reports/survivability``  correlated-failure survivability curves
``GET /figures/<id>``      one figure (``fig3`` ... ``fig18``)
``GET /tables/<id>``       one table (``table2``, ``table4``)
``POST /jobs``        submit ``{"kind": report|bench|chaos|grid, "params": {}}``
``GET /jobs``         list jobs; ``GET /jobs/<id>`` one job
``GET /artifacts/<id>``    a finished job's artifact document
====================  =================================================

Report payloads embed the canonical ``report_digest`` of the
underlying report dataclass, bit-identical to what the CLI computes
for the same corpus+seed (``python -m repro report ... --digest``).
"""

from __future__ import annotations

import json
import tempfile
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro.runtime import BACKENDS, ResultCache
from repro.serve.jobs import JobQueue
from repro.serve.payloads import (
    FIGURES,
    backbone_report_payload,
    build_backbone_context,
    build_intra_context,
    build_survivability_context,
    canonical_json,
    figure_ids,
    intra_report_payload,
    payload_digest,
    survivability_report_payload,
)

__all__ = ["ApiError", "ServeApp", "ServeState"]

PathLike = Union[str, Path]


class ApiError(Exception):
    """An HTTP-mappable request failure."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class ServeState:
    """The corpora, executor path, and counters behind the endpoints.

    One lock serializes every analysis run (the SQLite store is a
    single shared connection); with the cache warm the critical
    section is a fingerprint + cache lookup, so readers contend for
    microseconds, not corpus passes.
    """

    def __init__(
        self,
        seed: int = 1,
        scale: float = 1.0,
        backbone_seed: int = 7,
        backend: str = "stream",
        cache_dir: Optional[PathLike] = None,
        corpus_path: Optional[PathLike] = None,
        store_dir: Optional[PathLike] = None,
    ) -> None:
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.seed = seed
        self.scale = scale
        self.backbone_seed = backbone_seed
        self.backend = backend
        self.lock = threading.Lock()
        self.cache = ResultCache(cache_dir)
        self.started_at = time.monotonic()
        self._requests: Dict[str, int] = {}
        self._request_lock = threading.Lock()

        from repro.stream import StreamEngine

        #: Live-ingest tail (repro.stream): folded alongside the store
        #: so /stats can answer streaming aggregates for free.
        self.engine = StreamEngine()
        if store_dir is not None:
            # Serve a tiered partitioned store (repro.storage): the
            # manifest's recorded generator parameters supply the
            # fleet model and the cache-fingerprint seed, and the
            # partitioned scan feeds the stream tail like a replay.
            from repro.runtime import RunContext
            from repro.simulation.scenarios import paper_scenario
            from repro.storage import PartitionedSEVStore

            store = PartitionedSEVStore.open(store_dir)
            meta = store.manifest.meta
            self.seed = seed = meta.get("seed", seed)
            self.scale = scale = meta.get("scale", scale)
            self.engine.run(store.records())
            self.intra_context = RunContext(
                store=store,
                fleet=paper_scenario(seed=seed, scale=scale).fleet,
                corpus_seed=seed,
            )
        elif corpus_path is not None:
            # Serve an exported corpus: replay it into a thread-shared
            # store (and through the stream engine, so the live
            # aggregates cover the replayed history too).
            from repro.incidents.store import SEVStore
            from repro.runtime import RunContext
            from repro.simulation.scenarios import paper_scenario
            from repro.stream.sources import replay_file

            store = SEVStore(check_same_thread=False)
            reports = list(replay_file(corpus_path))
            store.insert_many(reports)
            self.engine.run(replay_file(corpus_path))
            self.intra_context = RunContext(
                store=store, fleet=paper_scenario(seed=seed, scale=scale).fleet,
            )
        else:
            self.intra_context = build_intra_context(
                seed=seed, scale=scale, check_same_thread=False
            )
        self.backbone_context = build_backbone_context(seed=backbone_seed)
        self.survivability_context = build_survivability_context(
            seed=self.seed
        )

    # -- accounting --------------------------------------------------

    def count_request(self, route: str) -> None:
        with self._request_lock:
            self._requests[route] = self._requests.get(route, 0) + 1

    def request_counts(self) -> Dict[str, int]:
        with self._request_lock:
            return dict(sorted(self._requests.items()))

    # -- payloads ----------------------------------------------------

    def _check_backend(self, backend: Optional[str]) -> str:
        if backend is None:
            return self.backend
        if backend not in BACKENDS:
            raise ApiError(
                400,
                f"unknown backend {backend!r}; expected one of {BACKENDS}",
            )
        return backend

    def report_payload(self, study: str,
                       backend: Optional[str] = None) -> dict:
        backend = self._check_backend(backend)
        with self.lock:
            if study == "intra":
                return intra_report_payload(
                    self.intra_context, backend=backend, cache=self.cache
                )
            if study == "backbone":
                return backbone_report_payload(
                    self.backbone_context, backend=backend, cache=self.cache
                )
            if study == "survivability":
                return survivability_report_payload(
                    self.survivability_context,
                    backend=backend, cache=self.cache,
                )
        raise ApiError(404, f"unknown study {study!r}; expected "
                            f"'intra', 'backbone', or 'survivability'")

    def figure_payload(self, fig_id: str) -> dict:
        entry = FIGURES.get(fig_id)
        if entry is None:
            raise ApiError(
                404,
                f"unknown figure/table id {fig_id!r}; "
                f"known ids: {', '.join(figure_ids())}",
            )
        study, title, _ = entry
        report = self.report_payload(study)
        data = report["figures"][fig_id]
        return {
            "id": fig_id,
            "study": study,
            "title": title,
            "data": data,
            "digest": payload_digest(data),
            "report_digest": report["report_digest"],
        }

    def ingest(self, reports) -> int:
        """Fold new SEV events into the served corpus.

        Changes the corpus fingerprint (row count moves), so every
        cached report key rotates; the warmer re-folds the dirty
        analyses off the request path.
        """
        reports = list(reports)
        with self.lock:
            self.intra_context.store.insert_many(reports)
            for report in reports:
                self.engine.ingest(report)
        return len(reports)


class ServeApp:
    """The assembled service: state + job queue + warmer + HTTP server."""

    def __init__(
        self,
        seed: int = 1,
        scale: float = 1.0,
        backbone_seed: int = 7,
        host: str = "127.0.0.1",
        port: int = 0,
        data_dir: Optional[PathLike] = None,
        job_workers: int = 2,
        backend: str = "stream",
        prewarm: bool = True,
        corpus_path: Optional[PathLike] = None,
        store_dir: Optional[PathLike] = None,
    ) -> None:
        self._tmp: Optional[tempfile.TemporaryDirectory] = None
        if data_dir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-serve-")
            data_dir = self._tmp.name
        self.data_dir = Path(data_dir)
        self.host = host
        self._requested_port = port
        self.prewarm = prewarm
        self.state = ServeState(
            seed=seed, scale=scale, backbone_seed=backbone_seed,
            backend=backend, cache_dir=self.data_dir / "cache",
            corpus_path=corpus_path, store_dir=store_dir,
        )
        self.queue = JobQueue(self.data_dir, workers=job_workers)

        from repro.serve.warm import CacheWarmer

        self.warmer = CacheWarmer(self.state)
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServeApp":
        """Warm the cache, start the workers, bind, serve in background."""
        if self._server is not None:
            return self
        self.queue.start()
        if self.prewarm:
            self.warmer.prewarm()
        app = self

        class _Handler(_RequestHandler):
            serve_app = app

        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), _Handler
        )
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve-http", daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Foreground mode for the CLI: blocks until shutdown."""
        self.start()
        assert self._thread is not None
        self._thread.join()

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
            self._thread = None
        self.queue.stop()
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None

    def __enter__(self) -> "ServeApp":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- request dispatch (transport-independent, testable) ----------

    def handle(
        self,
        method: str,
        path: str,
        query: Optional[Dict[str, List[str]]] = None,
        body: Optional[bytes] = None,
    ) -> Tuple[int, dict]:
        """Route one request; returns ``(status, JSON payload)``."""
        query = query or {}
        parts = [part for part in path.split("/") if part]
        route = "/" + "/".join(parts[:2])
        self.state.count_request(f"{method} {route or '/'}")
        try:
            return self._dispatch(method, parts, query, body)
        except ApiError as exc:
            return exc.status, {"error": exc.message}

    def _dispatch(self, method, parts, query, body) -> Tuple[int, dict]:
        if method not in ("GET", "POST"):
            raise ApiError(405, f"method {method} not allowed")
        if not parts:
            return 200, self._index()
        head = parts[0]
        if method == "POST":
            if head == "jobs" and len(parts) == 1:
                return self._submit_job(body)
            raise ApiError(405, f"POST not allowed on /{'/'.join(parts)}")
        if head == "healthz" and len(parts) == 1:
            return 200, self._healthz()
        if head == "stats" and len(parts) == 1:
            return 200, self._stats()
        if head == "reports" and len(parts) == 2:
            backend = query.get("backend", [None])[0]
            return 200, self.state.report_payload(parts[1], backend=backend)
        if head in ("figures", "tables") and len(parts) == 2:
            prefix = "fig" if head == "figures" else "table"
            if not parts[1].startswith(prefix):
                raise ApiError(
                    404,
                    f"/{head}/ serves {prefix}* ids; "
                    f"known: {', '.join(figure_ids(prefix))}",
                )
            return 200, self.state.figure_payload(parts[1])
        if head == "jobs":
            if len(parts) == 1:
                return 200, {
                    "jobs": [job.to_dict() for job in self.queue.jobs()],
                    "stats": self.queue.stats(),
                }
            if len(parts) == 2:
                job = self.queue.get(parts[1])
                if job is None:
                    raise ApiError(404, f"no job {parts[1]!r}")
                return 200, job.to_dict()
        if head == "artifacts" and len(parts) == 2:
            try:
                text = self.queue.read_artifact(parts[1])
            except ValueError as exc:
                raise ApiError(400, str(exc))
            if text is None:
                raise ApiError(404, f"no artifact {parts[1]!r}")
            return 200, json.loads(text)
        raise ApiError(404, f"no route for /{'/'.join(parts)}")

    def _index(self) -> dict:
        return {
            "service": "repro.serve",
            "endpoints": [
                "GET /healthz", "GET /stats",
                "GET /reports/intra", "GET /reports/backbone",
                "GET /reports/survivability",
                *(f"GET /figures/{i}" for i in figure_ids("fig")),
                *(f"GET /tables/{i}" for i in figure_ids("table")),
                "POST /jobs", "GET /jobs", "GET /jobs/<id>",
                "GET /artifacts/<id>",
            ],
        }

    def _healthz(self) -> dict:
        state = self.state
        return {
            "status": "ok",
            "uptime_s": round(time.monotonic() - state.started_at, 3),
            "seed": state.seed,
            "backbone_seed": state.backbone_seed,
            "scale": state.scale,
            "sev_rows": len(state.intra_context.store),
            "tickets": len(
                state.backbone_context.resolve_tickets().completed()
            ),
        }

    def _stats(self) -> dict:
        state = self.state
        return {
            "uptime_s": round(time.monotonic() - state.started_at, 3),
            "cache": state.cache.stats(),
            "requests": state.request_counts(),
            "jobs": self.queue.stats(),
            "warmer": self.warmer.stats(),
            "stream": {"events_ingested": state.engine.events_ingested},
        }

    def _submit_job(self, body: Optional[bytes]) -> Tuple[int, dict]:
        try:
            payload = json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise ApiError(400, f"request body is not JSON: {exc}")
        if not isinstance(payload, dict) or "kind" not in payload:
            raise ApiError(
                400,
                'expected {"kind": "report|bench|chaos|grid", "params": {}}'
            )
        params = payload.get("params", {})
        if not isinstance(params, dict):
            raise ApiError(400, "params must be an object")
        try:
            job = self.queue.submit(payload["kind"], params)
        except ValueError as exc:
            raise ApiError(400, str(exc))
        return 202, job.to_dict()


class _RequestHandler(BaseHTTPRequestHandler):
    """Thin transport shim over :meth:`ServeApp.handle`."""

    serve_app: ServeApp  # bound by the per-app subclass in start()
    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; a load test
    # would drown the terminal.
    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        pass

    def _respond(self, status: int, payload: dict) -> None:
        body = canonical_json(payload).encode() + b"\n"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _handle(self, method: str) -> None:
        parsed = urlsplit(self.path)
        body = None
        if method == "POST":
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length) if length else b""
        try:
            status, payload = self.serve_app.handle(
                method, parsed.path, parse_qs(parsed.query), body
            )
        except Exception as exc:  # never tear down a worker thread
            status, payload = 500, {
                "error": f"{type(exc).__name__}: {exc}"
            }
        self._respond(status, payload)

    def do_GET(self) -> None:
        self._handle("GET")

    def do_POST(self) -> None:
        self._handle("POST")
