"""Report payloads: the JSON the serving layer speaks.

One module owns the translation from report dataclasses to JSON-able
dicts so every consumer — the HTTP endpoints of
:mod:`repro.serve.api`, the job artifacts of :mod:`repro.serve.jobs`,
and the CLI's ``report --digest`` line — serializes the same corpus
the same way.  Each report payload embeds the canonical
``report_digest`` of the underlying report dataclass (the
:func:`repro.faultline.oracle.report_digest` hash), so an HTTP
response and a CLI invocation over the same corpus+seed can be
compared with one string.

Figure and table payloads are addressable by the paper's artifact ids
(``fig3`` ... ``fig18``, ``table2``, ``table4``) through
:data:`FIGURES`; each carries its own ``digest`` over the canonical
JSON of its data, so per-figure responses are individually
verifiable.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Dict, Optional, Tuple

from repro.incidents.sev import RootCause, Severity
from repro.runtime import RunContext, run_backbone_report, run_intra_report
from repro.topology.devices import DeviceType

__all__ = [
    "FIGURES",
    "backbone_report_payload",
    "build_backbone_context",
    "build_intra_context",
    "build_survivability_context",
    "canonical_json",
    "figure_ids",
    "intra_report_payload",
    "payload_digest",
    "survivability_report_payload",
]


def canonical_json(payload) -> str:
    """The one serialization under which equal payloads are equal text."""
    return json.dumps(payload, indent=1, sort_keys=True)


def payload_digest(payload) -> str:
    """SHA-256 over the canonical JSON of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


# -- context builders ---------------------------------------------------


def build_intra_context(
    seed: int = 1,
    scale: float = 1.0,
    check_same_thread: bool = True,
) -> RunContext:
    """Generate the seeded intra corpus and wrap it in a run context.

    ``check_same_thread=False`` builds the SEV store so a threaded
    server can query it from handler threads (access must then be
    serialized by the caller; :class:`repro.serve.api.ServeState`
    holds the lock).
    """
    from repro.incidents.store import SEVStore
    from repro.simulation.generator import IntraSimulator
    from repro.simulation.scenarios import paper_scenario

    scenario = paper_scenario(seed=seed, scale=scale)
    store = SEVStore(check_same_thread=check_same_thread)
    IntraSimulator(scenario).run(store=store)
    return RunContext(
        store=store, fleet=scenario.fleet, corpus_seed=scenario.seed,
        scenario_digest=scenario.spec_digest,
    )


def build_survivability_context(seed: int = 1) -> RunContext:
    """Generate the seeded correlated-failure trial corpus + context.

    The trial corpus is a pure function of ``(seed, knobs)``, so the
    context carries the seed as the corpus fingerprint seed and no
    scenario digest (the server serves the default knobs).
    """
    from repro.survivability import generate_trials

    trials = generate_trials(seed=seed)
    return RunContext(trials=trials, corpus_seed=seed)


def build_backbone_context(seed: int = 7) -> RunContext:
    """Generate the seeded backbone ticket corpus and its context."""
    from repro.backbone.monitor import BackboneMonitor
    from repro.simulation.backbone_sim import BackboneSimulator
    from repro.simulation.scenarios import paper_backbone_scenario

    scenario = paper_backbone_scenario(seed=seed)
    corpus = BackboneSimulator(scenario).run()
    monitor = BackboneMonitor(corpus.topology, corpus.tickets)
    return RunContext(
        monitor=monitor, topology=corpus.topology,
        window_h=corpus.window_h, corpus_seed=seed,
        scenario_digest=scenario.spec_digest,
    )


# -- figure/table extraction --------------------------------------------


def _model_dict(model) -> dict:
    return {
        "a": model.a, "b": model.b, "r2": model.r2,
        "degenerate": model.degenerate,
    }


def _curve_dict(curve, model) -> dict:
    return {"p50": curve.p50, "p90": curve.p90, "model": _model_dict(model)}


def _intra_table2(report) -> dict:
    return {c.value: report.root_causes.fraction(c) for c in RootCause}


def _intra_fig3(report) -> dict:
    year = report.last_year
    return {
        "year": year,
        "rate_per_device": {
            t.value: report.rates.rate(year, t) for t in DeviceType
        },
    }


def _intra_fig4(report) -> dict:
    return {
        "year": report.severity.year,
        "shares": {
            s.label: report.severity.level_share(s) for s in sorted(Severity)
        },
    }


def _intra_fig5(report) -> dict:
    return {"inflection_year": report.severity_over_time.inflection_year()}


def _intra_fig7(report) -> dict:
    year = report.last_year
    return {
        "year": year,
        "fractions": {
            t.value: report.distribution.fraction_of_year(year, t)
            for t in DeviceType
        },
    }


def _intra_fig8(report) -> dict:
    return {"growth": report.growth}


def _intra_fig9(report) -> dict:
    return {
        "cluster_inflection_year": report.designs.cluster_inflection_year(),
        "fabric_to_cluster_ratio": report.designs.fabric_to_cluster_ratio(
            report.last_year
        ),
    }


def _intra_fig12(report) -> dict:
    year = report.last_year
    return {
        "year": year,
        "mtbi_h": {
            t.value: mtbi
            for t, mtbi in sorted(
                report.switches.mtbi_h.get(year, {}).items(),
                key=lambda item: item[0].value,
            )
        },
    }


def _backbone_fig15(report) -> dict:
    rel = report.reliability
    return _curve_dict(rel.edge_mtbf, rel.edge_mtbf_model())


def _backbone_fig16(report) -> dict:
    rel = report.reliability
    return _curve_dict(rel.edge_mttr, rel.edge_mttr_model())


def _backbone_fig17(report) -> dict:
    rel = report.reliability
    return _curve_dict(rel.vendor_mtbf, rel.vendor_mtbf_model())


def _backbone_fig18(report) -> dict:
    rel = report.reliability
    return _curve_dict(rel.vendor_mttr, rel.vendor_mttr_model())


def _backbone_table4(report) -> dict:
    return {
        "rows": [
            {
                "continent": row.continent.value,
                "share": row.share,
                "mtbf_h": row.mtbf_h,
                "mttr_h": row.mttr_h,
            }
            for row in report.continents
        ],
    }


#: Every addressable artifact: id -> (study, title, extractor).
FIGURES: Dict[str, Tuple[str, str, Callable]] = {
    "table2": ("intra", "Table 2: root causes", _intra_table2),
    "fig3": ("intra", "Figure 3: incident rate per device", _intra_fig3),
    "fig4": ("intra", "Figure 4: severity mix", _intra_fig4),
    "fig5": ("intra", "Figure 5: rate inflection", _intra_fig5),
    "fig7": ("intra", "Figure 7: incidents by device type", _intra_fig7),
    "fig8": ("intra", "Figure 8: SEV growth", _intra_fig8),
    "fig9": ("intra", "Figure 9: design comparison", _intra_fig9),
    "fig12": ("intra", "Figure 12: MTBI", _intra_fig12),
    "fig15": ("backbone", "Figure 15: edge MTBF", _backbone_fig15),
    "fig16": ("backbone", "Figure 16: edge MTTR", _backbone_fig16),
    "fig17": ("backbone", "Figure 17: vendor MTBF", _backbone_fig17),
    "fig18": ("backbone", "Figure 18: vendor MTTR", _backbone_fig18),
    "table4": ("backbone", "Table 4: edges by continent", _backbone_table4),
}


def figure_ids(kind: Optional[str] = None) -> list:
    """The addressable ids: all, only ``fig*``, or only ``table*``."""
    ids = sorted(FIGURES, key=lambda i: (FIGURES[i][0], i))
    if kind is None:
        return ids
    return [i for i in ids if i.startswith(kind)]


# -- report payloads ----------------------------------------------------


def _digest(report) -> str:
    from repro.faultline.oracle import report_digest

    return report_digest(report)


def intra_report_payload(
    context: RunContext,
    backend: str = "stream",
    cache=None,
) -> dict:
    """The intra study as JSON, digest-pinned to the report dataclass."""
    report = run_intra_report(context, backend=backend, cache=cache)
    figures = {
        fig_id: extract(report)
        for fig_id, (study, _, extract) in FIGURES.items()
        if study == "intra"
    }
    return {
        "study": "intra",
        "backend": backend,
        "corpus_seed": context.corpus_seed,
        "last_year": report.last_year,
        "figures": figures,
        "report_digest": _digest(report),
    }


def _curves_payload(curves) -> dict:
    return {
        curve.design: [
            {
                "fraction_pct": point.fraction_pct,
                "value": point.value,
                "trials": point.trials,
            }
            for point in curve.points
        ]
        for curve in curves.curves
    }


def survivability_report_payload(
    context: RunContext,
    backend: str = "stream",
    cache=None,
) -> dict:
    """The survivability study as JSON, digest-pinned like the others.

    Curves ride inline (they have no paper figure id); the
    ``survivable_capacity`` join gives the capacity-planner view of
    the same curves, so one response answers both "how fast does
    connectivity decay" and "how much correlated failure can each
    design absorb".
    """
    from repro.core import survivable_capacity
    from repro.survivability import run_survivability_report

    report = run_survivability_report(context, backend=backend, cache=cache)
    capacity_rows = survivable_capacity(report)
    return {
        "study": "survivability",
        "backend": backend,
        "corpus_seed": context.corpus_seed,
        "designs": [row.design for row in report.summary.designs],
        "connectivity": _curves_payload(report.connectivity),
        "capacity": _curves_payload(report.capacity),
        "summary": {
            "fabric_advantage": report.summary.fabric_advantage,
            "designs": [
                {
                    "design": row.design,
                    "connectivity_auc": row.connectivity_auc,
                    "capacity_auc": row.capacity_auc,
                    "half_connectivity_pct": row.half_connectivity_pct,
                }
                for row in report.summary.designs
            ],
        },
        "survivable_capacity": [
            {
                "design": row.design,
                "floor": row.floor,
                "max_survivable_pct": row.max_survivable_pct,
                "capacity_at_pct": row.capacity_at_pct,
            }
            for row in capacity_rows
        ],
        "report_digest": _digest(report),
    }


def backbone_report_payload(
    context: RunContext,
    backend: str = "stream",
    cache=None,
) -> dict:
    """The backbone study as JSON, digest-pinned to the report dataclass."""
    report = run_backbone_report(context, backend=backend, cache=cache)
    figures = {
        fig_id: extract(report)
        for fig_id, (study, _, extract) in FIGURES.items()
        if study == "backbone"
    }
    return {
        "study": "backbone",
        "backend": backend,
        "corpus_seed": context.corpus_seed,
        "window_h": context.window_h,
        "figures": figures,
        "report_digest": _digest(report),
    }
