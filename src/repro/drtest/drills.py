"""Disaster recovery drills.

Two published drill shapes (section 5.7 and [46]):

* **storm** — a burst of correlated device failures inside one data
  center, modeling a maintenance accident or power event;
* **data center drain** — disconnect an entire data center and verify
  the services that span data centers survive on the remainder.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.services.catalog import ServiceCatalog
from repro.services.impact import ImpactKind, ImpactModel
from repro.services.placement import Placement
from repro.topology.devices import DeviceType


@dataclass(frozen=True)
class DrillOutcome:
    """Result of one drill run."""

    drill: str
    failed_devices: int
    service_kinds: Dict[str, ImpactKind]

    @property
    def services_down(self) -> List[str]:
        return sorted(
            s for s, k in self.service_kinds.items()
            if k is ImpactKind.DOWNTIME
        )

    @property
    def passed(self) -> bool:
        """A drill passes when nothing went fully down."""
        return not self.services_down


class StormDrill:
    """Fail a random fraction of one device type simultaneously."""

    def __init__(self, model: ImpactModel, network, seed: int = 0) -> None:
        self._model = model
        self._network = network
        self._rng = random.Random(seed)

    def run(self, device_type: DeviceType, fraction: float) -> DrillOutcome:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        names = sorted(
            d.name for d in self._network.devices.values()
            if d.device_type is device_type
        )
        if not names:
            raise ValueError(f"no {device_type.value} devices to storm")
        count = max(1, int(round(fraction * len(names))))
        victims = self._rng.sample(names, count)
        assessment = self._model.assess(victims)
        return DrillOutcome(
            drill=f"storm:{device_type.value}:{fraction:.0%}",
            failed_devices=count,
            service_kinds={
                s: i.kind for s, i in assessment.impacts.items()
            },
        )


class DatacenterDrainDrill:
    """Disconnect an entire data center (section 5.7's hardest drill).

    Works over a multi-datacenter placement: services whose replicas
    are spread across data centers should survive; anything pinned to
    the drained building goes down — which is exactly what the drill
    exists to find before a real disaster does.
    """

    def __init__(self, catalog: ServiceCatalog,
                 placement: Placement) -> None:
        self._catalog = catalog
        self._placement = placement

    def run(self, datacenter: str) -> DrillOutcome:
        """Drain every rack whose name marks it as in ``datacenter``.

        Rack membership comes from the naming convention: the fourth
        name field is the data center.
        """
        kinds: Dict[str, ImpactKind] = {}
        drained_racks = set()
        for service in self._catalog:
            racks = self._placement.racks_of(service.name)
            in_dc = {r for r in racks if r.split(".")[3] == datacenter}
            drained_racks |= in_dc
            remaining = len(racks) - len(in_dc)
            if remaining == 0:
                kinds[service.name] = ImpactKind.DOWNTIME
            elif in_dc:
                kinds[service.name] = (
                    ImpactKind.LOST_CAPACITY
                    if remaining < len(racks) / 2
                    else ImpactKind.RETRIES
                )
            else:
                kinds[service.name] = ImpactKind.NONE
        return DrillOutcome(
            drill=f"drain:{datacenter}",
            failed_devices=len(drained_racks),
            service_kinds=kinds,
        )
