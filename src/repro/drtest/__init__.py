"""Fault injection and disaster recovery testing.

Section 5.7: "At Facebook, we run periodical tests, including both
fault injection testing and disaster recovery testing, to exercise the
reliability of our production systems by simulating different types of
network failures, such as device outages and disconnection of an
entire data center."

This package implements that test harness over the topology and
service-impact substrates: single-device fault injection sweeps,
correlated-failure storms, and the full drain-a-datacenter drill.
"""

from repro.drtest.injector import FaultInjector, InjectionResult
from repro.drtest.drills import (
    DatacenterDrainDrill,
    DrillOutcome,
    StormDrill,
)

__all__ = [
    "DatacenterDrainDrill",
    "DrillOutcome",
    "FaultInjector",
    "InjectionResult",
    "StormDrill",
]
