"""Fault injection sweeps.

Systematically fails devices (alone or in combinations) and records
the service-level outcome of each injection — the chaos-engineering
loop the paper cites ([9], [73]).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.services.impact import ImpactAssessment, ImpactKind, ImpactModel
from repro.topology.devices import DeviceType


@dataclass(frozen=True)
class InjectionResult:
    """One injection and its observed outcome."""

    failed_devices: Tuple[str, ...]
    worst_kind: ImpactKind
    affected_services: Tuple[str, ...]

    @property
    def survived(self) -> bool:
        """No downtime anywhere: the fleet tolerated the injection."""
        return self.worst_kind is not ImpactKind.DOWNTIME


@dataclass
class FaultInjector:
    """Runs injections against an impact model."""

    model: ImpactModel
    results: List[InjectionResult] = field(default_factory=list)

    def inject(self, devices: Iterable[str]) -> InjectionResult:
        failed = tuple(sorted(devices))
        if not failed:
            raise ValueError("an injection needs at least one device")
        assessment: ImpactAssessment = self.model.assess(failed)
        result = InjectionResult(
            failed_devices=failed,
            worst_kind=assessment.worst_kind,
            affected_services=tuple(assessment.affected_services),
        )
        self.results.append(result)
        return result

    def sweep_single(self, network,
                     device_type: Optional[DeviceType] = None
                     ) -> List[InjectionResult]:
        """Fail every device (optionally of one type), one at a time."""
        names = sorted(
            d.name for d in network.devices.values()
            if device_type is None or d.device_type is device_type
        )
        return [self.inject([name]) for name in names]

    def sweep_pairs(self, network, device_type: DeviceType,
                    limit: int = 50, seed: int = 0
                    ) -> List[InjectionResult]:
        """Fail random pairs of same-type devices (correlated faults)."""
        names = sorted(
            d.name for d in network.devices.values()
            if d.device_type is device_type
        )
        pairs = list(itertools.combinations(names, 2))
        rng = random.Random(seed)
        rng.shuffle(pairs)
        return [self.inject(pair) for pair in pairs[:limit]]

    # -- summaries -------------------------------------------------------

    @property
    def survival_rate(self) -> float:
        if not self.results:
            raise ValueError("no injections run yet")
        return sum(r.survived for r in self.results) / len(self.results)

    def worst_results(self, k: int = 5) -> List[InjectionResult]:
        order = [ImpactKind.DOWNTIME, ImpactKind.LOST_CAPACITY,
                 ImpactKind.RETRIES, ImpactKind.INCREASED_LATENCY,
                 ImpactKind.NONE]
        rank = {kind: i for i, kind in enumerate(order)}
        return sorted(
            self.results,
            key=lambda r: (rank[r.worst_kind], -len(r.affected_services)),
        )[:k]
