"""Fleet population model.

The paper never discloses absolute fleet sizes ("orders of magnitude
larger than similar studies", section 5.3), so the reproduction uses a
scaled synthetic fleet whose *shape* matches every published constraint:

* the population mix and its evolution (Figure 11): RSWs dominate, the
  fabric types appear in 2015 and grow, CSWs/CSAs peak around 2015 and
  then decline;
* the 2017 mean-time-between-incident anchors (Figure 12): the ratio of
  population to incident count per type reproduces Core 39,495 h,
  RSW 9,958,828 h, fabric-average 2,636,818 h, and cluster-average
  822,518 h when combined with the calibrated incident counts in
  :mod:`repro.simulation.scenarios`;
* the CSA population is small enough that 2013/2014 incident counts
  exceed it (incident rates of 1.7 and 1.5, section 5.2);
* total switch count grows in proportion to employees (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.topology.devices import (
    CLUSTER_TYPES,
    FABRIC_TYPES,
    DeviceType,
    NetworkDesign,
)

#: Hours in the paper's device-hours normalization (a 365-day year).
HOURS_PER_YEAR = 8760.0

#: Calibrated device counts per year.  See the module docstring for the
#: constraints each row satisfies.
_PAPER_POPULATIONS: Dict[int, Dict[DeviceType, int]] = {
    2011: {
        DeviceType.CORE: 120, DeviceType.CSA: 30, DeviceType.CSW: 4_000,
        DeviceType.ESW: 0, DeviceType.SSW: 0, DeviceType.FSW: 0,
        DeviceType.RSW: 20_000,
    },
    2012: {
        DeviceType.CORE: 180, DeviceType.CSA: 35, DeviceType.CSW: 7_000,
        DeviceType.ESW: 0, DeviceType.SSW: 0, DeviceType.FSW: 0,
        DeviceType.RSW: 35_000,
    },
    2013: {
        DeviceType.CORE: 260, DeviceType.CSA: 40, DeviceType.CSW: 11_000,
        DeviceType.ESW: 0, DeviceType.SSW: 0, DeviceType.FSW: 0,
        DeviceType.RSW: 55_000,
    },
    2014: {
        DeviceType.CORE: 380, DeviceType.CSA: 60, DeviceType.CSW: 17_000,
        DeviceType.ESW: 0, DeviceType.SSW: 0, DeviceType.FSW: 0,
        DeviceType.RSW: 90_000,
    },
    2015: {
        DeviceType.CORE: 540, DeviceType.CSA: 100, DeviceType.CSW: 26_000,
        DeviceType.ESW: 400, DeviceType.SSW: 500, DeviceType.FSW: 2_000,
        DeviceType.RSW: 130_000,
    },
    2016: {
        DeviceType.CORE: 720, DeviceType.CSA: 90, DeviceType.CSW: 25_000,
        DeviceType.ESW: 1_200, DeviceType.SSW: 1_500, DeviceType.FSW: 8_000,
        DeviceType.RSW: 160_000,
    },
    2017: {
        DeviceType.CORE: 920, DeviceType.CSA: 80, DeviceType.CSW: 24_900,
        DeviceType.ESW: 3_500, DeviceType.SSW: 4_000, DeviceType.FSW: 18_000,
        DeviceType.RSW: 190_952,
    },
}


@dataclass(frozen=True)
class FleetSnapshot:
    """Active device counts for a single year."""

    year: int
    counts: Dict[DeviceType, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def count(self, device_type: DeviceType) -> int:
        return self.counts.get(device_type, 0)

    def fraction(self, device_type: DeviceType) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return self.count(device_type) / total

    def device_hours(self, device_type: DeviceType) -> float:
        """Device-hours contributed by a type over the year."""
        return self.count(device_type) * HOURS_PER_YEAR

    def design_count(self, design: NetworkDesign) -> int:
        types = CLUSTER_TYPES if design is NetworkDesign.CLUSTER else FABRIC_TYPES
        if design is NetworkDesign.SHARED:
            raise ValueError("SHARED is not a countable design")
        return sum(self.count(t) for t in types)


@dataclass
class FleetModel:
    """Per-year fleet snapshots with the paper's normalization helpers."""

    snapshots: Dict[int, FleetSnapshot] = field(default_factory=dict)

    @property
    def years(self) -> List[int]:
        return sorted(self.snapshots)

    def snapshot(self, year: int) -> FleetSnapshot:
        try:
            return self.snapshots[year]
        except KeyError:
            raise KeyError(f"no fleet snapshot for year {year}") from None

    def count(self, year: int, device_type: DeviceType) -> int:
        return self.snapshot(year).count(device_type)

    def total(self, year: int) -> int:
        return self.snapshot(year).total

    def fraction(self, year: int, device_type: DeviceType) -> float:
        return self.snapshot(year).fraction(device_type)

    def device_hours(self, year: int, device_type: DeviceType) -> float:
        return self.snapshot(year).device_hours(device_type)

    def design_count(self, year: int, design: NetworkDesign) -> int:
        return self.snapshot(year).design_count(design)

    def normalized_total(self, year: int) -> float:
        """Total switches normalized to the largest year (Figures 6, 14)."""
        peak = max(self.total(y) for y in self.years)
        if peak == 0:
            return 0.0
        return self.total(year) / peak

    def add_snapshot(self, snapshot: FleetSnapshot) -> None:
        if snapshot.year in self.snapshots:
            raise ValueError(f"duplicate snapshot for year {snapshot.year}")
        self.snapshots[snapshot.year] = snapshot


def paper_fleet(scale: float = 1.0, years: Iterable[int] = ()) -> FleetModel:
    """The calibrated 2011-2017 fleet, optionally scaled.

    ``scale`` multiplies every count (rounding to the nearest device);
    it exists so tests can run tiny fleets through the same model.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    wanted = set(years) or set(_PAPER_POPULATIONS)
    unknown = wanted - set(_PAPER_POPULATIONS)
    if unknown:
        raise KeyError(f"no calibrated populations for years {sorted(unknown)}")
    model = FleetModel()
    for year in sorted(wanted):
        counts = {
            t: int(round(n * scale))
            for t, n in _PAPER_POPULATIONS[year].items()
        }
        model.add_snapshot(FleetSnapshot(year=year, counts=counts))
    return model
