"""Employee headcount series (Figure 6 denominator).

Section 5.3 tests whether more engineers working on network devices
led to more SEVs, using the publicly available full-time employee
counts [71] as a proxy for engineers.  The series is public input
data, so carrying it here (via :mod:`repro.paperdata`) does not leak
any result the pipeline is supposed to recover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro import paperdata


@dataclass
class EmployeeModel:
    """Per-year employee counts with interpolation."""

    by_year: Dict[int, int] = field(default_factory=dict)

    @property
    def years(self) -> List[int]:
        return sorted(self.by_year)

    def count(self, year: int) -> int:
        if year in self.by_year:
            return self.by_year[year]
        years = self.years
        if not years:
            raise KeyError("employee model is empty")
        if year < years[0] or year > years[-1]:
            raise KeyError(f"year {year} outside employee series "
                           f"{years[0]}-{years[-1]}")
        # Linear interpolation between the surrounding known years.
        lo = max(y for y in years if y < year)
        hi = min(y for y in years if y > year)
        frac = (year - lo) / (hi - lo)
        return int(round(self.by_year[lo]
                         + frac * (self.by_year[hi] - self.by_year[lo])))

    def normalized(self, year: int) -> float:
        peak = max(self.by_year.values())
        return self.count(year) / peak


def paper_employees() -> EmployeeModel:
    """The public 2011-2017 headcount series used by Figure 6."""
    return EmployeeModel(by_year=dict(paperdata.EMPLOYEES_BY_YEAR))
