"""Fleet population substrate.

The paper normalizes nearly every intra data center figure by the
number of active devices of each type in each year (Figures 3, 5, 10,
11) and correlates reliability with fleet growth (Figures 6, 14).
This package models that fleet: per-type populations per year, and the
public employee-count series used as the Figure 6 denominator.
"""

from repro.fleet.population import (
    FleetModel,
    FleetSnapshot,
    HOURS_PER_YEAR,
    paper_fleet,
)
from repro.fleet.employees import EmployeeModel, paper_employees

__all__ = [
    "EmployeeModel",
    "FleetModel",
    "FleetSnapshot",
    "HOURS_PER_YEAR",
    "paper_employees",
    "paper_fleet",
]
