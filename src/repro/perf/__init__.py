"""Performance measurement toolkit.

Phase timers and events/s counters (:mod:`repro.perf.timers`), JSON
benchmark records with environment capture
(:mod:`repro.perf.record`), and the built-in benchmark suite behind
``python -m repro bench`` (:mod:`repro.perf.bench`).  Records land in
``benchmarks/out/*.json`` so every PR can report a comparable
performance trajectory alongside the paper artifacts.

Quickstart::

    from repro.perf import PhaseTimer

    timer = PhaseTimer()
    with timer.phase("ingest") as p:
        p.events = store.bulk_load(reports)
    print(f"{timer['ingest'].events_per_s:,.0f} rows/s")
"""

from repro.perf.bench import (
    bench_backbone,
    bench_fold_matrix,
    bench_grid,
    bench_ingest,
    bench_partitioned_scan,
    bench_serve,
    bench_stream_throughput,
    bench_survivability,
    run_bench_suite,
)
from repro.perf.record import (
    BenchRecord,
    environment,
    load_record,
    write_record,
)
from repro.perf.timers import Phase, PhaseTimer, events_per_second

__all__ = [
    "BenchRecord",
    "Phase",
    "PhaseTimer",
    "bench_backbone",
    "bench_fold_matrix",
    "bench_grid",
    "bench_ingest",
    "bench_partitioned_scan",
    "bench_serve",
    "bench_stream_throughput",
    "bench_survivability",
    "environment",
    "events_per_second",
    "load_record",
    "run_bench_suite",
    "write_record",
]
