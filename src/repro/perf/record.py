"""JSON benchmark records.

A :class:`BenchRecord` is one benchmark result in a stable, diffable
shape: the benchmark's name, its parameters, the measured metrics, the
per-phase timings, and enough environment (CPU count, Python,
platform) to interpret the numbers.  Records serialize to JSON under
``benchmarks/out/`` so every PR can report a comparable performance
trajectory — the same role the rendered ``.txt`` artifacts play for
the paper's tables.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Union

FORMAT = "repro.perf-record/1"

PathLike = Union[str, Path]


def environment() -> Dict[str, Any]:
    """The measurement environment a record should carry."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "cpu_count": os.cpu_count() or 1,
    }


@dataclass
class BenchRecord:
    """One benchmark result, JSON-serializable and comparable."""

    name: str
    params: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    phases: List[Dict[str, Any]] = field(default_factory=list)
    env: Dict[str, Any] = field(default_factory=environment)
    format: str = FORMAT

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": self.format,
            "name": self.name,
            "params": self.params,
            "metrics": self.metrics,
            "phases": self.phases,
            "env": self.env,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "BenchRecord":
        if payload.get("format") != FORMAT:
            raise ValueError(
                f"not a perf record: {payload.get('format')!r}"
            )
        return cls(
            name=payload["name"],
            params=dict(payload.get("params", {})),
            metrics=dict(payload.get("metrics", {})),
            phases=list(payload.get("phases", [])),
            env=dict(payload.get("env", {})),
        )


def write_record(record: BenchRecord, out_dir: PathLike) -> Path:
    """Write ``<out_dir>/<name>.json``; returns the path."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{record.name}.json"
    path.write_text(record.to_json() + "\n")
    return path


def load_record(path: PathLike) -> BenchRecord:
    """Read a record written by :func:`write_record`."""
    return BenchRecord.from_dict(json.loads(Path(path).read_text()))
