"""Phase timers and throughput counters.

Measurement primitives for the benchmark harness: a :class:`Phase` is
one timed region (optionally with an event count, giving events/s), a
:class:`PhaseTimer` collects phases in order, and
:func:`events_per_second` is the shared rate arithmetic.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


def events_per_second(events: int, seconds: float) -> float:
    """Throughput, zero when no time was observed (never divides by 0)."""
    if seconds <= 0.0:
        return 0.0
    return events / seconds


@dataclass
class Phase:
    """One timed region of a benchmark run."""

    name: str
    seconds: float = 0.0
    #: Events processed in the phase; set inside the ``with`` block
    #: (or after) so the rate can be derived.
    events: int = 0

    @property
    def events_per_s(self) -> float:
        return events_per_second(self.events, self.seconds)

    def as_dict(self) -> Dict[str, float]:
        payload = {"name": self.name, "seconds": self.seconds}
        if self.events:
            payload["events"] = self.events
            payload["events_per_s"] = self.events_per_s
        return payload


@dataclass
class PhaseTimer:
    """Collects named, timed phases of one benchmark run.

    Usage::

        timer = PhaseTimer()
        with timer.phase("generate") as p:
            aggregates = generate_aggregates(scenario, jobs=4)
            p.events = aggregates.events
        print(timer.total_seconds, timer["generate"].events_per_s)
    """

    phases: List[Phase] = field(default_factory=list)

    @contextmanager
    def phase(self, name: str, events: int = 0) -> Iterator[Phase]:
        entry = Phase(name=name, events=events)
        start = time.perf_counter()
        try:
            yield entry
        finally:
            entry.seconds = time.perf_counter() - start
            self.phases.append(entry)

    def __getitem__(self, name: str) -> Phase:
        for entry in self.phases:
            if entry.name == name:
                return entry
        raise KeyError(f"no phase named {name!r}")

    def get(self, name: str) -> Optional[Phase]:
        try:
            return self[name]
        except KeyError:
            return None

    @property
    def total_seconds(self) -> float:
        return sum(entry.seconds for entry in self.phases)

    @property
    def total_events(self) -> int:
        return sum(entry.events for entry in self.phases)

    def as_dicts(self) -> List[Dict[str, float]]:
        return [entry.as_dict() for entry in self.phases]
