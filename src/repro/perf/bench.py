"""The built-in benchmark suite (``python -m repro bench``).

Four hot paths, each measured with :mod:`repro.perf` primitives and
recorded as a JSON :class:`~repro.perf.record.BenchRecord`:

``stream_throughput``
    sharded parallel corpus generation (cells -> aggregates -> merge)
    at several worker counts, including ``jobs="auto"``; reports
    events/s per worker count and the jobs=4 speedup over serial.
``ingest_bulk_load``
    loading one corpus into an on-disk :class:`~repro.incidents.store.SEVStore`
    three ways: row-wise ``insert`` (one transaction per row — the
    historical behavior), ``insert_many`` (one transaction), and
    ``bulk_load`` (indexes dropped, tuned PRAGMAs, ``executemany``
    batches); plus the tiered store's ``ingest`` routing the same rows
    to per-(year, region) SQLite shards at multi-shard scale.  Reports
    rows/s per method and the bulk speedup.
``partitioned_scan``
    the full intra report over a monolithic store vs a tiered
    partitioned store (half its history demoted to the gzip cold
    tier), on the streaming and sharded backends; asserts every
    variant's ``report_digest`` is bit-identical and reports the
    partitioned-scan overhead.
``fold_matrix``
    the fold engine across every execution strategy (per-row serial
    fold, SQL batch, columnar, sharded and columnar on the shared
    process pool) × both storage layouts; asserts all ten digests
    are bit-identical and reports the columnar speedup over the
    serial fold plus parallel efficiency against ``cpu_count``.
``backbone_report``
    the section 6 ticket-domain report answered by every runtime
    backend — batch (monitor path), streaming fold, sharded fold
    (serial and process-parallel) — plus a content-addressed cached
    re-run; reports tickets/s per backend and the cache speedup, and
    asserts all backends agree bit for bit.
``serve_latency``
    a live :mod:`repro.serve` server under concurrent readers plus one
    job-submitting writer; reports requests/s and p50/p99 latency per
    endpoint with zero tolerated errors.
``grid_sweep``
    a small what-if lattice expanded by :class:`~repro.scenarios.GridSpec`
    and run through :class:`~repro.scenarios.GridRunner` on the batch,
    sharded, and columnar backends (fresh :class:`~repro.runtime.ResultCache`
    per backend) followed by a warm re-run; reports cells/s per backend,
    the cached re-run's cache-hit ratio, and asserts the grid's
    ``summary_digest`` is bit-identical across backends.
``survivability``
    the correlated-failure survivability study over one generated
    trial corpus, answered by the batch, sharded (process-parallel),
    and columnar backends plus a warm cached re-run; asserts every
    backend's ``report_digest`` is bit-identical and reports rows/s
    per backend and the cache-hit ratio.

The suite prints rendered tables and writes one record per benchmark
to the output directory, so successive PRs accumulate a comparable
performance trajectory.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.perf.record import BenchRecord, write_record
from repro.perf.timers import events_per_second

#: Default corpus scale for the full suite (the scale the throughput
#: acceptance numbers are quoted at) and for ``--quick``.
FULL_SCALE = 4.0
QUICK_SCALE = 1.0

_JOBS_FULL: Tuple = (1, 2, 4, "auto")
_JOBS_QUICK: Tuple = (1, 2, "auto")


def bench_stream_throughput(
    seed: int = 2,
    scale: float = FULL_SCALE,
    jobs_list: Sequence = _JOBS_FULL,
    rounds: int = 3,
) -> BenchRecord:
    """Measure sharded generation throughput per worker count.

    Each worker count runs ``rounds`` times and keeps the best time —
    the steady state the reused worker pool is built for.  The record
    also carries the cross-jobs digest check: every worker count must
    produce bit-identical aggregates.
    """
    from repro.simulation.scenarios import paper_scenario
    from repro.stream import generate_aggregates
    from repro.stream.sharding import resolve_jobs, shutdown_pool

    scenario = paper_scenario(seed=seed, scale=scale)
    per_jobs = []
    digests = set()
    events = 0
    for jobs in jobs_list:
        best = float("inf")
        for _ in range(max(1, rounds)):
            start = time.perf_counter()
            aggregates = generate_aggregates(
                scenario, jobs=jobs, use_processes=jobs != 1
            )
            best = min(best, time.perf_counter() - start)
        events = aggregates.events
        digests.add(aggregates.digest())
        per_jobs.append({
            "jobs": jobs,
            "resolved_jobs": resolve_jobs(jobs, total_weight=events),
            "seconds": best,
            "events": events,
            "events_per_s": events_per_second(events, best),
        })
    shutdown_pool()

    by_jobs = {entry["jobs"]: entry for entry in per_jobs}
    metrics = {
        "events": events,
        "digests_identical": len(digests) == 1,
        "per_jobs": per_jobs,
    }
    if 1 in by_jobs:
        for jobs, entry in by_jobs.items():
            if jobs == 1:
                continue
            metrics[f"speedup_jobs{jobs}"] = (
                by_jobs[1]["seconds"] / entry["seconds"]
                if entry["seconds"] > 0 else 0.0
            )
    return BenchRecord(
        name="stream_throughput",
        params={
            "seed": seed, "scale": scale,
            "jobs": list(jobs_list), "rounds": rounds,
        },
        metrics=metrics,
    )


def bench_ingest(
    seed: int = 2,
    scale: float = FULL_SCALE,
    directory: Optional[Path] = None,
) -> BenchRecord:
    """Measure SEV store ingestion: row-wise vs batched vs bulk.

    Every variant loads the identical report list into a fresh
    *on-disk* database (durability costs are the point), and the
    loaded stores are checked for identical row counts.
    """
    from repro.incidents.store import SEVStore
    from repro.simulation.generator import iter_scenario_reports
    from repro.simulation.scenarios import paper_scenario

    scenario = paper_scenario(seed=seed, scale=scale)
    reports = list(iter_scenario_reports(scenario))

    def timed_load(name: str, load) -> dict:
        with tempfile.TemporaryDirectory() as tmp:
            with SEVStore(str(Path(tmp) / f"{name}.db")) as store:
                start = time.perf_counter()
                load(store)
                seconds = time.perf_counter() - start
                rows = len(store)
        assert rows == len(reports)
        return {
            "method": name,
            "seconds": seconds,
            "rows": rows,
            "rows_per_s": events_per_second(rows, seconds),
        }

    def rowwise(store):
        for report in reports:
            store.insert(report)

    variants = [
        timed_load("insert_rowwise", rowwise),
        timed_load("insert_many", lambda s: s.insert_many(reports)),
        timed_load("bulk_load", lambda s: s.bulk_load(reports)),
    ]

    # The tiered store routes the same rows to per-(year, region)
    # SQLite shards — the multi-shard ingest path of repro.storage.
    from repro.storage import PartitionedSEVStore

    with tempfile.TemporaryDirectory() as tmp:
        store = PartitionedSEVStore.init(
            Path(tmp) / "tiered", meta={"seed": seed, "scale": scale}
        )
        start = time.perf_counter()
        store.ingest(reports)
        seconds = time.perf_counter() - start
        rows = len(store)
        partitions = len(store.partition_keys())
    assert rows == len(reports)
    variants.append({
        "method": "partitioned_ingest",
        "seconds": seconds,
        "rows": rows,
        "rows_per_s": events_per_second(rows, seconds),
        "partitions": partitions,
    })

    by_method = {entry["method"]: entry for entry in variants}
    bulk = by_method["bulk_load"]["seconds"]
    metrics = {
        "rows": len(reports),
        "partitions": partitions,
        "variants": variants,
        "bulk_speedup_vs_rowwise": (
            by_method["insert_rowwise"]["seconds"] / bulk
            if bulk > 0 else 0.0
        ),
        "bulk_speedup_vs_insert_many": (
            by_method["insert_many"]["seconds"] / bulk
            if bulk > 0 else 0.0
        ),
    }
    return BenchRecord(
        name="ingest_bulk_load",
        params={"seed": seed, "scale": scale},
        metrics=metrics,
    )


def bench_backbone(
    seed: int = 7,
    links_per_edge: int = 3,
    rounds: int = 3,
) -> BenchRecord:
    """Measure the backbone report across runtime backends.

    One ticket corpus, one :class:`~repro.runtime.RunContext`, and the
    identical section 6 report answered by each backend; every backend
    runs ``rounds`` times and keeps the best time.  A cached re-run
    (second pass against a warm :class:`~repro.runtime.ResultCache`)
    is timed separately — its corpus pass count is zero, so it bounds
    the price of the report plumbing itself.
    """
    from repro.backbone.monitor import BackboneMonitor
    from repro.runtime import ResultCache, RunContext, run_backbone_report
    from repro.simulation.backbone_sim import BackboneSimulator
    from repro.simulation.scenarios import paper_backbone_scenario

    corpus = BackboneSimulator(
        paper_backbone_scenario(seed=seed, links_per_edge=links_per_edge)
    ).run()
    monitor = BackboneMonitor(corpus.topology, corpus.tickets)
    context = RunContext(
        monitor=monitor, topology=corpus.topology,
        window_h=corpus.window_h, corpus_seed=seed,
    )
    tickets = len(corpus.tickets)

    backends = [
        ("batch", {}),
        ("stream", {}),
        ("sharded", {"jobs": 4}),
        ("sharded_processes", {"jobs": 4, "use_processes": True}),
    ]
    per_backend = []
    reports = {}
    for label, kwargs in backends:
        backend = "sharded" if label.startswith("sharded") else label
        best = float("inf")
        for _ in range(max(1, rounds)):
            start = time.perf_counter()
            report = run_backbone_report(context, backend=backend, **kwargs)
            best = min(best, time.perf_counter() - start)
        reports[label] = report
        per_backend.append({
            "backend": label,
            "seconds": best,
            "tickets": tickets,
            "tickets_per_s": events_per_second(tickets, best),
        })

    cache = ResultCache()
    run_backbone_report(context, backend="stream", cache=cache)
    best_cached = float("inf")
    for _ in range(max(1, rounds)):
        start = time.perf_counter()
        cached = run_backbone_report(context, backend="stream", cache=cache)
        best_cached = min(best_cached, time.perf_counter() - start)
    reports["cached"] = cached
    per_backend.append({
        "backend": "cached",
        "seconds": best_cached,
        "tickets": tickets,
        "tickets_per_s": events_per_second(tickets, best_cached),
    })

    by_backend = {entry["backend"]: entry for entry in per_backend}
    stream_s = by_backend["stream"]["seconds"]
    metrics = {
        "tickets": tickets,
        "window_h": corpus.window_h,
        "backends_identical": all(
            report == reports["batch"] for report in reports.values()
        ),
        "per_backend": per_backend,
        "cache_speedup_vs_stream": (
            stream_s / best_cached if best_cached > 0 else 0.0
        ),
    }
    return BenchRecord(
        name="backbone_report",
        params={
            "seed": seed, "links_per_edge": links_per_edge,
            "rounds": rounds,
        },
        metrics=metrics,
    )


def bench_partitioned_scan(
    seed: int = 2,
    scale: float = FULL_SCALE,
    rounds: int = 3,
) -> BenchRecord:
    """Measure the intra report over monolithic vs partitioned storage.

    One corpus, stored twice: the monolithic SQLite file and a tiered
    partitioned store with roughly half its history demoted to the
    gzip cold tier.  The identical report runs over each on the
    streaming backend (and over the partitioned store on the sharded
    backend, whose shards are the manifest's partitions); every
    variant must produce the same ``report_digest`` bit for bit — the
    storage refactor's core acceptance criterion, measured rather
    than assumed.
    """
    from repro.faultline.oracle import report_digest
    from repro.runtime import RunContext, run_intra_report
    from repro.simulation.generator import IntraSimulator
    from repro.simulation.scenarios import paper_scenario
    from repro.storage import PartitionedSEVStore

    scenario = paper_scenario(seed=seed, scale=scale)
    mono = IntraSimulator(scenario).run()
    rows = len(mono)

    def timed(label: str, target, backend: str, **kwargs) -> dict:
        best = float("inf")
        digest = None
        for _ in range(max(1, rounds)):
            context = RunContext(
                store=target, fleet=scenario.fleet, corpus_seed=seed
            )
            start = time.perf_counter()
            report = run_intra_report(context, backend=backend, **kwargs)
            best = min(best, time.perf_counter() - start)
            digest = report_digest(report)
        return {
            "variant": label,
            "backend": backend,
            "seconds": best,
            "rows": rows,
            "rows_per_s": events_per_second(rows, best),
            "report_digest": digest,
        }

    with tempfile.TemporaryDirectory() as tmp:
        store = PartitionedSEVStore.init(
            Path(tmp) / "tiered", meta={"seed": seed, "scale": scale}
        )
        store.ingest(mono.all_reports())
        years = store.years()
        if len(years) > 1:
            store.compact(keep_hot_years=max(1, len(years) // 2))
        tiers = store.status()["tiers"]
        variants = [
            timed("monolithic_stream", mono, "stream"),
            timed("partitioned_stream", store, "stream"),
            timed("partitioned_sharded", store, "sharded", jobs=4),
        ]

    by_variant = {entry["variant"]: entry for entry in variants}
    mono_s = by_variant["monolithic_stream"]["seconds"]
    part_s = by_variant["partitioned_stream"]["seconds"]
    metrics = {
        "rows": rows,
        "partitions": tiers["hot"] + tiers["cold"],
        "tiers": tiers,
        "digests_identical": len(
            {entry["report_digest"] for entry in variants}
        ) == 1,
        "per_variant": variants,
        "partitioned_overhead": part_s / mono_s if mono_s > 0 else 0.0,
    }
    return BenchRecord(
        name="partitioned_scan",
        params={"seed": seed, "scale": scale, "rounds": rounds},
        metrics=metrics,
    )


def bench_fold_matrix(
    seed: int = 2,
    scale: float = FULL_SCALE,
    jobs: int = 4,
    rounds: int = 3,
) -> BenchRecord:
    """Measure the fold engine across execution strategies and layouts.

    One corpus, stored twice — the monolithic SQLite file and a tiered
    partitioned store with roughly half its history demoted to the
    gzip cold tier — answered by every fold strategy the runtime
    offers:

    ``serial_fold``
        the per-row reference fold (stream backend) — the baseline
        every speedup is quoted against
    ``batch_sql``
        per-analysis SQL (per-partition pushdown on the tiered store)
    ``columnar``
        array-at-a-time folds over ``ColumnBatch`` chunks
    ``sharded_processes``
        row shards folded on the shared worker pool
    ``columnar_processes``
        chunk-framed column batches shipped to the shared worker pool

    Every variant must produce the identical ``report_digest`` — the
    columnar engine's core acceptance criterion, measured rather than
    assumed.  The record carries throughput per variant, the columnar
    speedup over the serial fold, and parallel efficiency against the
    recorded ``cpu_count``.
    """
    from repro.faultline.oracle import report_digest
    from repro.runtime import (
        RunContext,
        run_intra_report,
        shutdown_executor_pool,
    )
    from repro.simulation.generator import IntraSimulator
    from repro.simulation.scenarios import paper_scenario
    from repro.storage import PartitionedSEVStore

    scenario = paper_scenario(seed=seed, scale=scale)
    mono = IntraSimulator(scenario).run()
    rows = len(mono)

    strategies = [
        ("serial_fold", "stream", {}),
        ("batch_sql", "batch", {}),
        ("columnar", "columnar", {}),
        ("sharded_processes", "sharded",
         {"jobs": jobs, "use_processes": True}),
        ("columnar_processes", "columnar",
         {"jobs": jobs, "use_processes": True}),
    ]

    def timed(layout: str, target, strategy: str, backend: str,
              kwargs: dict) -> dict:
        best = float("inf")
        digest = None
        for _ in range(max(1, rounds)):
            context = RunContext(
                store=target, fleet=scenario.fleet, corpus_seed=seed
            )
            start = time.perf_counter()
            report = run_intra_report(context, backend=backend, **kwargs)
            best = min(best, time.perf_counter() - start)
            digest = report_digest(report)
        return {
            "layout": layout,
            "strategy": strategy,
            "backend": backend,
            "seconds": best,
            "rows": rows,
            "rows_per_s": events_per_second(rows, best),
            "report_digest": digest,
        }

    with tempfile.TemporaryDirectory() as tmp:
        store = PartitionedSEVStore.init(
            Path(tmp) / "tiered", meta={"seed": seed, "scale": scale}
        )
        store.ingest(mono.all_reports())
        years = store.years()
        if len(years) > 1:
            store.compact(keep_hot_years=max(1, len(years) // 2))
        tiers = store.status()["tiers"]
        variants = [
            timed(layout, target, strategy, backend, kwargs)
            for layout, target in (
                ("monolithic", mono), ("partitioned", store),
            )
            for strategy, backend, kwargs in strategies
        ]
    shutdown_executor_pool()

    def seconds(layout: str, strategy: str) -> float:
        for entry in variants:
            if entry["layout"] == layout and entry["strategy"] == strategy:
                return entry["seconds"]
        raise KeyError((layout, strategy))

    import os

    cores = os.cpu_count() or 1
    serial_s = seconds("monolithic", "serial_fold")
    columnar_s = seconds("monolithic", "columnar")
    parallel_s = seconds("monolithic", "columnar_processes")
    parallel_speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
    metrics = {
        "rows": rows,
        "jobs": jobs,
        "cores": cores,
        "partitions": tiers["hot"] + tiers["cold"],
        "tiers": tiers,
        "digests_identical": len(
            {entry["report_digest"] for entry in variants}
        ) == 1,
        "per_variant": variants,
        "columnar_speedup_vs_serial": (
            serial_s / columnar_s if columnar_s > 0 else 0.0
        ),
        "batch_sql_speedup_vs_serial": (
            serial_s / seconds("monolithic", "batch_sql")
            if seconds("monolithic", "batch_sql") > 0 else 0.0
        ),
        "parallel_speedup_vs_serial": parallel_speedup,
        "parallel_efficiency_vs_cores": parallel_speedup / cores,
    }
    return BenchRecord(
        name="fold_matrix",
        params={
            "seed": seed, "scale": scale, "jobs": jobs, "rounds": rounds,
        },
        metrics=metrics,
    )


def bench_grid(
    seed: int = 2,
    scale: float = 0.1,
    rounds: int = 1,
) -> BenchRecord:
    """Measure the what-if grid runner across runtime backends.

    One six-cell lattice (three fabric-rollout years × two CORE hazard
    multipliers) expanded once and run through a fresh
    :class:`~repro.runtime.ResultCache` on the batch, sharded
    (process-parallel), and columnar backends, then re-run warm on the
    batch backend.  Reports cells/s per backend and the warm re-run's
    cache-hit ratio, and asserts every backend's ``summary_digest`` is
    bit-identical — the grid runner's core acceptance criterion,
    measured rather than assumed.
    """
    from repro.runtime import ResultCache, shutdown_executor_pool
    from repro.scenarios import GridRunner, GridSpec, preset

    base = preset("paper").with_updates(seed=seed, scale=scale)
    grid = GridSpec(
        base=base,
        axes={
            "fabric_year": [2015, 2016, 2017],
            "hazard.CORE": [1.0, 1.5],
        },
    )
    cells = grid.cell_count()

    backends = [
        ("batch", {}),
        ("sharded_processes", {"jobs": 2, "use_processes": True}),
        ("columnar", {}),
    ]
    per_backend = []
    digests = set()
    warm_cache = None
    for label, kwargs in backends:
        backend = "sharded" if label.startswith("sharded") else label
        best = float("inf")
        digest = None
        for _ in range(max(1, rounds)):
            cache = ResultCache()
            runner = GridRunner(backend=backend, cache=cache, **kwargs)
            start = time.perf_counter()
            report = runner.run(grid)
            best = min(best, time.perf_counter() - start)
            digest = report["summary_digest"]
            if label == "batch":
                # Keep the populated cache for the warm re-run below.
                warm_cache = cache
        digests.add(digest)
        per_backend.append({
            "backend": label,
            "seconds": best,
            "cells": cells,
            "cells_per_s": events_per_second(cells, best),
            "summary_digest": digest,
        })
    shutdown_executor_pool()

    runner = GridRunner(backend="batch", cache=warm_cache)
    start = time.perf_counter()
    warm = runner.run(grid)
    warm_s = time.perf_counter() - start
    hits = warm["cache"]["cell_hits"]
    misses = warm["cache"]["cell_misses"]
    hit_ratio = hits / (hits + misses) if hits + misses else 0.0
    digests.add(warm["summary_digest"])
    per_backend.append({
        "backend": "cached",
        "seconds": warm_s,
        "cells": cells,
        "cells_per_s": events_per_second(cells, warm_s),
        "summary_digest": warm["summary_digest"],
    })

    by_backend = {entry["backend"]: entry for entry in per_backend}
    batch_s = by_backend["batch"]["seconds"]
    metrics = {
        "cells": cells,
        "axes": grid.axis_paths,
        "digests_identical": len(digests) == 1,
        "per_backend": per_backend,
        "cache_hit_ratio": hit_ratio,
        "cache_speedup_vs_batch": batch_s / warm_s if warm_s > 0 else 0.0,
    }
    return BenchRecord(
        name="grid_sweep",
        params={"seed": seed, "scale": scale, "rounds": rounds},
        metrics=metrics,
    )


def bench_survivability(
    seed: int = 2,
    trials: int = 24,
    rounds: int = 1,
) -> BenchRecord:
    """Measure the survivability study across runtime backends.

    One correlated-failure trial corpus (generated once, timed
    separately) answered by the batch, sharded (process-parallel), and
    columnar backends through a fresh
    :class:`~repro.runtime.ResultCache`, then re-run warm on the batch
    backend.  Reports rows/s per backend and the warm re-run's
    cache-hit ratio, and asserts every backend's ``report_digest`` is
    bit-identical — the survivability family's core acceptance
    criterion, measured rather than assumed.
    """
    from repro.faultline.oracle import report_digest
    from repro.runtime import ResultCache, RunContext, shutdown_executor_pool
    from repro.survivability import generate_trials, run_survivability_report

    start = time.perf_counter()
    corpus = generate_trials(seed=seed, correlated={"trials": trials})
    generate_s = time.perf_counter() - start
    rows = len(corpus)
    context = RunContext(trials=corpus, corpus_seed=seed)

    backends = [
        ("batch", {}),
        ("sharded_processes", {"jobs": 2, "use_processes": True}),
        ("columnar", {}),
    ]
    per_backend = []
    digests = set()
    warm_cache = None
    for label, kwargs in backends:
        backend = "sharded" if label.startswith("sharded") else label
        best = float("inf")
        digest = None
        for _ in range(max(1, rounds)):
            cache = ResultCache()
            start = time.perf_counter()
            report = run_survivability_report(
                context, backend=backend, cache=cache, **kwargs
            )
            best = min(best, time.perf_counter() - start)
            digest = report_digest(report)
            if label == "batch":
                # Keep the populated cache for the warm re-run below.
                warm_cache = cache
        digests.add(digest)
        per_backend.append({
            "backend": label,
            "seconds": best,
            "rows": rows,
            "rows_per_s": events_per_second(rows, best),
            "report_digest": digest,
        })
    shutdown_executor_pool()

    hits_before = warm_cache.hits
    misses_before = warm_cache.misses
    start = time.perf_counter()
    warm = run_survivability_report(
        context, backend="batch", cache=warm_cache
    )
    warm_s = time.perf_counter() - start
    hits = warm_cache.hits - hits_before
    misses = warm_cache.misses - misses_before
    hit_ratio = hits / (hits + misses) if hits + misses else 0.0
    digests.add(report_digest(warm))
    per_backend.append({
        "backend": "cached",
        "seconds": warm_s,
        "rows": rows,
        "rows_per_s": events_per_second(rows, warm_s),
        "report_digest": report_digest(warm),
    })

    by_backend = {entry["backend"]: entry for entry in per_backend}
    batch_s = by_backend["batch"]["seconds"]
    metrics = {
        "rows": rows,
        "generate_seconds": generate_s,
        "digests_identical": len(digests) == 1,
        "per_backend": per_backend,
        "cache_hit_ratio": hit_ratio,
        "cache_speedup_vs_batch": batch_s / warm_s if warm_s > 0 else 0.0,
    }
    return BenchRecord(
        name="survivability",
        params={"seed": seed, "trials": trials, "rounds": rounds},
        metrics=metrics,
    )


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


def bench_serve(
    seed: int = 1,
    scale: float = 0.25,
    readers: int = 8,
    requests_per_reader: int = 25,
    writer_jobs: int = 3,
) -> BenchRecord:
    """Measure the serving layer under concurrent readers + a live writer.

    Starts a real :class:`~repro.serve.ServeApp` (pre-warmed cache) on
    an ephemeral port, then drives it with ``readers`` threads issuing
    HTTP GETs round-robin across the report, figure, table, and stats
    endpoints while one writer thread POSTs ``writer_jobs`` report
    jobs — the worst realistic mix: every read should be a cache hit
    even while the job workers grind.  Reports requests/s and p50/p99
    latency overall and per endpoint; any non-200 response counts as
    an error (and the suite treats errors as a failed run).
    """
    import json as json_mod
    import threading
    import urllib.request

    from repro.serve import ServeApp

    endpoints = [
        "/reports/intra",
        "/reports/backbone",
        "/figures/fig3",
        "/figures/fig15",
        "/tables/table2",
        "/stats",
        "/healthz",
    ]
    samples: List[Tuple[str, float]] = []
    errors: List[str] = []
    record_lock = threading.Lock()

    with ServeApp(seed=seed, scale=scale, prewarm=True) as app:
        base = app.url

        def read_worker(worker: int) -> None:
            for i in range(requests_per_reader):
                endpoint = endpoints[(worker + i) % len(endpoints)]
                start = time.perf_counter()
                try:
                    with urllib.request.urlopen(base + endpoint) as resp:
                        resp.read()
                        ok = resp.status == 200
                        problem = f"{endpoint}: HTTP {resp.status}"
                except Exception as exc:  # noqa: BLE001 - recorded below
                    ok = False
                    problem = f"{endpoint}: {exc}"
                ms = (time.perf_counter() - start) * 1e3
                with record_lock:
                    if ok:
                        samples.append((endpoint, ms))
                    else:
                        errors.append(problem)

        def write_worker() -> None:
            payload = json_mod.dumps({
                "kind": "report",
                "params": {"study": "intra", "seed": seed, "scale": 0.1},
            }).encode()
            for _ in range(writer_jobs):
                request = urllib.request.Request(
                    base + "/jobs", data=payload,
                    headers={"Content-Type": "application/json"},
                )
                try:
                    with urllib.request.urlopen(request) as resp:
                        resp.read()
                except Exception as exc:  # noqa: BLE001 - recorded below
                    with record_lock:
                        errors.append(f"POST /jobs: {exc}")

        threads = [
            threading.Thread(target=read_worker, args=(worker,))
            for worker in range(readers)
        ]
        writer = threading.Thread(target=write_worker)
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        writer.start()
        for thread in threads:
            thread.join()
        writer.join()
        seconds = time.perf_counter() - start
        app.queue.join(timeout=300)
        cache_stats = app.state.cache.stats()
        job_stats = app.queue.stats()

    latencies = sorted(ms for _, ms in samples)
    per_endpoint = {}
    for endpoint in endpoints:
        subset = sorted(ms for e, ms in samples if e == endpoint)
        per_endpoint[endpoint] = {
            "requests": len(subset),
            "p50_ms": _percentile(subset, 0.50),
            "p99_ms": _percentile(subset, 0.99),
        }
    metrics = {
        "requests": len(samples),
        "errors": len(errors),
        "error_samples": errors[:5],
        "seconds": seconds,
        "requests_per_s": events_per_second(len(samples), seconds),
        "p50_ms": _percentile(latencies, 0.50),
        "p99_ms": _percentile(latencies, 0.99),
        "per_endpoint": per_endpoint,
        "cache": cache_stats,
        "jobs": job_stats,
    }
    return BenchRecord(
        name="serve_latency",
        params={
            "seed": seed, "scale": scale, "readers": readers,
            "requests_per_reader": requests_per_reader,
            "writer_jobs": writer_jobs,
        },
        metrics=metrics,
    )


def render_stream_record(record: BenchRecord) -> str:
    from repro.viz.tables import format_table

    rows = [
        [
            str(entry["jobs"]),
            entry["resolved_jobs"],
            entry["events"],
            f"{entry['seconds']:.3f}",
            f"{entry['events_per_s']:,.0f}",
        ]
        for entry in record.metrics["per_jobs"]
    ]
    return format_table(
        ["Jobs", "Workers", "Events", "Seconds", "Events/sec"],
        rows,
        title=(f"Streaming generation throughput "
               f"(scale={record.params['scale']}, "
               f"cpus={record.env['cpu_count']})"),
    )


def render_ingest_record(record: BenchRecord) -> str:
    from repro.viz.tables import format_table

    bulk = {e["method"]: e for e in record.metrics["variants"]}
    bulk_s = bulk["bulk_load"]["seconds"]
    rows = [
        [
            entry["method"],
            entry["rows"],
            f"{entry['seconds']:.3f}",
            f"{entry['rows_per_s']:,.0f}",
            f"{entry['seconds'] / bulk_s:.1f}x" if bulk_s > 0 else "-",
        ]
        for entry in record.metrics["variants"]
    ]
    return format_table(
        ["Method", "Rows", "Seconds", "Rows/sec", "vs bulk"],
        rows,
        title=(f"SEV store ingest, on-disk "
               f"(scale={record.params['scale']})"),
    )


def render_partitioned_record(record: BenchRecord) -> str:
    from repro.viz.tables import format_table

    rows = [
        [
            entry["variant"],
            entry["backend"],
            entry["rows"],
            f"{entry['seconds']:.3f}",
            f"{entry['rows_per_s']:,.0f}",
        ]
        for entry in record.metrics["per_variant"]
    ]
    tiers = record.metrics["tiers"]
    return format_table(
        ["Variant", "Backend", "Rows", "Seconds", "Rows/sec"],
        rows,
        title=(f"Partitioned vs monolithic scan "
               f"({tiers['hot']} hot + {tiers['cold']} cold partitions, "
               f"identical={record.metrics['digests_identical']})"),
    )


def render_fold_matrix_record(record: BenchRecord) -> str:
    from repro.viz.tables import format_table

    rows = [
        [
            entry["layout"],
            entry["strategy"],
            entry["rows"],
            f"{entry['seconds']:.3f}",
            f"{entry['rows_per_s']:,.0f}",
        ]
        for entry in record.metrics["per_variant"]
    ]
    metrics = record.metrics
    return format_table(
        ["Layout", "Strategy", "Rows", "Seconds", "Rows/sec"],
        rows,
        title=(f"Fold matrix (scale={record.params['scale']}, "
               f"columnar {metrics['columnar_speedup_vs_serial']:.1f}x, "
               f"parallel {metrics['parallel_speedup_vs_serial']:.1f}x "
               f"on {metrics['cores']} cores, "
               f"identical={metrics['digests_identical']})"),
    )


def render_backbone_record(record: BenchRecord) -> str:
    from repro.viz.tables import format_table

    rows = [
        [
            entry["backend"],
            entry["tickets"],
            f"{entry['seconds']:.3f}",
            f"{entry['tickets_per_s']:,.0f}",
        ]
        for entry in record.metrics["per_backend"]
    ]
    return format_table(
        ["Backend", "Tickets", "Seconds", "Tickets/sec"],
        rows,
        title=(f"Backbone report across runtime backends "
               f"(seed={record.params['seed']}, "
               f"identical={record.metrics['backends_identical']})"),
    )


def render_grid_record(record: BenchRecord) -> str:
    from repro.viz.tables import format_table

    rows = [
        [
            entry["backend"],
            entry["cells"],
            f"{entry['seconds']:.3f}",
            f"{entry['cells_per_s']:,.1f}",
            entry["summary_digest"][:12],
        ]
        for entry in record.metrics["per_backend"]
    ]
    metrics = record.metrics
    return format_table(
        ["Backend", "Cells", "Seconds", "Cells/sec", "Summary digest"],
        rows,
        title=(f"What-if grid sweep (scale={record.params['scale']}, "
               f"cache hits {metrics['cache_hit_ratio']:.0%}, "
               f"identical={metrics['digests_identical']})"),
    )


def render_survivability_record(record: BenchRecord) -> str:
    from repro.viz.tables import format_table

    rows = [
        [
            entry["backend"],
            entry["rows"],
            f"{entry['seconds']:.3f}",
            f"{entry['rows_per_s']:,.1f}",
            entry["report_digest"][:12],
        ]
        for entry in record.metrics["per_backend"]
    ]
    metrics = record.metrics
    return format_table(
        ["Backend", "Rows", "Seconds", "Rows/sec", "Report digest"],
        rows,
        title=(f"Survivability study "
               f"(trials={record.params['trials']}, "
               f"gen {metrics['generate_seconds']:.3f}s, "
               f"cache hits {metrics['cache_hit_ratio']:.0%}, "
               f"identical={metrics['digests_identical']})"),
    )


def render_serve_record(record: BenchRecord) -> str:
    from repro.viz.tables import format_table

    rows = [
        [
            endpoint,
            entry["requests"],
            f"{entry['p50_ms']:.1f}",
            f"{entry['p99_ms']:.1f}",
        ]
        for endpoint, entry in record.metrics["per_endpoint"].items()
    ]
    rows.append([
        "(all)",
        record.metrics["requests"],
        f"{record.metrics['p50_ms']:.1f}",
        f"{record.metrics['p99_ms']:.1f}",
    ])
    return format_table(
        ["Endpoint", "Requests", "p50 ms", "p99 ms"],
        rows,
        title=(f"Serve latency ({record.params['readers']} readers + "
               f"1 writer, {record.metrics['requests_per_s']:,.0f} req/s, "
               f"errors={record.metrics['errors']})"),
    )


def run_bench_suite(
    quick: bool = False,
    out_dir: Optional[Path] = None,
    seed: int = 2,
) -> List[BenchRecord]:
    """Run every benchmark; print tables; write JSON records.

    ``quick`` shrinks the corpus and the worker sweep so the suite
    finishes in seconds (the CI smoke configuration); the record
    parameters say which configuration produced the numbers.
    """
    scale = QUICK_SCALE if quick else FULL_SCALE
    jobs_list = _JOBS_QUICK if quick else _JOBS_FULL
    rounds = 1 if quick else 3

    stream = bench_stream_throughput(
        seed=seed, scale=scale, jobs_list=jobs_list, rounds=rounds
    )
    ingest = bench_ingest(seed=seed, scale=scale)
    scan = bench_partitioned_scan(
        seed=seed, scale=QUICK_SCALE if quick else scale, rounds=rounds
    )
    fold = bench_fold_matrix(
        seed=seed, scale=QUICK_SCALE if quick else scale,
        jobs=2 if quick else 4, rounds=rounds,
    )
    backbone = bench_backbone(rounds=rounds)
    grid = bench_grid(
        seed=seed, scale=0.05 if quick else 0.1, rounds=rounds
    )
    survivability = bench_survivability(
        seed=seed, trials=8 if quick else 24, rounds=rounds
    )
    serve = (
        bench_serve(scale=0.1, readers=4, requests_per_reader=10,
                    writer_jobs=1)
        if quick else bench_serve()
    )
    records = [stream, ingest, scan, fold, backbone, grid,
               survivability, serve]

    print(render_stream_record(stream))
    print()
    print(render_ingest_record(ingest))
    print()
    print(render_partitioned_record(scan))
    print()
    print(render_fold_matrix_record(fold))
    print()
    print(render_backbone_record(backbone))
    print()
    print(render_grid_record(grid))
    print()
    print(render_survivability_record(survivability))
    print()
    print(render_serve_record(serve))
    if out_dir is not None:
        for record in records:
            path = write_record(record, out_dir)
            print(f"\n[perf] wrote {path}")
    return records
