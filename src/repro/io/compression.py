"""Transparent gzip support for line-oriented interchange files.

The cold storage tier (:mod:`repro.storage`) keeps partitions as
``.jsonl.gz``; the JSONL readers and writers in :mod:`repro.io` open
every path through :func:`open_text`, so a compressed export behaves
exactly like a plain one — ``analyze`` and ``stream --replay`` accept
either without a flag.

Only the ``.gz`` suffix selects compression: the helpers never sniff
file magic, so a mis-named file fails loudly in the JSON parser
instead of silently decompressing.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Union

PathLike = Union[str, Path]

__all__ = ["is_gzip_path", "open_text", "strip_gz_suffix"]


def is_gzip_path(path: PathLike) -> bool:
    """Whether ``path`` names a gzip-compressed file (``*.gz``)."""
    return str(path).lower().endswith(".gz")


def strip_gz_suffix(path: PathLike) -> str:
    """The file name with a trailing ``.gz`` removed (for sniffing)."""
    name = str(path)
    return name[:-3] if name.lower().endswith(".gz") else name


def open_text(path: PathLike, mode: str = "r") -> IO[str]:
    """Open a text file, decompressing/compressing ``*.gz`` paths.

    ``mode`` is a plain text mode (``"r"``, ``"w"``, ``"a"``); the
    gzip variant is opened in the matching text mode with UTF-8, the
    encoding :func:`open` defaults to on every platform this library
    supports.
    """
    if is_gzip_path(path):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")
