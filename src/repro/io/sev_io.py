"""SEV corpus interchange.

Alongside the whole-corpus export/import pairs, the ``iter_sevs_*``
functions stream reports one at a time without materializing the
corpus — the replay path of :mod:`repro.stream` — and the JSONL
format (one JSON object per line) supports appending and tailing,
which the single-document JSON export cannot.

Real feeds are imperfect: a producer dies mid-line, a log rotation
tears the tail, a foreign row sneaks in.  The JSONL reader therefore
runs in two modes — ``strict=True`` (the default) raises a
:class:`ValueError` naming the file and line, ``strict=False`` skips
the malformed line and counts it in a
:class:`~repro.io.errors.ReadErrors` — and the ``io.jsonl.line``
fault site of :mod:`repro.faultline` can tear lines on the way in to
exercise both.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.faultline import hooks
from repro.incidents.sev import RootCause, SEVReport, Severity
from repro.incidents.store import SEVStore
from repro.io.compression import open_text
from repro.io.errors import ReadErrors

_FIELDS = [
    "sev_id", "severity", "device_name", "opened_at_h", "resolved_at_h",
    "root_causes", "description", "service_impact", "reviewed",
]

PathLike = Union[str, Path]


def _report_row(report: SEVReport) -> dict:
    return {
        "sev_id": report.sev_id,
        "severity": int(report.severity),
        "device_name": report.device_name,
        "opened_at_h": report.opened_at_h,
        "resolved_at_h": report.resolved_at_h,
        "root_causes": ";".join(c.value for c in report.root_causes),
        "description": report.description,
        "service_impact": report.service_impact,
        "reviewed": int(report.reviewed),
    }


def _row_report(row: dict) -> SEVReport:
    causes = tuple(
        RootCause(v) for v in str(row["root_causes"]).split(";") if v
    )
    return SEVReport(
        sev_id=str(row["sev_id"]),
        severity=Severity(int(row["severity"])),
        device_name=str(row["device_name"]),
        opened_at_h=float(row["opened_at_h"]),
        resolved_at_h=float(row["resolved_at_h"]),
        root_causes=causes,
        description=str(row.get("description", "")),
        service_impact=str(row.get("service_impact", "")),
        reviewed=bool(int(row.get("reviewed", 1))),
    )


def export_sevs_csv(store: SEVStore, path: PathLike) -> int:
    """Write every report to CSV; returns the row count."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_FIELDS)
        writer.writeheader()
        for report in store.all_reports():
            writer.writerow(_report_row(report))
            count += 1
    return count


def import_sevs_csv(path: PathLike, store: SEVStore = None) -> SEVStore:
    """Load a CSV written by :func:`export_sevs_csv`."""
    store = store or SEVStore()
    store.bulk_load(iter_sevs_csv(path))
    return store


def export_sevs_json(store: SEVStore, path: PathLike) -> int:
    rows = [_report_row(r) for r in store.all_reports()]
    Path(path).write_text(json.dumps({"sevs": rows}, indent=1))
    return len(rows)


def import_sevs_json(path: PathLike, store: SEVStore = None) -> SEVStore:
    store = store or SEVStore()
    store.bulk_load(iter_sevs_json(path))
    return store


# -- streaming interchange (repro.stream) ------------------------------


def export_sevs_jsonl(store: SEVStore, path: PathLike) -> int:
    """Write every report as one JSON object per line.

    A ``.jsonl.gz`` path writes the gzip-compressed variant (the cold
    storage tier's format); everything else is plain text.
    """
    count = 0
    with open_text(path, "w") as handle:
        for report in store.all_reports():
            handle.write(json.dumps(_report_row(report)) + "\n")
            count += 1
    return count


def import_sevs_jsonl(
    path: PathLike,
    store: SEVStore = None,
    strict: bool = True,
    errors: Optional[ReadErrors] = None,
) -> SEVStore:
    """Load a JSONL export into a store (``strict`` as in the iterator)."""
    store = store or SEVStore()
    store.bulk_load(iter_sevs_jsonl(path, strict=strict, errors=errors))
    return store


def iter_sevs_jsonl(
    path: PathLike,
    strict: bool = True,
    errors: Optional[ReadErrors] = None,
) -> Iterator[SEVReport]:
    """Stream reports from a JSONL export, one line at a time.

    ``strict=True`` raises :class:`ValueError` (naming file and line)
    on the first malformed line; ``strict=False`` skips malformed
    lines, recording each in ``errors`` when one is given, so a feed
    with a torn tail still yields every readable report — counted, not
    silent.  ``.jsonl.gz`` paths are decompressed transparently.
    """
    with open_text(path) as handle:
        for line_no, line in enumerate(handle, 1):
            if hooks.fire("io.jsonl.line"):
                line = hooks.torn(line)
            line = line.strip()
            if not line:
                continue
            try:
                report = _row_report(json.loads(line))
            except (json.JSONDecodeError, KeyError, TypeError,
                    ValueError) as exc:
                if strict:
                    raise ValueError(
                        f"{path}:{line_no}: malformed JSONL row "
                        f"({type(exc).__name__}: {exc})"
                    ) from exc
                if errors is not None:
                    errors.record(line_no, f"{type(exc).__name__}: {exc}")
                continue
            yield report


def iter_sevs_csv(path: PathLike) -> Iterator[SEVReport]:
    """Stream reports from a CSV export without loading it whole."""
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            yield _row_report(row)


def iter_sevs_json(path: PathLike) -> Iterator[SEVReport]:
    """Stream reports from a JSON export.

    The single-document format has to be parsed whole; the iterator
    interface still lets replay consumers treat every format alike.
    """
    payload = json.loads(Path(path).read_text())
    if "sevs" not in payload:
        raise ValueError(f"{path}: not a SEV export (missing 'sevs' key)")
    for row in payload["sevs"]:
        yield _row_report(row)
