"""Repair ticket interchange.

Mirrors :mod:`repro.io.sev_io` for the section 6 dataset: whole-corpus
export/import pairs in CSV, JSON, and JSONL, plus ``iter_tickets_*``
streaming readers that yield one :class:`RepairTicket` at a time
without materializing the corpus — the ticket replay path of
:mod:`repro.stream`.  ``TICKET_FIELDS`` is the interchange schema; the
result cache hashes it into ticket-corpus fingerprints.

The JSONL reader mirrors :func:`repro.io.sev_io.iter_sevs_jsonl`'s
two modes: ``strict=True`` raises on the first malformed line,
``strict=False`` skips and counts it in a
:class:`~repro.io.errors.ReadErrors`.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.backbone.tickets import RepairTicket, TicketDatabase, TicketType
from repro.faultline import hooks
from repro.io.compression import open_text
from repro.io.errors import ReadErrors

#: The interchange schema, in column order.
TICKET_FIELDS = [
    "ticket_id", "link_id", "vendor", "ticket_type", "started_at_h",
    "completed_at_h", "location",
]

PathLike = Union[str, Path]


def _ticket_row(ticket: RepairTicket) -> dict:
    if ticket.open:
        raise ValueError(
            f"cannot export open ticket {ticket.ticket_id!r}; close it first"
        )
    return {
        "ticket_id": ticket.ticket_id,
        "link_id": ticket.link_id,
        "vendor": ticket.vendor,
        "ticket_type": ticket.ticket_type.value,
        "started_at_h": ticket.started_at_h,
        "completed_at_h": ticket.completed_at_h,
        "location": ticket.location,
    }


def _row_ticket(row: dict) -> RepairTicket:
    """One exported row back into a ticket, original id preserved."""
    return RepairTicket(
        ticket_id=str(row["ticket_id"]),
        link_id=str(row["link_id"]),
        vendor=str(row["vendor"]),
        ticket_type=TicketType(str(row["ticket_type"])),
        started_at_h=float(row["started_at_h"]),
        completed_at_h=float(row["completed_at_h"]),
        location=str(row.get("location", "")),
    )


def _row_into(db: TicketDatabase, row: dict) -> None:
    db.add_completed(
        link_id=str(row["link_id"]),
        vendor=str(row["vendor"]),
        started_at_h=float(row["started_at_h"]),
        completed_at_h=float(row["completed_at_h"]),
        ticket_type=TicketType(str(row["ticket_type"])),
        location=str(row.get("location", "")),
    )


def export_tickets_csv(db: TicketDatabase, path: PathLike) -> int:
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=TICKET_FIELDS)
        writer.writeheader()
        for ticket in db.completed():
            writer.writerow(_ticket_row(ticket))
            count += 1
    return count


def import_tickets_csv(path: PathLike,
                       db: TicketDatabase = None) -> TicketDatabase:
    db = db or TicketDatabase()
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            _row_into(db, row)
    return db


def export_tickets_json(db: TicketDatabase, path: PathLike) -> int:
    rows = [_ticket_row(t) for t in db.completed()]
    Path(path).write_text(json.dumps({"tickets": rows}, indent=1))
    return len(rows)


def import_tickets_json(path: PathLike,
                        db: TicketDatabase = None) -> TicketDatabase:
    db = db or TicketDatabase()
    payload = json.loads(Path(path).read_text())
    if "tickets" not in payload:
        raise ValueError(f"{path}: not a ticket export (missing 'tickets')")
    for row in payload["tickets"]:
        _row_into(db, row)
    return db


# -- streaming interchange (repro.stream) ------------------------------


def export_tickets_jsonl(db: TicketDatabase, path: PathLike) -> int:
    """Write every completed ticket as one JSON object per line.

    A ``.jsonl.gz`` path writes the gzip-compressed variant (the cold
    storage tier's format); everything else is plain text.
    """
    count = 0
    with open_text(path, "w") as handle:
        for ticket in db.completed():
            handle.write(json.dumps(_ticket_row(ticket)) + "\n")
            count += 1
    return count


def import_tickets_jsonl(
    path: PathLike,
    db: TicketDatabase = None,
    strict: bool = True,
    errors: Optional[ReadErrors] = None,
) -> TicketDatabase:
    """Load a JSONL export into a ticket database."""
    db = db or TicketDatabase()
    for ticket in iter_tickets_jsonl(path, strict=strict, errors=errors):
        db.add_completed(
            link_id=ticket.link_id,
            vendor=ticket.vendor,
            started_at_h=ticket.started_at_h,
            completed_at_h=ticket.completed_at_h,
            ticket_type=ticket.ticket_type,
            location=ticket.location,
        )
    return db


def iter_tickets_jsonl(
    path: PathLike,
    strict: bool = True,
    errors: Optional[ReadErrors] = None,
) -> Iterator[RepairTicket]:
    """Stream tickets from a JSONL export, one line at a time.

    ``strict=True`` raises :class:`ValueError` (naming file and line)
    on the first malformed line; ``strict=False`` skips malformed
    lines, counting each in ``errors`` when one is given.
    ``.jsonl.gz`` paths are decompressed transparently.
    """
    with open_text(path) as handle:
        for line_no, line in enumerate(handle, 1):
            if hooks.fire("io.jsonl.line"):
                line = hooks.torn(line)
            line = line.strip()
            if not line:
                continue
            try:
                ticket = _row_ticket(json.loads(line))
            except (json.JSONDecodeError, KeyError, TypeError,
                    ValueError) as exc:
                if strict:
                    raise ValueError(
                        f"{path}:{line_no}: malformed JSONL row "
                        f"({type(exc).__name__}: {exc})"
                    ) from exc
                if errors is not None:
                    errors.record(line_no, f"{type(exc).__name__}: {exc}")
                continue
            yield ticket


def iter_tickets_csv(path: PathLike) -> Iterator[RepairTicket]:
    """Stream tickets from a CSV export without loading it whole."""
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            yield _row_ticket(row)


def iter_tickets_json(path: PathLike) -> Iterator[RepairTicket]:
    """Stream tickets from a JSON export.

    The single-document format has to be parsed whole; the iterator
    interface still lets replay consumers treat every format alike.
    """
    payload = json.loads(Path(path).read_text())
    if "tickets" not in payload:
        raise ValueError(f"{path}: not a ticket export (missing 'tickets')")
    for row in payload["tickets"]:
        yield _row_ticket(row)
