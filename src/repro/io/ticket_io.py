"""Repair ticket interchange."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from repro.backbone.tickets import RepairTicket, TicketDatabase, TicketType

_FIELDS = [
    "ticket_id", "link_id", "vendor", "ticket_type", "started_at_h",
    "completed_at_h", "location",
]

PathLike = Union[str, Path]


def _ticket_row(ticket: RepairTicket) -> dict:
    if ticket.open:
        raise ValueError(
            f"cannot export open ticket {ticket.ticket_id!r}; close it first"
        )
    return {
        "ticket_id": ticket.ticket_id,
        "link_id": ticket.link_id,
        "vendor": ticket.vendor,
        "ticket_type": ticket.ticket_type.value,
        "started_at_h": ticket.started_at_h,
        "completed_at_h": ticket.completed_at_h,
        "location": ticket.location,
    }


def _row_into(db: TicketDatabase, row: dict) -> None:
    db.add_completed(
        link_id=str(row["link_id"]),
        vendor=str(row["vendor"]),
        started_at_h=float(row["started_at_h"]),
        completed_at_h=float(row["completed_at_h"]),
        ticket_type=TicketType(str(row["ticket_type"])),
        location=str(row.get("location", "")),
    )


def export_tickets_csv(db: TicketDatabase, path: PathLike) -> int:
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_FIELDS)
        writer.writeheader()
        for ticket in db.completed():
            writer.writerow(_ticket_row(ticket))
            count += 1
    return count


def import_tickets_csv(path: PathLike,
                       db: TicketDatabase = None) -> TicketDatabase:
    db = db or TicketDatabase()
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            _row_into(db, row)
    return db


def export_tickets_json(db: TicketDatabase, path: PathLike) -> int:
    rows = [_ticket_row(t) for t in db.completed()]
    Path(path).write_text(json.dumps({"tickets": rows}, indent=1))
    return len(rows)


def import_tickets_json(path: PathLike,
                        db: TicketDatabase = None) -> TicketDatabase:
    db = db or TicketDatabase()
    payload = json.loads(Path(path).read_text())
    if "tickets" not in payload:
        raise ValueError(f"{path}: not a ticket export (missing 'tickets')")
    for row in payload["tickets"]:
        _row_into(db, row)
    return db
