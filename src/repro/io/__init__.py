"""Dataset interchange.

Export/import for the two corpora — SEV reports and fiber repair
tickets — as CSV and JSON, so downstream users can analyze generated
corpora with their own tools or load external incident datasets
through the same pipeline.  The JSONL format and the ``iter_sevs_*``
streaming readers feed the online runtime (:mod:`repro.stream`)
without materializing a corpus in memory.
"""

from repro.io.sev_io import (
    export_sevs_csv,
    export_sevs_json,
    export_sevs_jsonl,
    import_sevs_csv,
    import_sevs_json,
    import_sevs_jsonl,
    iter_sevs_csv,
    iter_sevs_json,
    iter_sevs_jsonl,
)
from repro.io.ticket_io import (
    export_tickets_csv,
    export_tickets_json,
    import_tickets_csv,
    import_tickets_json,
)

__all__ = [
    "export_sevs_csv",
    "export_sevs_json",
    "export_sevs_jsonl",
    "export_tickets_csv",
    "export_tickets_json",
    "import_sevs_csv",
    "import_sevs_json",
    "import_sevs_jsonl",
    "import_tickets_csv",
    "import_tickets_json",
    "iter_sevs_csv",
    "iter_sevs_json",
    "iter_sevs_jsonl",
]
