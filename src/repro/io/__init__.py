"""Dataset interchange.

Export/import for the two corpora — SEV reports and fiber repair
tickets — as CSV, JSON, and JSONL, so downstream users can analyze
generated corpora with their own tools or load external incident
datasets through the same pipeline.  The JSONL format and the
``iter_sevs_*``/``iter_tickets_*`` streaming readers feed the online
runtime (:mod:`repro.stream`) without materializing a corpus in
memory.  :func:`sniff_dataset` tells the two corpora apart so the CLI
can dispatch a file of either kind.
"""

from pathlib import Path
from typing import Union

from repro.io.compression import is_gzip_path, open_text, strip_gz_suffix
from repro.io.errors import ReadErrors
from repro.io.sev_io import (
    export_sevs_csv,
    export_sevs_json,
    export_sevs_jsonl,
    import_sevs_csv,
    import_sevs_json,
    import_sevs_jsonl,
    iter_sevs_csv,
    iter_sevs_json,
    iter_sevs_jsonl,
)
from repro.io.ticket_io import (
    TICKET_FIELDS,
    export_tickets_csv,
    export_tickets_json,
    export_tickets_jsonl,
    import_tickets_csv,
    import_tickets_json,
    import_tickets_jsonl,
    iter_tickets_csv,
    iter_tickets_json,
    iter_tickets_jsonl,
)

__all__ = [
    "ReadErrors",
    "TICKET_FIELDS",
    "is_gzip_path",
    "open_text",
    "strip_gz_suffix",
    "export_sevs_csv",
    "export_sevs_json",
    "export_sevs_jsonl",
    "export_tickets_csv",
    "export_tickets_json",
    "export_tickets_jsonl",
    "import_sevs_csv",
    "import_sevs_json",
    "import_sevs_jsonl",
    "import_tickets_csv",
    "import_tickets_json",
    "import_tickets_jsonl",
    "iter_sevs_csv",
    "iter_sevs_json",
    "iter_sevs_jsonl",
    "iter_tickets_csv",
    "iter_tickets_json",
    "iter_tickets_jsonl",
    "sniff_dataset",
]


def sniff_dataset(path: Union[str, Path]) -> str:
    """Which corpus a data file holds: ``"sevs"`` or ``"tickets"``.

    Inspects the first record, not the file name: a CSV header naming
    ``sev_id`` or ``ticket_id``, a JSON document keyed ``sevs`` or
    ``tickets``, or a JSONL first line carrying either id field.
    ``.jsonl.gz`` is sniffed like ``.jsonl`` (decompressed on the fly).

    Every way a file can defeat the sniff — empty, nothing but blank
    lines, an unparseable (torn) first row — raises a plain
    :class:`ValueError` naming the file, never a raw decoder error.
    """
    import json as _json

    path = Path(path)
    suffix = Path(strip_gz_suffix(path)).suffix.lower()
    if is_gzip_path(path) and suffix != ".jsonl":
        raise ValueError(
            f"unsupported dataset format {path.suffix!r} "
            "(only .jsonl.gz is supported compressed)"
        )
    if suffix == ".csv":
        with open(path, newline="") as handle:
            header = handle.readline()
        if not header.strip():
            raise ValueError(f"{path}: empty dataset file")
        if "ticket_id" in header:
            return "tickets"
        if "sev_id" in header:
            return "sevs"
    elif suffix == ".json":
        text = path.read_text()
        if not text.strip():
            raise ValueError(f"{path}: empty dataset file")
        try:
            payload = _json.loads(text)
        except _json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}: unreadable dataset (invalid JSON: {exc})"
            ) from exc
        if isinstance(payload, dict):
            if "tickets" in payload:
                return "tickets"
            if "sevs" in payload:
                return "sevs"
    elif suffix == ".jsonl":
        saw_line = False
        with open_text(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                saw_line = True
                try:
                    row = _json.loads(line)
                except _json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{path}: unreadable dataset "
                        f"(invalid JSONL first row: {exc})"
                    ) from exc
                if isinstance(row, dict):
                    if "ticket_id" in row:
                        return "tickets"
                    if "sev_id" in row:
                        return "sevs"
                break
        if not saw_line:
            raise ValueError(f"{path}: empty dataset file")
    else:
        raise ValueError(
            f"unsupported dataset format {suffix!r} "
            "(expected .csv, .json, or .jsonl)"
        )
    raise ValueError(f"{path}: neither a SEV nor a ticket export")
