"""Counted skip-tracking for tolerant readers.

The JSONL streaming readers accept ``strict=False`` to skip malformed
lines — torn tails, garbage bytes, wrong-schema rows — instead of
raising.  Skipping silently would hide data loss, so tolerant reads
are *counted*: pass a :class:`ReadErrors` and every skipped line is
recorded with its line number and reason.
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = ["ReadErrors"]


class ReadErrors:
    """Record of lines a tolerant reader skipped."""

    def __init__(self) -> None:
        #: (line number, reason) per skipped line, in file order.
        self.lines: List[Tuple[int, str]] = []

    @property
    def skipped(self) -> int:
        return len(self.lines)

    def record(self, line_no: int, reason: str) -> None:
        self.lines.append((line_no, reason))

    def __bool__(self) -> bool:
        return bool(self.lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ReadErrors skipped={self.skipped}>"
