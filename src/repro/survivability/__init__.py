"""repro.survivability — correlated failures and what survives them.

The paper's section 6.1 motivates the workload: failures cluster
(shared power domains, maintenance windows, storms over the
high-blast-radius aggregation layer), and what matters under clustered
failure is *survivability* — how much connectivity and capacity a
network design keeps as a growing fraction of its devices fails,
which is where the fabric's path diversity pays off over the classic
cluster design.

Three layers:

* :mod:`~repro.survivability.correlated` — seeded correlated
  failure-order generators over the topology graph, degrading
  bit-identically to the independent model at default knobs;
* :mod:`~repro.survivability.trials` — the generated trial corpus
  (integer survival counts per design x trial x failed-fraction);
* :mod:`~repro.survivability.analysis` — the analyses over it,
  declared prepare/fold/merge/finalize so every runtime backend
  answers them bit-identically.
"""

from repro.survivability.analysis import (
    DesignSurvivability,
    SurvivabilityCurve,
    SurvivabilityCurves,
    SurvivabilityPoint,
    SurvivabilityStudyReport,
    SurvivabilitySummary,
    SurvivabilityTallies,
    run_survivability_report,
    survivability_report_analyses,
)
from repro.survivability.correlated import (
    correlated_failure_order,
    power_domains,
)
from repro.survivability.trials import (
    DESIGNS,
    FRACTION_PERCENTS,
    FailureTrial,
    TrialSet,
    default_correlated_knobs,
    design_networks,
    generate_trials,
)

__all__ = [
    "DESIGNS",
    "DesignSurvivability",
    "FRACTION_PERCENTS",
    "FailureTrial",
    "SurvivabilityCurve",
    "SurvivabilityCurves",
    "SurvivabilityPoint",
    "SurvivabilityStudyReport",
    "SurvivabilitySummary",
    "SurvivabilityTallies",
    "TrialSet",
    "correlated_failure_order",
    "default_correlated_knobs",
    "design_networks",
    "generate_trials",
    "power_domains",
    "run_survivability_report",
    "survivability_report_analyses",
]
