"""Survivability analyses: prepare/fold/merge/finalize over trials.

The survivability questions — how much connectivity and capacity a
design keeps as a growing fraction of its devices fails — are declared
as :class:`~repro.runtime.analysis.Analysis` subclasses over the
``"trial"`` corpus domain, so the executor can answer them on any
backend: batch == stream == sharded(+processes) == columnar
bit-identically.  The identity holds by construction, not by luck:
the shared :class:`SurvivabilityTallies` state sums *integer* counts
per (design, fraction) cell, integer addition is associative and
commutative under any shard/batch partition, and every float is
computed once, at finalize, from the identical integer sums.

Three analyses share one state (``state_key="survivability"`` — the
executor folds each trial record once and hands all three the same
tallies): connectivity curves, capacity curves, and the summary that
:mod:`repro.core.conditional_risk` joins for capacity planning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.runtime.analysis import Analysis, RunContext

__all__ = [
    "SurvivabilityCurve",
    "SurvivabilityCurves",
    "SurvivabilityPoint",
    "SurvivabilityStudyReport",
    "SurvivabilitySummary",
    "SurvivabilityTallies",
    "DesignSurvivability",
    "run_survivability_report",
    "survivability_report_analyses",
]


class SurvivabilityTallies:
    """Mergeable integer tallies per (design, fraction) cell."""

    def __init__(self) -> None:
        #: (design, fraction_idx) -> summed integer counts.
        self.connected: Dict[Tuple[str, int], int] = {}
        self.rsw_total: Dict[Tuple[str, int], int] = {}
        self.links_up: Dict[Tuple[str, int], int] = {}
        self.links_total: Dict[Tuple[str, int], int] = {}
        self.rows: Dict[Tuple[str, int], int] = {}
        #: fraction_idx -> fraction_pct (the sweep axis labels).
        self.fraction_pct: Dict[int, int] = {}

    def fold(self, record) -> None:
        key = (record.design, record.fraction_idx)
        self.connected[key] = (
            self.connected.get(key, 0) + record.connected_rsw
        )
        self.rsw_total[key] = (
            self.rsw_total.get(key, 0) + record.total_rsw
        )
        self.links_up[key] = (
            self.links_up.get(key, 0) + record.surviving_links
        )
        self.links_total[key] = (
            self.links_total.get(key, 0) + record.total_links
        )
        self.rows[key] = self.rows.get(key, 0) + 1
        self.fraction_pct[record.fraction_idx] = record.fraction_pct

    def fold_batch(self, batch) -> None:
        """Array-at-a-time fold over a trial column batch."""
        for design, idx, pct, connected, rsw, links_up, links in zip(
            batch.designs, batch.fraction_idxs, batch.fraction_pcts,
            batch.connected_rsws, batch.total_rsws,
            batch.surviving_linkss, batch.total_linkss,
        ):
            key = (design, idx)
            self.connected[key] = self.connected.get(key, 0) + connected
            self.rsw_total[key] = self.rsw_total.get(key, 0) + rsw
            self.links_up[key] = self.links_up.get(key, 0) + links_up
            self.links_total[key] = self.links_total.get(key, 0) + links
            self.rows[key] = self.rows.get(key, 0) + 1
            self.fraction_pct[idx] = pct

    def merge(self, other: "SurvivabilityTallies") -> "SurvivabilityTallies":
        for name in ("connected", "rsw_total", "links_up",
                     "links_total", "rows"):
            mine = getattr(self, name)
            for key, count in getattr(other, name).items():
                mine[key] = mine.get(key, 0) + count
        self.fraction_pct.update(other.fraction_pct)
        return self


# -- result dataclasses ------------------------------------------------


@dataclass(frozen=True)
class SurvivabilityPoint:
    """Mean surviving share at one failed fraction."""

    fraction_pct: int
    value: float
    trials: int


@dataclass(frozen=True)
class SurvivabilityCurve:
    """One design's survivability curve for one metric."""

    design: str
    metric: str
    points: Tuple[SurvivabilityPoint, ...]

    def value_at(self, fraction_pct: int) -> float:
        for point in self.points:
            if point.fraction_pct == fraction_pct:
                return point.value
        raise KeyError(
            f"no {self.metric} point at {fraction_pct}% for "
            f"{self.design!r}"
        )


@dataclass(frozen=True)
class SurvivabilityCurves:
    """The per-design curve family for one metric."""

    metric: str
    curves: Tuple[SurvivabilityCurve, ...]

    @property
    def designs(self) -> Tuple[str, ...]:
        return tuple(curve.design for curve in self.curves)

    def curve(self, design: str) -> SurvivabilityCurve:
        for curve in self.curves:
            if curve.design == design:
                return curve
        raise KeyError(f"no {self.metric} curve for design {design!r}")


@dataclass(frozen=True)
class DesignSurvivability:
    """One design's summary scalars."""

    design: str
    #: Mean of the connectivity curve over the fraction sweep — the
    #: normalized area under the curve.
    connectivity_auc: float
    capacity_auc: float
    #: Smallest failed percent where mean connectivity drops below
    #: one half; ``None`` when the design holds above it throughout.
    half_connectivity_pct: Optional[int]


@dataclass(frozen=True)
class SurvivabilitySummary:
    """Cross-design summary (the cluster-vs-fabric comparison)."""

    designs: Tuple[DesignSurvivability, ...]
    #: fabric connectivity AUC minus cluster connectivity AUC — the
    #: paper's claim that path diversity buys failure tolerance,
    #: as one number.
    fabric_advantage: float

    def design(self, name: str) -> DesignSurvivability:
        for row in self.designs:
            if row.design == name:
                return row
        raise KeyError(f"no survivability summary for design {name!r}")


@dataclass
class SurvivabilityStudyReport:
    """Every survivability artifact from one trial corpus."""

    connectivity: SurvivabilityCurves
    capacity: SurvivabilityCurves
    summary: SurvivabilitySummary

    def render(self) -> str:
        from repro.viz import survivability_table

        return survivability_table(self)


# -- the analyses ------------------------------------------------------


def _curves(state: SurvivabilityTallies, metric: str,
            numerator: Dict, denominator: Dict) -> SurvivabilityCurves:
    designs = sorted({design for design, _ in state.rows})
    curves = []
    for design in designs:
        points = []
        for idx in sorted(state.fraction_pct):
            key = (design, idx)
            if key not in state.rows:
                continue
            points.append(SurvivabilityPoint(
                fraction_pct=state.fraction_pct[idx],
                value=numerator[key] / denominator[key],
                trials=state.rows[key],
            ))
        curves.append(SurvivabilityCurve(
            design=design, metric=metric, points=tuple(points)
        ))
    return SurvivabilityCurves(metric=metric, curves=tuple(curves))


class _TrialAnalysis(Analysis):
    """Shared fold over the survivability tallies."""

    domain = "trial"
    state_key = "survivability"

    def prepare(self, context: RunContext) -> SurvivabilityTallies:
        return SurvivabilityTallies()

    def fold(self, record, state: SurvivabilityTallies) -> None:
        state.fold(record)

    def fold_batch(self, batch, state: SurvivabilityTallies) -> None:
        state.fold_batch(batch)


class SurvivabilityConnectivityAnalysis(_TrialAnalysis):
    """Mean connected-RSW share vs. fraction failed, per design."""

    name = "survivability_connectivity"

    def finalize(self, state: SurvivabilityTallies,
                 context: RunContext) -> SurvivabilityCurves:
        return _curves(state, "connectivity",
                       state.connected, state.rsw_total)


class SurvivabilityCapacityAnalysis(_TrialAnalysis):
    """Mean surviving-link share vs. fraction failed, per design."""

    name = "survivability_capacity"

    def finalize(self, state: SurvivabilityTallies,
                 context: RunContext) -> SurvivabilityCurves:
        return _curves(state, "capacity",
                       state.links_up, state.links_total)


class SurvivabilitySummaryAnalysis(_TrialAnalysis):
    """Per-design AUC scalars and the fabric-vs-cluster advantage."""

    name = "survivability_summary"

    def finalize(self, state: SurvivabilityTallies,
                 context: RunContext) -> SurvivabilitySummary:
        connectivity = _curves(state, "connectivity",
                               state.connected, state.rsw_total)
        capacity = _curves(state, "capacity",
                           state.links_up, state.links_total)
        rows = []
        auc: Dict[str, float] = {}
        for curve in connectivity.curves:
            values = [point.value for point in curve.points]
            auc[curve.design] = sum(values) / len(values)
            half = None
            for point in curve.points:
                if point.value < 0.5:
                    half = point.fraction_pct
                    break
            cap = capacity.curve(curve.design)
            cap_values = [point.value for point in cap.points]
            rows.append(DesignSurvivability(
                design=curve.design,
                connectivity_auc=auc[curve.design],
                capacity_auc=sum(cap_values) / len(cap_values),
                half_connectivity_pct=half,
            ))
        advantage = 0.0
        if "fabric" in auc and "cluster" in auc:
            advantage = auc["fabric"] - auc["cluster"]
        return SurvivabilitySummary(
            designs=tuple(rows), fabric_advantage=advantage
        )


_ANALYSES = (
    SurvivabilityConnectivityAnalysis,
    SurvivabilityCapacityAnalysis,
    SurvivabilitySummaryAnalysis,
)


def survivability_report_analyses():
    """Fresh instances of every survivability analysis."""
    return [cls() for cls in _ANALYSES]


def run_survivability_report(
    context: RunContext,
    backend: str = "stream",
    jobs: int = 4,
    cache=None,
    source: Optional[Iterable] = None,
    use_processes: bool = False,
) -> SurvivabilityStudyReport:
    """Every survivability artifact from one trial corpus, one run.

    The trial-domain sibling of
    :func:`repro.runtime.executor.run_intra_report`: same backends,
    same merge law, same cache.  The context needs ``trials`` (a
    :class:`~repro.survivability.trials.TrialSet`) or an explicit
    ``source`` iterable of :class:`FailureTrial` records.
    """
    from repro.runtime.executor import Executor

    executor = Executor(backend=backend, jobs=jobs, cache=cache,
                        use_processes=use_processes)
    results = executor.run(
        survivability_report_analyses(), context, source=source
    )
    return SurvivabilityStudyReport(
        connectivity=results["survivability_connectivity"],
        capacity=results["survivability_capacity"],
        summary=results["survivability_summary"],
    )
