"""Correlated failure-order generators over the topology graph.

The paper's section 6.1 observes that failures cluster — shared power
domains take down racks together, storms hit the high-blast-radius
aggregation layer, maintenance windows batch same-type work — but the
simulators draw every failure independently.  This module layers three
seeded correlation modes onto the independent-draw model of
:func:`repro.simulation.failures.independent_failure_order`:

``power_domain_size``
    consecutive same-type devices (sorted device names put a type's
    devices next to each other, unit by unit) share one power domain of
    this size; a domain fails as a block, so a domain draw takes its
    whole membership down together.  Size 1 is the independent model.
``storm_bias``
    domains are ordered by weighted sampling without replacement
    (Efraimidis-Spirakis keys), weighted toward high blast radius —
    a storm prefers the aggregation layer whose loss strands racks.
``maintenance_clustering``
    each domain joins a shared maintenance window with this
    probability; the window fails first, swept one device type at a
    time — the batched-maintenance failure mode.

Every knob at its default consumes *no* RNG draws beyond the one
Fisher-Yates shuffle, which makes the degradation law exact: with
``power_domain_size == 1``, ``storm_bias == 0``, and
``maintenance_clustering == 0`` the emitted order is bit-identical to
``independent_failure_order(devices, rng)`` for the same RNG state —
shuffling N singleton domains consumes the identical index draws as
shuffling the N names directly.  The property suite pins this over
multiple seeds.

A failure *order* (one permutation per trial) rather than per-fraction
failure *sets* is the load-bearing choice: the set failed at fraction
``f`` is a prefix of the order, so the sets are nested in ``f`` and
every per-trial survivability metric is monotone non-increasing by
construction — the second property the suite pins.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "correlated_failure_order",
    "power_domains",
]


def power_domains(devices: Iterable[str], size: int) -> List[List[str]]:
    """Partition sorted device names into shared power domains.

    Consecutive runs of ``size`` names form one domain; the canonical
    name order (``type.index.unit...``) keeps a domain within one
    device type and adjacent deployment units, which is the physical
    reality shared power rails model.  The trailing domain may be
    smaller.  ``size == 1`` yields singleton domains — the independent
    model.
    """
    if size < 1:
        raise ValueError("power domain size must be at least 1")
    names = sorted(devices)
    return [names[i:i + size] for i in range(0, len(names), size)]


def _storm_order(
    domains: List[List[str]],
    rng: random.Random,
    storm_bias: float,
    blast_radius: Dict[str, int],
) -> List[List[str]]:
    """Weighted sampling without replacement over domains.

    Efraimidis-Spirakis: each domain draws one uniform ``u`` and sorts
    by ``u ** (1/w)`` descending, where ``w`` grows with the domain's
    largest blast radius.  Higher weight, earlier failure — a storm
    that prefers the devices whose loss strands the most racks.
    """
    ceiling = max(blast_radius.values(), default=0) or 1
    keyed = []
    for position, domain in enumerate(domains):
        radius = max(blast_radius.get(name, 0) for name in domain)
        weight = 1.0 + storm_bias * (radius / ceiling)
        keyed.append((rng.random() ** (1.0 / weight), position, domain))
    keyed.sort(key=lambda kv: (-kv[0], kv[1]))
    return [domain for _, _, domain in keyed]


def _maintenance_order(
    domains: List[List[str]],
    rng: random.Random,
    clustering: float,
) -> List[List[str]]:
    """Pull a clustered fraction of domains into one maintenance window.

    Each domain joins the window with probability ``clustering`` (one
    uniform draw per domain, always exactly ``len(domains)`` draws).
    Window members fail first, swept one device type at a time (the
    name prefix); non-members keep their incoming storm/shuffle order.
    """
    keyed = []
    for position, domain in enumerate(domains):
        if rng.random() < clustering:
            key = (0, domain[0].split(".", 1)[0], position)
        else:
            key = (1, "", position)
        keyed.append((key, domain))
    keyed.sort(key=lambda kv: kv[0])
    return [domain for _, domain in keyed]


def correlated_failure_order(
    devices: Iterable[str],
    rng: random.Random,
    power_domain_size: int = 1,
    storm_bias: float = 0.0,
    maintenance_clustering: float = 0.0,
    blast_radius: Optional[Dict[str, int]] = None,
) -> List[str]:
    """One correlated failure order (a device permutation) per trial.

    Chunk sorted names into power domains, order the domains (uniform
    shuffle, or blast-radius-weighted when ``storm_bias > 0``), then
    optionally pull a maintenance window to the front; flatten.  Each
    correlation knob consumes RNG draws only when it is active, so the
    all-defaults call degrades bit-identically to
    :func:`repro.simulation.failures.independent_failure_order`.
    """
    if storm_bias < 0:
        raise ValueError("storm_bias must be non-negative")
    if not 0.0 <= maintenance_clustering <= 1.0:
        raise ValueError("maintenance_clustering must be within [0, 1]")
    domains = power_domains(devices, power_domain_size)
    if storm_bias > 0:
        domains = _storm_order(domains, rng, storm_bias, blast_radius or {})
    else:
        rng.shuffle(domains)
    if maintenance_clustering > 0:
        domains = _maintenance_order(domains, rng, maintenance_clustering)
    return [name for domain in domains for name in domain]
