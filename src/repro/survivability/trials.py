"""Survivability trials: the corpus the survivability analyses fold.

One :class:`FailureTrial` record is one (design, trial, fraction)
observation: draw a correlated failure order over a design's topology
graph (:mod:`repro.survivability.correlated`), fail the order's prefix
at the fraction, and count what survives — RSWs still reaching a live
Core, and links with both endpoints alive.  The counts are *integers*:
the analyses sum them across any shard/batch partition and divide once
at finalize, which is why batch == stream == sharded(+processes) ==
columnar holds bit-identically for every survivability artifact.

The trial corpus is generated, not simulated over time: the two
reference networks (one classic cluster design, one fabric design,
fixed small dimensions) are rebuilt from the seed on demand, so a
:class:`TrialSet` is a pure function of ``(seed, correlated knobs)``
and fingerprints content-addressably for the result cache.

``survivability.sweep`` is this module's fault site: chaos drills
crash a per-trial computation mid-sweep and the generator retries that
trial once under suppression — the retried trial is the same pure
function of the seed, so the finalized report digest cannot move.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.survivability.correlated import correlated_failure_order
from repro.topology.cluster import build_cluster_network
from repro.topology.fabric import build_fabric_network
from repro.topology.graph import build_graph, downstream_devices

__all__ = [
    "DESIGNS",
    "FRACTION_PERCENTS",
    "FailureTrial",
    "TrialSet",
    "default_correlated_knobs",
    "design_networks",
    "generate_trials",
]

#: The two intra data center designs the study compares (section 3.1).
DESIGNS = ("cluster", "fabric")

#: Failed-fraction sweep points, in percent (5% steps up to half the
#: fleet).  Integers so trial records stay float-free.
FRACTION_PERCENTS = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50)

#: Correlation knob defaults; all-defaults degrades to the independent
#: failure model bit-identically.
_KNOB_DEFAULTS = {
    "power_domain_size": 1,
    "storm_bias": 0.0,
    "maintenance_clustering": 0.0,
    "trials": 24,
}

# Reference network dimensions: small enough that a full sweep is
# sub-second, large enough that both designs have every aggregation
# layer and a two-digit rack count.
_CLUSTER_DIMS = dict(clusters=2, racks_per_cluster=8, csas=2, cores=4)
_FABRIC_DIMS = dict(pods=2, racks_per_pod=8, ssws=4, esws=2, cores=4)


@dataclass(frozen=True)
class FailureTrial:
    """One survivability observation — integer counts only."""

    design: str
    trial: int
    fraction_idx: int
    #: The failed fraction as an integer percent (5, 10, ... 50).
    fraction_pct: int
    #: RSWs alive and connected to at least one alive Core.
    connected_rsw: int
    total_rsw: int
    #: Links with both endpoints alive — the capacity-remaining proxy.
    surviving_links: int
    total_links: int


def default_correlated_knobs(
    correlated: Optional[Dict] = None,
) -> Dict:
    """The full knob mapping with defaults applied, strictly validated."""
    knobs = dict(_KNOB_DEFAULTS)
    for key, value in (correlated or {}).items():
        if key not in _KNOB_DEFAULTS:
            raise ValueError(
                f"unknown correlated-failure knob {key!r} "
                f"(expected among {sorted(_KNOB_DEFAULTS)})"
            )
        knobs[key] = value
    if not isinstance(knobs["power_domain_size"], int) \
            or isinstance(knobs["power_domain_size"], bool) \
            or knobs["power_domain_size"] < 1:
        raise ValueError("power_domain_size must be an integer >= 1")
    if not isinstance(knobs["trials"], int) \
            or isinstance(knobs["trials"], bool) or knobs["trials"] < 1:
        raise ValueError("trials must be an integer >= 1")
    if knobs["storm_bias"] < 0:
        raise ValueError("storm_bias must be non-negative")
    if not 0.0 <= knobs["maintenance_clustering"] <= 1.0:
        raise ValueError("maintenance_clustering must be within [0, 1]")
    return knobs


def design_networks():
    """The two reference networks, rebuilt fresh (deterministically)."""
    return {
        "cluster": build_cluster_network("dc1", "region1", **_CLUSTER_DIMS),
        "fabric": build_fabric_network("dc2", "region1", **_FABRIC_DIMS),
    }


class TrialSet:
    """A generated trial corpus plus its provenance.

    ``records()`` yields :class:`FailureTrial` rows in canonical order
    (design, trial, fraction); ``retries`` counts per-trial recoveries
    from the ``survivability.sweep`` fault site (never part of the
    content — a retried trial recomputes the identical records).
    """

    def __init__(
        self,
        records: List[FailureTrial],
        seed: int,
        knobs: Dict,
        retries: int = 0,
    ) -> None:
        self._records = tuple(records)
        self.seed = seed
        self.knobs = dict(knobs)
        self.retries = retries

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> Iterator[FailureTrial]:
        return iter(self._records)


def _survival_counts(
    graph,
    rsws: List[str],
    cores: List[str],
    links: List[Tuple[str, str]],
    failed: frozenset,
) -> Tuple[int, int]:
    """(connected RSWs, surviving links) after removing ``failed``."""
    import networkx as nx

    surviving_links = sum(
        1 for a, b in links if a not in failed and b not in failed
    )
    alive = graph.subgraph(n for n in graph.nodes if n not in failed)
    reachable = set()
    for component in nx.connected_components(alive):
        if any(core in component for core in cores):
            reachable |= component
    connected_rsw = sum(1 for rsw in rsws if rsw in reachable)
    return connected_rsw, surviving_links


def _trial_records(
    design: str,
    trial: int,
    seed: int,
    knobs: Dict,
    graph,
    rsws: List[str],
    cores: List[str],
    links: List[Tuple[str, str]],
    blast_radius: Dict[str, int],
) -> List[FailureTrial]:
    """All fraction points of one trial — one correlated order, nested
    prefixes, so per-trial counts are monotone non-increasing."""
    from repro.faultline import hooks
    from repro.faultline.plan import SurvivabilitySweepCrash

    if hooks.fire("survivability.sweep"):
        raise SurvivabilitySweepCrash(
            f"injected crash in survivability sweep "
            f"({design} trial {trial})"
        )
    rng = random.Random(f"{seed}:{design}:{trial}")
    order = correlated_failure_order(
        graph.nodes,
        rng,
        power_domain_size=knobs["power_domain_size"],
        storm_bias=knobs["storm_bias"],
        maintenance_clustering=knobs["maintenance_clustering"],
        blast_radius=blast_radius,
    )
    n = len(order)
    records = []
    for idx, pct in enumerate(FRACTION_PERCENTS):
        failed = frozenset(order[: (pct * n) // 100])
        connected, surviving = _survival_counts(
            graph, rsws, cores, links, failed
        )
        records.append(FailureTrial(
            design=design,
            trial=trial,
            fraction_idx=idx,
            fraction_pct=pct,
            connected_rsw=connected,
            total_rsw=len(rsws),
            surviving_links=surviving,
            total_links=len(links),
        ))
    return records


def generate_trials(
    seed: int = 1,
    correlated: Optional[Dict] = None,
) -> TrialSet:
    """Generate the survivability trial corpus for ``seed``.

    A pure function of ``(seed, correlated knobs)``: both reference
    networks are rebuilt, each design runs ``trials`` correlated
    failure orders, and every order is evaluated at every
    :data:`FRACTION_PERCENTS` point.  A trial crashed through the
    ``survivability.sweep`` fault site is retried once under
    suppression (counted in :attr:`TrialSet.retries`).
    """
    from repro.faultline import hooks
    from repro.faultline.plan import SurvivabilitySweepCrash
    from repro.topology.devices import DeviceType

    knobs = default_correlated_knobs(correlated)
    records: List[FailureTrial] = []
    retries = 0
    for design, network in sorted(design_networks().items()):
        graph = build_graph(network)
        rsws = sorted(
            d.name for d in network.devices_of_type(DeviceType.RSW)
        )
        cores = sorted(
            d.name for d in network.devices_of_type(DeviceType.CORE)
        )
        links = list(network.links)
        blast_radius = {
            name: len(downstream_devices(graph, name))
            for name in graph.nodes
        }
        for trial in range(knobs["trials"]):
            try:
                rows = _trial_records(
                    design, trial, seed, knobs,
                    graph, rsws, cores, links, blast_radius,
                )
            except SurvivabilitySweepCrash:
                retries += 1
                with hooks.suppressed("survivability.sweep"):
                    rows = _trial_records(
                        design, trial, seed, knobs,
                        graph, rsws, cores, links, blast_radius,
                    )
            records.extend(rows)
    return TrialSet(records, seed=seed, knobs=knobs, retries=retries)
