"""WAN traffic classes and the four-plane cross-DC backbone.

Section 3.2 splits backbone traffic in two:

* **user-facing traffic** enters through *edge presences* (points of
  presence) found via DNS, then rides the classic backbone of BBRs to
  a data center region;
* **cross data center traffic** — mostly bulk replication — is
  "partitioned in the optical layer in four planes where each plane
  has one backbone router per data center" and is centrally
  traffic-engineered (the Express Backbone / B4-style design).

This module models the plane partitioning: assigning cross-DC demands
to planes, per-plane capacity accounting, and the failover behaviour
when a plane (or its router at one data center) is lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

#: The published plane count (section 3.2).
PLANE_COUNT = 4


@dataclass(frozen=True)
class CrossDCDemand:
    """A bulk transfer stream between two data center regions."""

    name: str
    source: str
    destination: str
    gbps: float

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise ValueError(f"demand {self.name!r} stays in one region")
        if self.gbps <= 0:
            raise ValueError(f"demand {self.name!r} needs positive volume")


@dataclass
class Plane:
    """One optical plane: a BBR per data center plus plane capacity."""

    index: int
    capacity_gbps: float
    routers: Dict[str, str] = field(default_factory=dict)
    healthy: bool = True

    def router_of(self, region: str) -> str:
        try:
            return self.routers[region]
        except KeyError:
            raise KeyError(
                f"plane {self.index} has no router in region {region!r}"
            ) from None

    def serves(self, demand: CrossDCDemand) -> bool:
        return (self.healthy
                and demand.source in self.routers
                and demand.destination in self.routers)


class PlanedBackbone:
    """The four-plane cross data center backbone."""

    def __init__(self, regions: List[str],
                 plane_capacity_gbps: float = 1000.0,
                 planes: int = PLANE_COUNT) -> None:
        if len(set(regions)) < 2:
            raise ValueError("the cross-DC backbone needs >= 2 regions")
        if planes < 1:
            raise ValueError("need at least one plane")
        self.regions = sorted(set(regions))
        self.planes = [
            Plane(
                index=i,
                capacity_gbps=plane_capacity_gbps,
                routers={
                    region: f"bbr.{i:03d}.plane{i}.{region}.wan"
                    for region in self.regions
                },
            )
            for i in range(planes)
        ]
        self._assignments: Dict[str, int] = {}
        self._demands: Dict[str, CrossDCDemand] = {}

    # -- traffic engineering ---------------------------------------------------

    def healthy_planes(self) -> List[Plane]:
        return [p for p in self.planes if p.healthy]

    def _load(self) -> Dict[int, float]:
        load: Dict[int, float] = {p.index: 0.0 for p in self.planes}
        for name, plane_index in self._assignments.items():
            load[plane_index] += self._demands[name].gbps
        return load

    def utilization(self) -> Dict[int, float]:
        """Per-plane utilization fraction under current assignments."""
        load = self._load()
        return {
            p.index: load[p.index] / p.capacity_gbps for p in self.planes
        }

    def assign(self, demand: CrossDCDemand) -> int:
        """Centrally assign a demand to the least-utilized serving plane.

        Returns the plane index; raises when no healthy plane can
        carry the demand without exceeding capacity.
        """
        if demand.name in self._assignments:
            raise ValueError(f"demand {demand.name!r} is already assigned")
        load = self._load()
        candidates = [
            p for p in self.planes
            if p.serves(demand)
            and load[p.index] + demand.gbps <= p.capacity_gbps
        ]
        if not candidates:
            raise CapacityExhausted(
                f"no healthy plane can carry {demand.name!r} "
                f"({demand.gbps} Gb/s {demand.source}->{demand.destination})"
            )
        best = min(candidates, key=lambda p: (load[p.index], p.index))
        self._assignments[demand.name] = best.index
        self._demands[demand.name] = demand
        return best.index

    def assign_all(self, demands: List[CrossDCDemand]) -> Dict[str, int]:
        for demand in sorted(demands, key=lambda d: -d.gbps):
            self.assign(demand)
        return dict(self._assignments)

    # -- failure handling ----------------------------------------------------------

    def fail_plane(self, index: int) -> None:
        self._plane(index).healthy = False

    def restore_plane(self, index: int) -> None:
        self._plane(index).healthy = True

    def reassign_after_failures(
        self, demands: List[CrossDCDemand]
    ) -> Tuple[Dict[str, int], List[str]]:
        """Re-run assignment after failures.

        Returns (assignments, dropped demand names).  Dropping bulk
        transfers under plane loss is the modeled behaviour: cross-DC
        traffic is elastic, user-facing traffic is not (section 3.2).
        """
        self._assignments.clear()
        self._demands.clear()
        dropped = []
        for demand in sorted(demands, key=lambda d: -d.gbps):
            try:
                self.assign(demand)
            except CapacityExhausted:
                dropped.append(demand.name)
        return dict(self._assignments), sorted(dropped)

    def surviving_capacity(self, source: str, destination: str) -> float:
        return sum(
            p.capacity_gbps
            for p in self.healthy_planes()
            if source in p.routers and destination in p.routers
        )

    def _plane(self, index: int) -> Plane:
        for plane in self.planes:
            if plane.index == index:
                return plane
        raise KeyError(f"no plane {index}")


class CapacityExhausted(RuntimeError):
    """No plane can carry a demand."""


# ---------------------------------------------------------------------------
# User-facing traffic (edge presences)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EdgePresence:
    """A point of presence terminating user connections (section 3.2)."""

    name: str
    region_latency_ms: Dict[str, float]

    def closest_region(self, exclude: Set[str] = frozenset()) -> str:
        candidates = {
            r: ms for r, ms in self.region_latency_ms.items()
            if r not in exclude
        }
        if not candidates:
            raise ValueError(f"POP {self.name!r} has no reachable region")
        return min(sorted(candidates), key=lambda r: candidates[r])


def route_user_traffic(
    pops: List[EdgePresence], unavailable_regions: Set[str] = frozenset()
) -> Dict[str, str]:
    """DNS-style mapping of each POP to its best available region.

    When a region is drained or disconnected, its POPs fail over to
    the next-closest region at a latency cost — the user-facing
    equivalent of the capacity-loss story.
    """
    return {
        pop.name: pop.closest_region(exclude=unavailable_regions)
        for pop in pops
    }
