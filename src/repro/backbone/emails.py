"""Vendor notification e-mails (section 4.3.2).

When a vendor starts repairing a link (or performing maintenance),
Facebook is notified via a *structured* e-mail carrying the logical ID
of the fiber link, the physical location of the affected circuits, the
starting time, and the estimated duration; a second e-mail confirms
completion.  The e-mails are automatically parsed and stored in a
database.  This module defines that structured format and the parser
feeding :mod:`repro.backbone.tickets`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

_REQUIRED_HEADERS = ("Notification-Type", "Link-Id", "Vendor", "Event-Time-H")
_NOTIFICATION_TYPES = ("REPAIR_START", "REPAIR_COMPLETE",
                       "MAINTENANCE_START", "MAINTENANCE_COMPLETE")


class EmailParseError(ValueError):
    """A vendor e-mail failed structured parsing."""


@dataclass(frozen=True)
class VendorEmail:
    """A parsed vendor notification."""

    notification_type: str
    link_id: str
    vendor: str
    event_time_h: float
    location: str = ""
    estimated_duration_h: Optional[float] = None
    #: The vendor's work-order reference.  When present, completion
    #: notifications are matched to starts by reference, which lets a
    #: link carry overlapping work items (a cut during a maintenance
    #: window) without ambiguity.
    ticket_ref: Optional[str] = None

    @property
    def is_start(self) -> bool:
        return self.notification_type.endswith("_START")

    @property
    def is_completion(self) -> bool:
        return self.notification_type.endswith("_COMPLETE")

    @property
    def is_maintenance(self) -> bool:
        return self.notification_type.startswith("MAINTENANCE")


def format_start_email(
    link_id: str,
    vendor: str,
    event_time_h: float,
    location: str = "",
    estimated_duration_h: Optional[float] = None,
    maintenance: bool = False,
    ticket_ref: Optional[str] = None,
) -> str:
    """Render the structured start notification a vendor sends."""
    kind = "MAINTENANCE_START" if maintenance else "REPAIR_START"
    lines = [
        f"Notification-Type: {kind}",
        f"Link-Id: {link_id}",
        f"Vendor: {vendor}",
        f"Event-Time-H: {event_time_h:.4f}",
    ]
    if ticket_ref:
        lines.append(f"Ticket-Ref: {ticket_ref}")
    if location:
        lines.append(f"Location: {location}")
    if estimated_duration_h is not None:
        lines.append(f"Estimated-Duration-H: {estimated_duration_h:.4f}")
    lines.append("")
    lines.append(f"{vendor} is working on fiber link {link_id}.")
    return "\n".join(lines)


def format_completion_email(
    link_id: str,
    vendor: str,
    event_time_h: float,
    maintenance: bool = False,
    ticket_ref: Optional[str] = None,
) -> str:
    """Render the completion confirmation."""
    kind = "MAINTENANCE_COMPLETE" if maintenance else "REPAIR_COMPLETE"
    lines = [
        f"Notification-Type: {kind}",
        f"Link-Id: {link_id}",
        f"Vendor: {vendor}",
        f"Event-Time-H: {event_time_h:.4f}",
    ]
    if ticket_ref:
        lines.append(f"Ticket-Ref: {ticket_ref}")
    lines.append("")
    lines.append(f"{vendor} has completed work on fiber link {link_id}.")
    return "\n".join(lines)


def parse_vendor_email(raw: str) -> VendorEmail:
    """Parse a structured vendor notification.

    Headers precede a blank line; the free-text body after it is
    ignored, as the production parser ignores it.
    """
    headers: Dict[str, str] = {}
    for line in raw.splitlines():
        if not line.strip():
            break
        if ":" not in line:
            raise EmailParseError(f"malformed header line {line!r}")
        key, value = line.split(":", 1)
        headers[key.strip()] = value.strip()

    missing = [h for h in _REQUIRED_HEADERS if h not in headers]
    if missing:
        raise EmailParseError(f"missing required headers: {missing}")

    kind = headers["Notification-Type"]
    if kind not in _NOTIFICATION_TYPES:
        raise EmailParseError(f"unknown notification type {kind!r}")

    try:
        event_time_h = float(headers["Event-Time-H"])
    except ValueError:
        raise EmailParseError(
            f"non-numeric Event-Time-H {headers['Event-Time-H']!r}"
        ) from None
    if event_time_h < 0:
        raise EmailParseError("Event-Time-H precedes the study epoch")

    estimated: Optional[float] = None
    if "Estimated-Duration-H" in headers:
        try:
            estimated = float(headers["Estimated-Duration-H"])
        except ValueError:
            raise EmailParseError("non-numeric Estimated-Duration-H") from None
        if estimated < 0:
            raise EmailParseError("negative Estimated-Duration-H")

    return VendorEmail(
        notification_type=kind,
        link_id=headers["Link-Id"],
        vendor=headers["Vendor"],
        event_time_h=event_time_h,
        location=headers.get("Location", ""),
        estimated_duration_h=estimated,
        ticket_ref=headers.get("Ticket-Ref"),
    )
