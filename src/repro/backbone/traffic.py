"""Backbone traffic engineering (sections 3.2 and 6.1).

Two consumers of the reliability data are modeled:

* **Rerouting** — "the more common results of fiber cuts are the loss
  of capacity from edges to regions or between two regions.  In this
  case, we have to reroute the traffic using other available links,
  which could increase end-to-end latency" (section 3.2).
  :class:`TrafficEngineer` computes the reroute and its latency cost.
* **Conditional risk** — "at Facebook, we use these models in capacity
  planning to calculate conditional risk, the likelihood of edge or
  link being unavailable given a set of failures.  We plan edge and
  link capacity to tolerate the 99.99th percentile of conditional
  risk" (section 6.1).  :func:`conditional_risk` and
  :meth:`TrafficEngineer.plan_capacity` implement that planner over
  the fitted MTBF/MTTR models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import networkx as nx

from repro.stats.expfit import ExponentialModel
from repro.topology.backbone import BackboneTopology


@dataclass(frozen=True)
class RerouteResult:
    """Outcome of rerouting a demand around failed links."""

    source: str
    destination: str
    connected: bool
    baseline_hops: int
    rerouted_hops: int
    capacity_gbps: float

    @property
    def latency_stretch(self) -> float:
        """Hop-count stretch of the reroute (>= 1.0 when connected)."""
        if not self.connected:
            return float("inf")
        if self.baseline_hops == 0:
            return 1.0
        return self.rerouted_hops / self.baseline_hops


@dataclass(frozen=True)
class CapacityPlan:
    """Provisioning recommendation for one edge."""

    edge: str
    unavailability: float
    survives_target: bool
    recommended_links: int


def steady_state_unavailability(mtbf_h: float, mttr_h: float) -> float:
    """Long-run fraction of time an entity is down.

    The standard alternating-renewal result: U = MTTR / (MTBF + MTTR).
    """
    if mtbf_h <= 0 or mttr_h < 0:
        raise ValueError("MTBF must be positive and MTTR non-negative")
    return mttr_h / (mtbf_h + mttr_h)


def conditional_risk(
    link_unavailabilities: Sequence[float],
    already_failed: int = 0,
) -> float:
    """Probability that *all remaining* links are down, given failures.

    With ``already_failed`` of the listed links known to be down, the
    conditional probability that the rest are simultaneously down (the
    edge-severing event) is the product of the remaining
    unavailabilities.  Links are treated as independent, which is the
    planner's conservative-by-construction assumption for links that
    do not share conduits.
    """
    if already_failed < 0 or already_failed > len(link_unavailabilities):
        raise ValueError("already_failed outside [0, number of links]")
    for u in link_unavailabilities:
        if not 0.0 <= u <= 1.0:
            raise ValueError(f"unavailability {u} outside [0, 1]")
    remaining = sorted(link_unavailabilities, reverse=True)[already_failed:]
    risk = 1.0
    for u in remaining:
        risk *= u
    return risk


class TrafficEngineer:
    """Centralized traffic engineering over the backbone topology."""

    def __init__(self, topology: BackboneTopology) -> None:
        self._topology = topology

    # -- rerouting ---------------------------------------------------------

    def reroute(
        self,
        source: str,
        destination: str,
        failed_links: Iterable[str],
        demand_gbps: float = 0.0,
    ) -> RerouteResult:
        """Shortest-path reroute around failed links.

        ``capacity_gbps`` in the result is the max-flow capacity still
        available between the endpoints; a demand above it is a loss
        of capacity even though connectivity survives.
        """
        failed = set(failed_links)
        baseline = self._topology.graph()
        degraded = self._topology.graph(failed)
        if source not in baseline or destination not in baseline:
            raise KeyError(f"unknown edge: {source!r} or {destination!r}")

        baseline_hops = nx.shortest_path_length(baseline, source, destination)
        if not nx.has_path(degraded, source, destination):
            return RerouteResult(source, destination, False,
                                 baseline_hops, -1, 0.0)
        rerouted_hops = nx.shortest_path_length(degraded, source, destination)
        capacity = self._max_flow(degraded, source, destination)
        return RerouteResult(
            source, destination, True, baseline_hops, rerouted_hops, capacity
        )

    @staticmethod
    def _max_flow(graph: nx.MultiGraph, source: str, destination: str) -> float:
        # Collapse parallel links into one edge of summed capacity for
        # the flow computation.
        simple = nx.Graph()
        simple.add_nodes_from(graph.nodes)
        for a, b, data in graph.edges(data=True):
            cap = data.get("capacity", 0.0)
            if simple.has_edge(a, b):
                simple[a][b]["capacity"] += cap
            else:
                simple.add_edge(a, b, capacity=cap)
        value, _ = nx.maximum_flow(simple, source, destination,
                                   capacity="capacity")
        return float(value)

    def capacity_loss(
        self, source: str, destination: str, failed_links: Iterable[str]
    ) -> float:
        """Fraction of capacity lost between two edges under failures."""
        healthy = self._max_flow(self._topology.graph(), source, destination)
        if healthy == 0:
            raise ValueError(f"no baseline capacity {source!r}->{destination!r}")
        degraded = self._max_flow(
            self._topology.graph(failed_links), source, destination
        )
        return 1.0 - degraded / healthy

    # -- conditional-risk capacity planning ----------------------------------

    def plan_capacity(
        self,
        edge: str,
        mtbf_model: ExponentialModel,
        mttr_model: ExponentialModel,
        percentile: float = 0.9999,
        link_percentile: float = 0.5,
        max_links: int = 16,
    ) -> CapacityPlan:
        """Provision links so the edge tolerates the target risk.

        Each link's unavailability is derived from the fitted models
        at ``link_percentile`` (the planner's median link); links are
        added until the probability of the edge-severing event drops
        below ``1 - percentile`` (the paper plans to the 99.99th
        percentile of conditional risk).
        """
        if not 0.0 < percentile < 1.0:
            raise ValueError("percentile must be in (0, 1)")
        mtbf = mtbf_model.predict(link_percentile)
        mttr = mttr_model.predict(link_percentile)
        u = steady_state_unavailability(mtbf, mttr)
        target = 1.0 - percentile

        current = len(self._topology.links_of_edge(edge))
        links = max(current, 1)
        while conditional_risk([u] * links) > target and links < max_links:
            links += 1
        risk = conditional_risk([u] * links)
        return CapacityPlan(
            edge=edge,
            unavailability=risk,
            survives_target=risk <= target,
            recommended_links=links,
        )

    # -- partition audit -----------------------------------------------------

    def partition_report(
        self, failed_links: Iterable[str]
    ) -> Tuple[bool, List[set]]:
        """Whether the backbone is partitioned and its components.

        Section 3.2: catastrophic partitions that disconnect data
        centers are what careful planning avoids.
        """
        components = self._topology.partitions(failed_links)
        return len(components) > 1, components
