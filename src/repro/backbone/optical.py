"""The optical layer beneath fiber links (section 3.2).

"Each end-to-end fiber link is embodied by optical circuits that
consist of multiple optical segments.  An optical segment corresponds
to a fiber and carries multiple channels, where each channel
corresponds to a different wavelength mapped to a specific router
port."

This module makes that abstraction concrete: circuits assembled from
segments, wavelength channels mapped to router ports, and failure
propagation — a cut segment takes down every channel riding it, and a
link is down when no channel survives end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.topology.backbone import FiberLink, OpticalSegment

#: ITU-grid-style wavelengths, in nanometres (a small C-band slice).
_BASE_WAVELENGTH_NM = 1530.0
_WAVELENGTH_STEP_NM = 0.8


@dataclass(frozen=True)
class Channel:
    """One wavelength on a circuit, mapped to a router port."""

    index: int
    wavelength_nm: float
    a_port: str
    b_port: str

    def __post_init__(self) -> None:
        if self.wavelength_nm <= 0:
            raise ValueError("wavelength must be positive")


@dataclass
class OpticalCircuit:
    """An end-to-end circuit: ordered segments carrying channels."""

    circuit_id: str
    link_id: str
    segments: List[OpticalSegment]
    channels: List[Channel] = field(default_factory=list)
    cut_segments: Set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError(
                f"circuit {self.circuit_id!r} needs at least one segment"
            )

    @property
    def length_km(self) -> float:
        return sum(s.length_km for s in self.segments)

    @property
    def intact(self) -> bool:
        """A circuit carries traffic only when every segment is whole."""
        return not self.cut_segments

    def cut(self, segment_id: str) -> None:
        if segment_id not in {s.segment_id for s in self.segments}:
            raise KeyError(
                f"segment {segment_id!r} is not part of circuit "
                f"{self.circuit_id!r}"
            )
        self.cut_segments.add(segment_id)

    def splice(self, segment_id: str) -> None:
        """Repair a cut segment (the vendor's actual field work)."""
        self.cut_segments.discard(segment_id)

    def live_channels(self) -> List[Channel]:
        return list(self.channels) if self.intact else []


def build_circuit(
    link: FiberLink,
    channels: Optional[int] = None,
    circuit_index: int = 0,
) -> OpticalCircuit:
    """Materialize a link's optical circuit with channel/port mapping.

    ``channels`` defaults to the minimum channel count of the link's
    segments (a channel must ride every segment).  Each channel gets
    its own wavelength and a router port at both ends.
    """
    if not link.segments:
        raise ValueError(f"link {link.link_id!r} has no optical segments")
    capacity = min(s.channels for s in link.segments)
    count = capacity if channels is None else channels
    if count < 1:
        raise ValueError("a circuit needs at least one channel")
    if count > capacity:
        raise ValueError(
            f"link {link.link_id!r} segments carry at most {capacity} "
            f"channels; {count} requested"
        )
    circuit = OpticalCircuit(
        circuit_id=f"{link.link_id}/c{circuit_index}",
        link_id=link.link_id,
        segments=list(link.segments),
    )
    for i in range(count):
        circuit.channels.append(Channel(
            index=i,
            wavelength_nm=_BASE_WAVELENGTH_NM + i * _WAVELENGTH_STEP_NM,
            a_port=f"{link.a}:port{i}",
            b_port=f"{link.b}:port{i}",
        ))
    return circuit


@dataclass
class OpticalPlant:
    """All circuits of a backbone, with shared-segment bookkeeping.

    Two circuits can ride the same physical fiber (a shared conduit);
    cutting that segment takes both down — the correlated failure mode
    behind edge-severing events.
    """

    circuits: Dict[str, OpticalCircuit] = field(default_factory=dict)
    _riders: Dict[str, Set[str]] = field(default_factory=dict)

    def add(self, circuit: OpticalCircuit) -> None:
        if circuit.circuit_id in self.circuits:
            raise ValueError(f"duplicate circuit {circuit.circuit_id!r}")
        self.circuits[circuit.circuit_id] = circuit
        for segment in circuit.segments:
            self._riders.setdefault(segment.segment_id, set()).add(
                circuit.circuit_id
            )

    def circuits_on_segment(self, segment_id: str) -> List[OpticalCircuit]:
        return [
            self.circuits[cid]
            for cid in sorted(self._riders.get(segment_id, ()))
        ]

    def cut_segment(self, segment_id: str) -> List[str]:
        """Cut one fiber; returns every link that lost its circuit."""
        affected = self.circuits_on_segment(segment_id)
        if not affected:
            raise KeyError(f"no circuit rides segment {segment_id!r}")
        downed = []
        for circuit in affected:
            was_intact = circuit.intact
            circuit.cut(segment_id)
            if was_intact:
                downed.append(circuit.link_id)
        return sorted(set(downed))

    def splice_segment(self, segment_id: str) -> List[str]:
        """Repair one fiber; returns links whose circuit came back."""
        restored = []
        for circuit in self.circuits_on_segment(segment_id):
            circuit.splice(segment_id)
            if circuit.intact:
                restored.append(circuit.link_id)
        return sorted(set(restored))

    def down_links(self) -> List[str]:
        return sorted({
            c.link_id for c in self.circuits.values() if not c.intact
        })

    def shared_risk_groups(self, min_size: int = 2) -> Dict[str, List[str]]:
        """Segments carrying multiple circuits: the SRLGs planners fear."""
        return {
            segment_id: sorted(
                self.circuits[cid].link_id for cid in riders
            )
            for segment_id, riders in sorted(self._riders.items())
            if len(riders) >= min_size
        }
