"""Vendor scorecards (section 6.2's operational consumer).

"Backbone link vendors exhibit a wide degree of variance in failure
rates ... this problem makes the task of planning and maintaining
network connectivity and capacity a key challenge."  The scorecard
turns the measured per-vendor reliability into the artifact a capacity
planner actually uses: a graded comparison, and a ranked shortlist for
the next link purchase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.backbone.monitor import BackboneMonitor
from repro.stats.intervals import OutageInterval
from repro.stats.mtbf import mtbf_from_intervals
from repro.stats.mttr import mean_time_to_recovery


@dataclass(frozen=True)
class VendorScorecard:
    """One vendor's measured record."""

    vendor: str
    tickets: int
    mtbf_h: float
    mttr_h: float
    grade: str

    @property
    def availability(self) -> float:
        """Long-run fraction of time a typical link of the vendor is up."""
        return self.mtbf_h / (self.mtbf_h + self.mttr_h)


#: Grade boundaries on measured MTBF hours.  Anchored to the published
#: spread: the best vendors run five digits, the flaky outlier runs
#: single digits (section 6.2).
_GRADE_FLOORS = (("A", 3000.0), ("B", 1200.0), ("C", 400.0), ("D", 50.0))


def _grade(mtbf_h: float) -> str:
    for grade, floor in _GRADE_FLOORS:
        if mtbf_h >= floor:
            return grade
    return "F"


def scorecards_from_outages(
    outages_by_vendor: Dict[str, List[OutageInterval]],
    window_h: float,
    min_tickets: int = 1,
) -> Dict[str, VendorScorecard]:
    """Scorecards from a pre-derived per-vendor outage view.

    The pure finalizer behind :func:`vendor_scorecards`, shared with
    the fold states of :mod:`repro.runtime` so batch, streaming, and
    sharded execution grade vendors identically.  Per-vendor interval
    lists must be chronologically sorted.
    """
    if window_h <= 0:
        raise ValueError("window must be positive")
    cards = {}
    for vendor, intervals in outages_by_vendor.items():
        if len(intervals) < min_tickets:
            continue
        mtbf = mtbf_from_intervals(intervals, window_h)
        mttr = mean_time_to_recovery(intervals)
        cards[vendor] = VendorScorecard(
            vendor=vendor,
            tickets=len(intervals),
            mtbf_h=mtbf,
            mttr_h=mttr,
            grade=_grade(mtbf),
        )
    return cards


def vendor_scorecards(
    monitor: BackboneMonitor, window_h: float,
    min_tickets: int = 1,
) -> Dict[str, VendorScorecard]:
    """Score every vendor with at least ``min_tickets`` tickets."""
    return scorecards_from_outages(
        monitor.outages_by_vendor(), window_h, min_tickets=min_tickets
    )


def shortlist(
    cards: Dict[str, VendorScorecard],
    k: int = 5,
    max_mttr_h: Optional[float] = None,
) -> List[VendorScorecard]:
    """The top-k vendors for the next link purchase.

    Ranked by measured availability (which folds MTBF and MTTR into
    one number), optionally excluding slow repairers outright — an
    edge on a remote island cares more about MTTR than MTBF.
    """
    if k < 1:
        raise ValueError("shortlist needs k >= 1")
    candidates = [
        c for c in cards.values()
        if max_mttr_h is None or c.mttr_h <= max_mttr_h
    ]
    ranked = sorted(
        candidates, key=lambda c: (-c.availability, c.vendor)
    )
    return ranked[:k]


def grade_distribution(
    cards: Dict[str, VendorScorecard]
) -> Dict[str, int]:
    """How many vendors land in each grade band."""
    out: Dict[str, int] = {}
    for card in cards.values():
        out[card.grade] = out.get(card.grade, 0) + 1
    return out
