"""Inter data center (backbone) operational substrate.

Section 4.3.2: fiber vendors notify Facebook by structured e-mail when
they start and finish repairing a link; the e-mails are automatically
parsed and stored in a database, and the study measures MTBF/MTTR of
fiber links and edges from that database.  This package reproduces the
pipeline end to end: the vendor model, the e-mail format and parser,
the ticket database, the monitor that derives link and edge outages,
and the traffic-engineering layer that consumes reliability models for
rerouting and conditional-risk capacity planning.
"""

from repro.backbone.vendors import FiberVendor, VendorDirectory
from repro.backbone.emails import (
    EmailParseError,
    VendorEmail,
    format_completion_email,
    format_start_email,
    parse_vendor_email,
)
from repro.backbone.tickets import RepairTicket, TicketDatabase, TicketType
from repro.backbone.monitor import (
    BackboneMonitor,
    EdgeFailure,
    LinkOutage,
    failures_from_link_outages,
)
from repro.backbone.optical import (
    Channel,
    OpticalCircuit,
    OpticalPlant,
    build_circuit,
)
from repro.backbone.scorecards import (
    VendorScorecard,
    grade_distribution,
    scorecards_from_outages,
    shortlist,
    vendor_scorecards,
)
from repro.backbone.planes import (
    PLANE_COUNT,
    CapacityExhausted,
    CrossDCDemand,
    EdgePresence,
    Plane,
    PlanedBackbone,
    route_user_traffic,
)
from repro.backbone.traffic import (
    CapacityPlan,
    RerouteResult,
    TrafficEngineer,
    conditional_risk,
)

__all__ = [
    "BackboneMonitor",
    "CapacityExhausted",
    "CapacityPlan",
    "Channel",
    "CrossDCDemand",
    "EdgeFailure",
    "EdgePresence",
    "EmailParseError",
    "FiberVendor",
    "LinkOutage",
    "OpticalCircuit",
    "OpticalPlant",
    "PLANE_COUNT",
    "Plane",
    "PlanedBackbone",
    "RepairTicket",
    "RerouteResult",
    "TicketDatabase",
    "TicketType",
    "TrafficEngineer",
    "VendorDirectory",
    "VendorScorecard",
    "VendorEmail",
    "build_circuit",
    "conditional_risk",
    "failures_from_link_outages",
    "format_completion_email",
    "format_start_email",
    "grade_distribution",
    "parse_vendor_email",
    "route_user_traffic",
    "scorecards_from_outages",
    "shortlist",
    "vendor_scorecards",
]
