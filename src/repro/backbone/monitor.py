"""Backbone health monitoring (sections 4.3.2 and 6).

Facebook "has extensive monitoring systems that check the health of
every fiber link".  The monitor derives, from the ticket database:

* **link outages** — one per completed ticket;
* **edge failures** — the intervals during which *all* of an edge's
  links are simultaneously down ("when all of an edge's links fail,
  the edge fails", section 6).

Both feed the section 6 reliability analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.backbone.tickets import TicketDatabase
from repro.stats.intervals import OutageInterval, intersect_all, merge_intervals
from repro.topology.backbone import BackboneTopology


@dataclass(frozen=True)
class LinkOutage:
    """One observed link outage."""

    link_id: str
    vendor: str
    interval: OutageInterval


@dataclass(frozen=True)
class EdgeFailure:
    """One observed edge failure (all links down simultaneously)."""

    edge: str
    interval: OutageInterval


def failures_from_link_outages(
    topology: BackboneTopology,
    outages_by_link: Dict[str, List[OutageInterval]],
) -> Dict[str, List[OutageInterval]]:
    """Edge failure intervals from pre-merged per-link outages.

    The section 6 rule — an edge fails only while *every* one of its
    links is down — as a pure function over the per-link view, so the
    monitor and the fold-state finalizers of :mod:`repro.runtime` run
    the identical derivation.  Per-edge intervals come back sorted;
    edges that never fail are absent.
    """
    failures: Dict[str, List[OutageInterval]] = {}
    for edge_name in topology.edges:
        links = topology.links_of_edge(edge_name)
        if not links:
            continue
        interval_sets = []
        complete = True
        for link in links:
            outages = outages_by_link.get(link.link_id)
            if not outages:
                # A link with no outage at all keeps the edge up.
                complete = False
                break
            interval_sets.append(outages)
        if not complete:
            continue
        intervals = sorted(
            interval
            for interval in intersect_all(interval_sets)
            if interval.duration_h > 0
        )
        if intervals:
            failures[edge_name] = intervals
    return failures


class BackboneMonitor:
    """Derives outages and failures from tickets over a topology."""

    def __init__(self, topology: BackboneTopology, tickets: TicketDatabase) -> None:
        self._topology = topology
        self._tickets = tickets

    @property
    def topology(self) -> BackboneTopology:
        return self._topology

    @property
    def tickets(self) -> TicketDatabase:
        return self._tickets

    # -- link level ------------------------------------------------------

    def link_outages(self) -> List[LinkOutage]:
        return [
            LinkOutage(t.link_id, t.vendor, t.interval())
            for t in self._tickets.completed()
        ]

    def outages_by_link(self) -> Dict[str, List[OutageInterval]]:
        out: Dict[str, List[OutageInterval]] = {}
        for outage in self.link_outages():
            out.setdefault(outage.link_id, []).append(outage.interval)
        return {link: merge_intervals(iv) for link, iv in out.items()}

    def outages_by_vendor(self) -> Dict[str, List[OutageInterval]]:
        """Outage intervals of the links each vendor operates.

        Vendor MTBF/MTTR (section 6.2) are computed over this pooled
        per-vendor event stream; overlapping tickets on *different*
        links are distinct failures, so no merging happens here.
        """
        out: Dict[str, List[OutageInterval]] = {}
        for outage in self.link_outages():
            out.setdefault(outage.vendor, []).append(outage.interval)
        return {v: sorted(iv) for v, iv in out.items()}

    def link_is_down(self, link_id: str, at_h: float) -> bool:
        for interval in self.outages_by_link().get(link_id, []):
            if interval.start_h <= at_h < interval.end_h:
                return True
        return False

    # -- edge level --------------------------------------------------------

    def edge_failures(self) -> List[EdgeFailure]:
        """Edge failures: intervals when every link of the edge is down.

        Edges with no link outages (or whose links never all overlap)
        produce no failures — path diversity absorbed the events.
        """
        failures = [
            EdgeFailure(edge_name, interval)
            for edge_name, intervals in self.failures_by_edge().items()
            for interval in intervals
        ]
        return sorted(failures, key=lambda f: (f.edge, f.interval))

    def failures_by_edge(self) -> Dict[str, List[OutageInterval]]:
        return failures_from_link_outages(
            self._topology, self.outages_by_link()
        )

    def edge_is_up(self, edge: str, at_h: float) -> bool:
        for interval in self.failures_by_edge().get(edge, []):
            if interval.start_h <= at_h < interval.end_h:
                return False
        return True

    # -- fleet summaries ---------------------------------------------------

    def availability(self, link_id: str, window_h: float) -> float:
        """Fraction of the window the link was up."""
        if window_h <= 0:
            raise ValueError("window must be positive")
        down = sum(
            i.duration_h for i in self.outages_by_link().get(link_id, [])
        )
        return max(0.0, 1.0 - down / window_h)
