"""Fiber vendor model (section 6.2).

Each fiber link is operated by a third-party vendor; vendor link
reliability varies by orders of magnitude (the least reliable vendor's
links fail on average once every 2 hours, the most reliable once every
11,721 hours), and anecdotally vendors in high-competition markets are
more reliable.  The directory assigns each synthetic vendor a market
profile that the backbone simulator turns into failure/repair rates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional


class MarketCompetition(enum.Enum):
    """How contested the vendor's fiber market is (section 6.2)."""

    HIGH = "high"
    MEDIUM = "medium"
    LOW = "low"


@dataclass(frozen=True)
class FiberVendor:
    """A fiber vendor and its reliability profile.

    ``mtbf_h``/``mttr_h`` are the vendor's *target* mean time between
    link failures and mean repair time; the simulator draws actual
    events around them, and the analysis pipeline re-estimates them
    from tickets (Figures 17 and 18).
    """

    name: str
    mtbf_h: float
    mttr_h: float
    competition: MarketCompetition = MarketCompetition.MEDIUM
    home_market: str = ""

    def __post_init__(self) -> None:
        if self.mtbf_h <= 0 or self.mttr_h <= 0:
            raise ValueError(
                f"vendor {self.name!r} needs positive MTBF/MTTR targets"
            )


class VendorDirectory:
    """The set of vendors whose links form the backbone."""

    def __init__(self, vendors: Optional[List[FiberVendor]] = None) -> None:
        self._vendors: Dict[str, FiberVendor] = {}
        for vendor in vendors or []:
            self.add(vendor)

    def add(self, vendor: FiberVendor) -> None:
        if vendor.name in self._vendors:
            raise ValueError(f"duplicate vendor {vendor.name!r}")
        self._vendors[vendor.name] = vendor

    def get(self, name: str) -> FiberVendor:
        try:
            return self._vendors[name]
        except KeyError:
            raise KeyError(f"unknown fiber vendor {name!r}") from None

    def __len__(self) -> int:
        return len(self._vendors)

    def __iter__(self) -> Iterator[FiberVendor]:
        return iter(sorted(self._vendors.values(), key=lambda v: v.name))

    def __contains__(self, name: str) -> bool:
        return name in self._vendors

    def names(self) -> List[str]:
        return sorted(self._vendors)

    def most_reliable(self) -> FiberVendor:
        return max(self._vendors.values(), key=lambda v: v.mtbf_h)

    def least_reliable(self) -> FiberVendor:
        return min(self._vendors.values(), key=lambda v: v.mtbf_h)
