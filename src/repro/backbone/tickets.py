"""Repair ticket database (section 4.3.2).

Parsed vendor e-mails are stored in a database for later analysis; the
eighteen-month study window of that database is the inter data center
dataset.  A ticket pairs a start notification with its completion
notification for one fiber link.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.backbone.emails import VendorEmail
from repro.stats.intervals import OutageInterval


class TicketType(enum.Enum):
    """Unplanned repair (fiber cut) or planned maintenance."""

    REPAIR = "repair"
    MAINTENANCE = "maintenance"


@dataclass
class RepairTicket:
    """One vendor work item on one fiber link."""

    ticket_id: str
    link_id: str
    vendor: str
    ticket_type: TicketType
    started_at_h: float
    completed_at_h: Optional[float] = None
    location: str = ""
    estimated_duration_h: Optional[float] = None

    @property
    def open(self) -> bool:
        return self.completed_at_h is None

    @property
    def duration_h(self) -> float:
        if self.completed_at_h is None:
            raise ValueError(f"ticket {self.ticket_id!r} is still open")
        return self.completed_at_h - self.started_at_h

    def interval(self) -> OutageInterval:
        """The link outage interval this ticket describes."""
        if self.completed_at_h is None:
            raise ValueError(f"ticket {self.ticket_id!r} is still open")
        return OutageInterval(self.started_at_h, self.completed_at_h)


class TicketDatabase:
    """Ingests vendor e-mails and stores completed tickets."""

    def __init__(self) -> None:
        self._tickets: List[RepairTicket] = []
        self._open_by_link: Dict[str, RepairTicket] = {}
        self._open_by_ref: Dict[str, RepairTicket] = {}
        self._seq = 0

    # -- ingestion -----------------------------------------------------

    def ingest(self, email: VendorEmail) -> RepairTicket:
        """Apply one parsed notification to the database.

        A start notification opens a ticket; the matching completion
        closes it.  Notifications carrying a ``Ticket-Ref`` are paired
        by reference, which permits overlapping work items on one link
        (a cut during a maintenance window).  Without a reference the
        pairing is by link, and a second concurrent start for the same
        link is rejected as ambiguous — the production pipeline
        reconciles pairs the same way.
        """
        if email.is_start:
            if email.ticket_ref is None and email.link_id in self._open_by_link:
                raise ValueError(
                    f"link {email.link_id!r} already has an open ticket "
                    "and the notification carries no Ticket-Ref"
                )
            if email.ticket_ref is not None and email.ticket_ref in self._open_by_ref:
                raise ValueError(
                    f"duplicate start for ticket ref {email.ticket_ref!r}"
                )
            ticket = RepairTicket(
                ticket_id=email.ticket_ref or f"fib-{self._seq:06d}",
                link_id=email.link_id,
                vendor=email.vendor,
                ticket_type=(
                    TicketType.MAINTENANCE
                    if email.is_maintenance
                    else TicketType.REPAIR
                ),
                started_at_h=email.event_time_h,
                location=email.location,
                estimated_duration_h=email.estimated_duration_h,
            )
            self._seq += 1
            self._tickets.append(ticket)
            if email.ticket_ref is not None:
                self._open_by_ref[email.ticket_ref] = ticket
            else:
                self._open_by_link[email.link_id] = ticket
            return ticket

        if email.ticket_ref is not None:
            ticket = self._open_by_ref.pop(email.ticket_ref, None)
            if ticket is None:
                raise ValueError(
                    f"completion for unknown ticket ref {email.ticket_ref!r}"
                )
            if ticket.link_id != email.link_id:
                self._open_by_ref[email.ticket_ref] = ticket
                raise ValueError(
                    f"ticket ref {email.ticket_ref!r} belongs to link "
                    f"{ticket.link_id!r}, not {email.link_id!r}"
                )
        else:
            ticket = self._open_by_link.pop(email.link_id, None)
            if ticket is None:
                raise ValueError(
                    f"completion for link {email.link_id!r} without an "
                    "open ticket"
                )
        if email.event_time_h < ticket.started_at_h:
            if email.ticket_ref is not None:
                self._open_by_ref[email.ticket_ref] = ticket
            else:
                self._open_by_link[email.link_id] = ticket
            raise ValueError(
                f"completion at {email.event_time_h} precedes start "
                f"{ticket.started_at_h} for link {email.link_id!r}"
            )
        ticket.completed_at_h = email.event_time_h
        return ticket

    # -- direct insertion (for the simulator) ---------------------------

    def add_completed(
        self,
        link_id: str,
        vendor: str,
        started_at_h: float,
        completed_at_h: float,
        ticket_type: TicketType = TicketType.REPAIR,
        location: str = "",
    ) -> RepairTicket:
        if completed_at_h < started_at_h:
            raise ValueError("ticket completes before it starts")
        ticket = RepairTicket(
            ticket_id=f"fib-{self._seq:06d}",
            link_id=link_id,
            vendor=vendor,
            ticket_type=ticket_type,
            started_at_h=started_at_h,
            completed_at_h=completed_at_h,
            location=location,
        )
        self._seq += 1
        self._tickets.append(ticket)
        return ticket

    def add_ticket(self, ticket: RepairTicket) -> RepairTicket:
        """Insert a completed ticket, preserving its original id.

        The re-materialization path (a partitioned store, an import
        that must round-trip) — unlike :meth:`add_completed`, the
        caller owns the id, so digests that sort on ticket ids cannot
        shift across a store round trip.
        """
        if ticket.open:
            raise ValueError(
                f"ticket {ticket.ticket_id!r} is still open; "
                "only completed tickets can be added directly"
            )
        self._tickets.append(ticket)
        self._seq += 1
        return ticket

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tickets)

    def __iter__(self) -> Iterator[RepairTicket]:
        return iter(self._tickets)

    def completed(self) -> List[RepairTicket]:
        return [t for t in self._tickets if not t.open]

    def open_tickets(self) -> List[RepairTicket]:
        return (list(self._open_by_link.values())
                + list(self._open_by_ref.values()))

    def for_link(self, link_id: str) -> List[RepairTicket]:
        return [t for t in self._tickets if t.link_id == link_id]

    def for_vendor(self, vendor: str) -> List[RepairTicket]:
        return [t for t in self._tickets if t.vendor == vendor]

    def vendors(self) -> List[str]:
        return sorted({t.vendor for t in self._tickets})

    def links(self) -> List[str]:
        return sorted({t.link_id for t in self._tickets})

    def in_window(self, start_h: float, end_h: float) -> List[RepairTicket]:
        """Completed tickets whose outage starts inside the window."""
        return [
            t
            for t in self.completed()
            if start_h <= t.started_at_h < end_h
        ]
