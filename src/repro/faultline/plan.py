"""Deterministic, seedable fault plans.

A :class:`FaultPlan` decides, site by site and draw by draw, whether a
named injection point fires.  Every decision comes from a per-site
RNG derived from ``(seed, site)`` alone, so a failure run is
replayable from its seed: the same workload under the same plan makes
the same draws in the same order and fires the same faults.  Fired
events are recorded in :attr:`FaultPlan.log`, and
:meth:`FaultPlan.log_digest` hashes the log so two runs can be
compared with one string.

The injection *sites* are the runtime's hot failure surfaces
(:data:`SITES`); the instrumented production modules consult the
active plan through :mod:`repro.faultline.hooks`, which is a no-op
when no plan is active.  This layer injects *component* faults into
the analytics runtime; topology-level device failures are the job of
:mod:`repro.drtest`.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "SITES",
    "CheckpointKilled",
    "ColumnFoldCrash",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "FaultToleranceError",
    "FaultlineError",
    "GridCellCrash",
    "InjectedFault",
    "JobWorkerCrash",
    "PartitionLost",
    "ShardWorkerCrash",
    "SurvivabilitySweepCrash",
]

#: Every named injection point, with the layer it lives in.
SITES = (
    # repro.io JSONL readers: the line is torn before it is parsed.
    "io.jsonl.line",
    # ResultCache.lookup: the on-disk pickle is torn before the read.
    "cache.lookup",
    # ResultCache.store: the write tears mid-pickle; nothing published.
    "cache.store",
    # stream.checkpoint.save_checkpoint: killed between the tmp write
    # and the atomic rename.
    "checkpoint.save",
    # SEVStore write batches: transient sqlite3.OperationalError.
    "store.insert",
    # runtime.executor sharded backend: a shard worker crashes.
    "executor.shard",
    # runtime.executor columnar backend: a column-batch fold raises
    # mid-batch; the executor falls back to the per-row reference
    # fold over the batch's records.
    "runtime.fold",
    # serve.jobs worker threads: a job crashes mid-execution.
    "serve.worker",
    # serve.jobs checkpoint: the jobs.json write tears mid-JSON;
    # nothing is published, the previous checkpoint survives.
    "serve.checkpoint",
    # repro.storage partition reads: the shard file vanishes (a lost
    # disk, an interrupted rsync) and the read raises PartitionLost.
    "storage.shard",
    # repro.storage manifest saves: the manifest.json write tears
    # mid-JSON, leaving a checksum-failing file behind.
    "storage.manifest",
    # repro.scenarios grid runner: one lattice cell crashes before its
    # result is produced; the runner retries it from a fresh
    # simulation.
    "grid.cell",
    # repro.survivability trial generation: one (design, trial) sweep
    # crashes before its records are produced; the generator retries
    # that trial once under suppression.
    "survivability.sweep",
)


class FaultlineError(RuntimeError):
    """Base class for everything repro.faultline raises."""


class InjectedFault(FaultlineError):
    """A simulated component failure raised at an injection site."""


class CheckpointKilled(InjectedFault):
    """Simulated process kill between checkpoint tmp-write and rename."""


class ShardWorkerCrash(InjectedFault):
    """Simulated crash of one shard worker in the sharded backend."""


class JobWorkerCrash(InjectedFault):
    """Simulated crash of one job-queue worker in repro.serve."""


class ColumnFoldCrash(InjectedFault):
    """Simulated failure of one columnar batch fold mid-batch."""


class GridCellCrash(InjectedFault):
    """Simulated crash of one what-if grid cell mid-execution."""


class SurvivabilitySweepCrash(InjectedFault):
    """Simulated crash of one survivability trial sweep mid-trial."""


class PartitionLost(InjectedFault):
    """Simulated loss of one partition shard in a tiered store.

    Carries the ``(year, region)`` key of the lost partition so the
    recovery path (:meth:`repro.storage.PartitionedSEVStore.restore`)
    knows which rows to re-ingest.
    """

    def __init__(self, message: str, key=None) -> None:
        super().__init__(message)
        self.key = key


class FaultToleranceError(FaultlineError):
    """The differential oracle's typed failure.

    Raised when backends diverge under an active fault plan, or when a
    backend dies on an injected fault its recovery path should have
    absorbed — never silently.
    """


@dataclass(frozen=True)
class FaultSpec:
    """How one site misbehaves.

    ``probability`` is the per-draw fire chance; ``max_fires`` bounds
    the total number of injections (``None`` = unbounded); ``skip``
    lets the first N draws through untouched, which pins a fault to a
    chosen point in the workload (e.g. "kill the *second* checkpoint
    save").
    """

    site: str
    probability: float = 1.0
    max_fires: Optional[int] = None
    skip: int = 0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; expected one of {SITES}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError("max_fires must be non-negative")
        if self.skip < 0:
            raise ValueError("skip must be non-negative")


@dataclass(frozen=True)
class FaultEvent:
    """One fired injection: which site, on which of its draws."""

    site: str
    draw: int


class FaultPlan:
    """Seeded decisions for a set of fault sites.

    Determinism contract: each site owns an RNG seeded by
    ``(seed, site)``, advanced only by that site's eligible draws, so
    a site's decision sequence depends on nothing but the plan seed
    and how often the workload reaches that site — never on what other
    sites did.
    """

    def __init__(self, seed: int, specs: Iterable[FaultSpec]) -> None:
        self.seed = seed
        self._specs: Dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.site in self._specs:
                raise ValueError(f"duplicate spec for site {spec.site!r}")
            self._specs[spec.site] = spec
        self._rngs = {
            site: random.Random(f"faultline:{seed}:{site}")
            for site in self._specs
        }
        self._draws: Dict[str, int] = {site: 0 for site in self._specs}
        self._fired: Dict[str, int] = {site: 0 for site in self._specs}
        self._suppressed: Dict[str, int] = {}
        #: Every fired injection, in firing order.
        self.log: List[FaultEvent] = []

    @classmethod
    def default(
        cls,
        seed: int,
        sites: Optional[Sequence[str]] = None,
        probability: float = 0.25,
        max_fires: Optional[int] = 3,
    ) -> "FaultPlan":
        """A plan covering ``sites`` (default: all) uniformly."""
        chosen = tuple(sites) if sites is not None else SITES
        return cls(seed, [
            FaultSpec(site, probability=probability, max_fires=max_fires)
            for site in chosen
        ])

    @property
    def sites(self) -> List[str]:
        return sorted(self._specs)

    def should_fire(self, site: str) -> bool:
        """One draw at ``site``; True means the fault fires now."""
        spec = self._specs.get(site)
        if spec is None or self._suppressed.get(site, 0) > 0:
            return False
        draw = self._draws[site]
        self._draws[site] = draw + 1
        if draw < spec.skip:
            return False
        if spec.max_fires is not None and self._fired[site] >= spec.max_fires:
            return False
        fired = self._rngs[site].random() < spec.probability
        if fired:
            self._fired[site] += 1
            self.log.append(FaultEvent(site, draw))
        return fired

    def suppress(self, site: str) -> None:
        """Disable a site (re-entrant); recovery fallbacks use this so
        a retried code path cannot be re-broken by its own fault."""
        self._suppressed[site] = self._suppressed.get(site, 0) + 1

    def unsuppress(self, site: str) -> None:
        count = self._suppressed.get(site, 0)
        if count <= 0:
            raise ValueError(f"site {site!r} is not suppressed")
        self._suppressed[site] = count - 1

    def fired(self, site: Optional[str] = None) -> int:
        """How many injections fired (at one site, or overall)."""
        if site is not None:
            return self._fired.get(site, 0)
        return len(self.log)

    def draws(self, site: str) -> int:
        return self._draws.get(site, 0)

    def log_digest(self) -> str:
        """SHA-256 over the ordered fault log; equal digests mean two
        runs fired exactly the same faults at the same points."""
        payload = "\n".join(f"{e.site}:{e.draw}" for e in self.log)
        return hashlib.sha256(payload.encode()).hexdigest()

    def summary(self) -> dict:
        """JSON-able description of the plan and what it did."""
        return {
            "seed": self.seed,
            "specs": [
                {
                    "site": spec.site,
                    "probability": spec.probability,
                    "max_fires": spec.max_fires,
                    "skip": spec.skip,
                }
                for _, spec in sorted(self._specs.items())
            ],
            "fired": {site: self._fired[site] for site in sorted(self._specs)
                      if self._fired[site]},
            "log": [{"site": e.site, "draw": e.draw} for e in self.log],
            "log_digest": self.log_digest(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FaultPlan seed={self.seed} sites={self.sites} "
                f"fired={len(self.log)}>")
