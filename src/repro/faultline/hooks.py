"""The injection-point registry the production modules consult.

Instrumented code calls :func:`fire` with a site name at each failure
surface; with no active plan that is one global read and a ``None``
check, so production paths pay nothing.  Activating a
:class:`~repro.faultline.plan.FaultPlan` — normally through the
:func:`injected` context manager — routes every draw to the plan's
seeded, per-site RNG.

This module deliberately imports nothing from the runtime, so any
layer (io, store, cache, executor, checkpoint) can depend on it
without cycles.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.faultline.plan import FaultPlan

__all__ = [
    "activate",
    "active_plan",
    "deactivate",
    "fire",
    "injected",
    "suppressed",
    "torn",
]

_ACTIVE: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    """The currently injected plan, or ``None``."""
    return _ACTIVE


def activate(plan: FaultPlan) -> None:
    """Install ``plan`` as the active plan (one at a time)."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a fault plan is already active")
    _ACTIVE = plan


def deactivate() -> None:
    """Remove the active plan (idempotent)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def injected(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Activate ``plan`` for the duration of the block.

    ``None`` is accepted and means "no injection", so callers can
    thread an optional plan without branching.
    """
    if plan is None:
        yield None
        return
    activate(plan)
    try:
        yield plan
    finally:
        deactivate()


def fire(site: str) -> bool:
    """One draw at ``site`` against the active plan (False when none)."""
    plan = _ACTIVE
    return plan is not None and plan.should_fire(site)


@contextmanager
def suppressed(site: str) -> Iterator[None]:
    """Disable ``site`` for the block — how recovery fallbacks keep an
    injected fault from re-breaking the very path that repairs it."""
    plan = _ACTIVE
    if plan is None:
        yield
        return
    plan.suppress(site)
    try:
        yield
    finally:
        plan.unsuppress(site)


def torn(text: str) -> str:
    """Deterministically tear a line: keep a proper prefix.

    The canonical torn-write artifact — a process died mid-line — and
    deterministic in the input, so replays tear identically.
    """
    return text[: max(1, len(text) // 2)]
