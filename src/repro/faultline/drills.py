"""The ``python -m repro chaos`` drill suite.

Nine drills, each aimed at one hardened failure surface, all driven by
one seed so a failed run replays exactly:

``differential``
    the oracle (:mod:`repro.faultline.oracle`): every backend must
    reproduce the fault-free baseline bit-identically while the cache
    and shard-worker fault sites fire;
``checkpoint``
    kill a cadenced checkpoint save mid-write, resume from the last
    good snapshot, and demand the resumed aggregates equal an
    uninterrupted run's;
``jsonl``
    tear JSONL lines on the way in and demand the tolerant reader
    account for every line — yielded plus skipped equals total — while
    a strict reader under the identical plan refuses loudly;
``ingest``
    inject transient SQLite errors into the bulk-load path and demand
    bounded-backoff retries land every row — and that unbounded faults
    give up cleanly instead of spinning;
``serve_jobs``
    crash :mod:`repro.serve` job workers and tear the job-queue
    checkpoint, then restart the queue over the same data dir and
    demand every artifact match the fault-free run bit for bit;
``storage``
    delete a partition shard mid-scan (``storage.shard``) and tear the
    manifest mid-save (``storage.manifest``), then demand the typed
    recovery paths — ``restore`` from the source corpus, ``recover``
    rescanning the shards — converge back to the fault-free report
    digest;
``columnar``
    make column-batch folds raise mid-batch (``runtime.fold``) and
    demand the columnar backend fall back to the per-row reference
    fold — suppressed and counted — with the report digest unchanged
    from the fault-free run;
``grid``
    crash what-if grid cells mid-execution (``grid.cell``) and demand
    the grid runner's retry-then-suppress recovery re-run each
    crashed cell from a fresh simulation — counted — with the grid
    summary digest unchanged from the fault-free sweep;
``survivability``
    crash correlated-failure trial sweeps mid-trial
    (``survivability.sweep``) and demand the generator's re-draw
    recovery rebuild each crashed sweep from its seeded RNG —
    counted — with the survivability report digest unchanged from the
    fault-free run.

The suite returns a JSON-able fault report that is *deterministic in
the seed*: no timestamps, no host paths — two runs with the same seed
produce byte-identical reports, which is itself one of the
``repro.verify`` anchors.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import tempfile
from pathlib import Path
from typing import List, Optional, Sequence

from repro.faultline import hooks
from repro.faultline.plan import (
    SITES,
    CheckpointKilled,
    FaultPlan,
    FaultSpec,
    FaultToleranceError,
    PartitionLost,
)

__all__ = ["REPORT_FORMAT", "chaos_suite", "report_json"]

REPORT_FORMAT = "repro.faultline-report/1"


def _selected(sites: Optional[Sequence[str]],
              *wanted: str) -> List[str]:
    """The subset of ``wanted`` sites the caller enabled."""
    if sites is None:
        return list(wanted)
    return [site for site in wanted if site in sites]


def _differential_drill(seed: int, quick: bool,
                        sites: Optional[Sequence[str]]) -> dict:
    from repro.faultline.oracle import run_differential

    active = _selected(
        sites, "cache.lookup", "cache.store", "executor.shard",
    )
    plan = FaultPlan(seed, [
        FaultSpec(site, probability=0.5, max_fires=4) for site in active
    ])
    detail: dict = {"sites": active}
    with tempfile.TemporaryDirectory() as tmp:
        try:
            report = run_differential(
                seed=seed,
                scale=0.25,
                plan=plan,
                jobs=4,
                use_processes=not quick,
                cache_dir=Path(tmp) / "cache",
            )
        except FaultToleranceError as exc:
            detail["error"] = str(exc)
            detail["fault_log"] = plan.summary()["log"]
            return {"name": "differential", "passed": False,
                    "detail": detail}
    detail.update(report.summary())
    return {"name": "differential", "passed": report.identical,
            "detail": detail}


def _checkpoint_drill(seed: int, quick: bool,
                      sites: Optional[Sequence[str]]) -> dict:
    from repro.simulation.scenarios import paper_scenario
    from repro.stream import StreamEngine, live_feed

    scenario = paper_scenario(seed=seed, scale=0.1 if quick else 0.25)
    one_shot = StreamEngine()
    one_shot.run(live_feed(scenario))
    total = one_shot.events_ingested
    cadence = max(1, total // 7)

    active = _selected(sites, "checkpoint.save")
    # skip=1 guarantees one good snapshot exists before a kill can
    # land, so resume always has something to come back to.
    plan = FaultPlan(seed, [
        FaultSpec(site, probability=0.5, max_fires=1, skip=1)
        for site in active
    ])
    crashed = False
    with tempfile.TemporaryDirectory() as tmp:
        snapshot = Path(tmp) / "chaos.ckpt.json"
        engine = StreamEngine(
            checkpoint_path=snapshot, checkpoint_every=cadence,
        )
        with hooks.injected(plan):
            try:
                engine.run(live_feed(scenario))
            except CheckpointKilled:
                crashed = True
            # Recovery: re-attach to the last good snapshot (or start
            # fresh if the kill landed before any publish) and replay;
            # max_fires is spent, so the retry cannot be re-killed.
            resumed = StreamEngine.resume_or_fresh(
                snapshot, checkpoint_every=cadence,
            )
            resumed.run(live_feed(scenario))
    final = resumed.aggregates.digest()
    expected = one_shot.aggregates.digest()
    detail = {
        "sites": active,
        "events": total,
        "checkpoint_every": cadence,
        "faults_fired": plan.fired(),
        "crashed": crashed,
        "uninterrupted_digest": expected,
        "resumed_digest": final,
        "fault_log_digest": plan.log_digest(),
    }
    return {"name": "checkpoint", "passed": final == expected,
            "detail": detail}


def _jsonl_drill(seed: int, quick: bool,
                 sites: Optional[Sequence[str]]) -> dict:
    from repro.io import ReadErrors, export_sevs_jsonl, iter_sevs_jsonl
    from repro.simulation.generator import IntraSimulator
    from repro.simulation.scenarios import paper_scenario

    scenario = paper_scenario(seed=seed, scale=0.05)
    store = IntraSimulator(scenario).run()
    active = _selected(sites, "io.jsonl.line")

    def line_plan() -> FaultPlan:
        return FaultPlan(seed, [
            FaultSpec(site, probability=0.1) for site in active
        ])

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "chaos.jsonl"
        total = export_sevs_jsonl(store, path)

        tolerant_plan = line_plan()
        errors = ReadErrors()
        with hooks.injected(tolerant_plan):
            survivors = sum(
                1 for _ in iter_sevs_jsonl(path, strict=False, errors=errors)
            )

        # The identical plan must fire identically — and a strict read
        # must then refuse at the first torn line.
        strict_raised = False
        if tolerant_plan.fired():
            try:
                with hooks.injected(line_plan()):
                    for _ in iter_sevs_jsonl(path, strict=True):
                        pass
            except ValueError:
                strict_raised = True

    accounted = survivors + errors.skipped == total
    passed = accounted and (strict_raised or not tolerant_plan.fired())
    detail = {
        "sites": active,
        "lines": total,
        "faults_fired": tolerant_plan.fired(),
        "survivors": survivors,
        "skipped": errors.skipped,
        "accounted": accounted,
        "strict_raised": strict_raised,
        "fault_log_digest": tolerant_plan.log_digest(),
    }
    return {"name": "jsonl", "passed": passed, "detail": detail}


def _ingest_drill(seed: int, quick: bool,
                  sites: Optional[Sequence[str]]) -> dict:
    from repro.incidents.store import SEVStore
    from repro.simulation.generator import iter_scenario_reports
    from repro.simulation.scenarios import paper_scenario

    scenario = paper_scenario(seed=seed, scale=0.05)
    reports = list(iter_scenario_reports(scenario))
    active = _selected(sites, "store.insert")

    # Transient faults: two injected failures, bounded backoff rides
    # them out, every row lands.
    transient = FaultPlan(seed, [
        FaultSpec(site, probability=1.0, max_fires=2) for site in active
    ])
    with hooks.injected(transient), SEVStore() as store:
        loaded = store.bulk_load(reports, batch_size=50)
        recovered = loaded == len(reports) and len(store) == len(reports)

    # Unbounded faults: every attempt fails; the retry loop must give
    # up with the underlying OperationalError, not spin or swallow.
    gave_up = True
    if active:
        hopeless = FaultPlan(seed, [
            FaultSpec(site, probability=1.0) for site in active
        ])
        with hooks.injected(hopeless), SEVStore() as store:
            try:
                store.insert_many(reports[:5])
                gave_up = False
            except sqlite3.OperationalError:
                gave_up = True

    detail = {
        "sites": active,
        "rows": len(reports),
        "faults_fired": transient.fired(),
        "recovered": recovered,
        "bounded_retries_give_up": gave_up,
    }
    return {"name": "ingest", "passed": recovered and gave_up,
            "detail": detail}


def _serve_jobs_drill(seed: int, quick: bool,
                      sites: Optional[Sequence[str]]) -> dict:
    """Crash job workers and tear job checkpoints; artifacts must not care.

    A fault-free :class:`~repro.serve.jobs.JobQueue` run fixes the
    expected artifact digests.  The same jobs then run under a plan
    firing ``serve.worker`` (worker crashes mid-job) and
    ``serve.checkpoint`` (the jobs.json write tears); afterwards a
    *fresh* queue is attached to the same data dir — the restart after
    a kill — and must resume whatever the torn checkpoints failed to
    record.  The drill passes when every job ends ``done`` with an
    artifact digest bit-identical to the fault-free run's.
    """
    from repro.serve.jobs import JobQueue

    scale = 0.05 if quick else 0.1
    job_specs = [
        ("report", {"study": "intra", "seed": seed, "scale": scale}),
        ("report", {"study": "intra", "seed": seed + 1, "scale": scale}),
    ]
    active = _selected(sites, "serve.worker", "serve.checkpoint")

    def run_queue(data_dir, start_started=True):
        queue = JobQueue(data_dir, workers=2)
        jobs = [queue.submit(kind, params) for kind, params in job_specs]
        queue.start()
        completed = queue.join(timeout=300)
        queue.stop()
        return queue, jobs, completed

    with tempfile.TemporaryDirectory() as clean_dir, \
            tempfile.TemporaryDirectory() as faulty_dir:
        baseline_queue, baseline_jobs, baseline_done = run_queue(clean_dir)
        expected = [
            baseline_queue.get(job.id).artifact_digest
            for job in baseline_jobs
        ]

        plan = FaultPlan(seed, [
            FaultSpec(site, probability=0.5, max_fires=2) for site in active
        ])
        with hooks.injected(plan):
            _, faulty_jobs, _ = run_queue(faulty_dir)

        # The restart: a fresh queue over the same data dir picks up
        # whatever the torn checkpoints left unrecorded and re-runs it.
        recovery = JobQueue(faulty_dir, workers=2)
        recovery.start()
        recovered = recovery.join(timeout=300)
        recovery.stop()
        final = [recovery.get(job.id) for job in faulty_jobs]
        statuses = [job.status for job in final]
        digests = [job.artifact_digest for job in final]

    matched = digests == expected
    passed = (baseline_done and recovered and matched
              and all(status == "done" for status in statuses))
    detail = {
        "sites": active,
        "jobs": len(job_specs),
        "faults_fired": plan.fired(),
        "fired_per_site": {site: plan.fired(site) for site in active},
        "statuses": statuses,
        "digests_match_fault_free": matched,
        "artifact_digests": expected,
        "fault_log_digest": plan.log_digest(),
    }
    return {"name": "serve_jobs", "passed": passed, "detail": detail}


def _storage_drill(seed: int, quick: bool,
                   sites: Optional[Sequence[str]]) -> dict:
    """Lose a shard, tear the manifest; reports must not change.

    A fault-free partitioned store fixes the expected stream-report
    digest.  Then two recoveries, each from genuine damage:

    * ``storage.shard`` deletes a partition file mid-scan and raises
      :class:`PartitionLost`; ``restore`` re-ingests that partition's
      rows from the source corpus and must reproduce the manifest's
      recorded digest before publishing;
    * ``storage.manifest`` tears the manifest save mid-JSON; reopening
      must refuse with a typed ``ManifestError`` and ``recover`` must
      rebuild the catalog by rescanning the shards.

    After each recovery the full report digest must equal the
    fault-free baseline bit for bit.
    """
    from repro.runtime import RunContext, run_intra_report
    from repro.simulation.generator import IntraSimulator
    from repro.simulation.scenarios import paper_scenario
    from repro.storage import ManifestError, PartitionedSEVStore

    from repro.faultline.oracle import report_digest

    scenario = paper_scenario(seed=seed, scale=0.05)
    mono = IntraSimulator(scenario).run()
    reports = list(mono.all_reports())
    active = _selected(sites, "storage.shard", "storage.manifest")

    def digest_of(store) -> str:
        report = run_intra_report(
            RunContext(store=store, fleet=scenario.fleet,
                       corpus_seed=seed),
            backend="stream",
        )
        return report_digest(report)

    detail: dict = {"sites": active, "rows": len(reports)}
    with tempfile.TemporaryDirectory() as tmp:
        store = PartitionedSEVStore.init(Path(tmp) / "sev")
        store.ingest(reports)
        # Cold partitions participate too: the oldest year compresses.
        store.compact(keep_hot_years=len(store.years()) - 1
                      if len(store.years()) > 1 else 1)
        baseline = digest_of(store)
        detail["partitions"] = len(store.manifest)
        detail["baseline_digest"] = baseline

        # -- shard loss: the file is really deleted mid-scan ---------
        shard_plan = FaultPlan(seed, [
            FaultSpec(site, probability=1.0, max_fires=1)
            for site in _selected(active, "storage.shard")
        ])
        lost_key = None
        crashed = False
        with hooks.injected(shard_plan):
            try:
                digest_of(store)
            except PartitionLost as exc:
                crashed = True
                lost_key = exc.key
                store.restore(exc.key, iter(reports))
        after_restore = digest_of(store)
        shard_converged = after_restore == baseline
        detail["shard"] = {
            "faults_fired": shard_plan.fired(),
            "crashed": crashed,
            "lost_partition": list(lost_key) if lost_key else None,
            "converged": shard_converged,
            "fault_log_digest": shard_plan.log_digest(),
        }

        # -- torn manifest: the save leaves a checksum-failing file --
        manifest_plan = FaultPlan(seed, [
            FaultSpec(site, probability=1.0, max_fires=1)
            for site in _selected(active, "storage.manifest")
        ])
        torn = False
        refused = False
        with hooks.injected(manifest_plan):
            store.manifest.save(store.root)
        if manifest_plan.fired():
            torn = True
            try:
                PartitionedSEVStore.open(store.root)
            except ManifestError:
                refused = True
        recovered = PartitionedSEVStore.recover(store.root)
        after_recover = digest_of(recovered)
        manifest_converged = (
            after_recover == baseline
            and len(recovered) == len(reports)
        )
        detail["manifest"] = {
            "faults_fired": manifest_plan.fired(),
            "torn": torn,
            "typed_refusal": refused,
            "converged": manifest_converged,
            "fault_log_digest": manifest_plan.log_digest(),
        }

    passed = (
        shard_converged
        and manifest_converged
        and (refused or not torn)
        and (crashed or not shard_plan.fired())
    )
    detail["faults_fired"] = shard_plan.fired() + manifest_plan.fired()
    return {"name": "storage", "passed": passed, "detail": detail}


def _columnar_drill(seed: int, quick: bool,
                    sites: Optional[Sequence[str]]) -> dict:
    """Break columnar folds mid-batch; digests must not move.

    A fault-free run fixes the stream and columnar report digests
    (already provably equal).  The same corpus then re-runs on the
    columnar backend under a plan firing ``runtime.fold`` — each fire
    makes one ``fold_batch`` raise, which must drop that batch to the
    per-row reference fold, suppressed and counted.  The drill passes
    when the faulted report digest equals the fault-free baseline and
    the executor's fallback count equals the number of fired faults.
    """
    from repro.core.reports import IntraStudyReport
    from repro.faultline.oracle import report_digest
    from repro.runtime import RunContext, run_intra_report
    from repro.runtime.analyses import intra_report_analyses
    from repro.runtime.executor import Executor
    from repro.simulation.generator import IntraSimulator
    from repro.simulation.scenarios import paper_scenario

    scenario = paper_scenario(seed=seed, scale=0.05)
    store = IntraSimulator(scenario).run()
    context = RunContext(store=store, fleet=scenario.fleet,
                         corpus_seed=seed)
    active = _selected(sites, "runtime.fold")

    stream_digest = report_digest(
        run_intra_report(context, backend="stream")
    )
    baseline = report_digest(
        run_intra_report(context, backend="columnar")
    )

    plan = FaultPlan(seed, [
        FaultSpec(site, probability=1.0, max_fires=2) for site in active
    ])
    executor = Executor(backend="columnar")
    with hooks.injected(plan):
        results = executor.run(intra_report_analyses(), context)
    severity = results["severity_by_device"]
    faulted = report_digest(IntraStudyReport(
        root_causes=results["root_causes"],
        rates=results["incident_rates"],
        severity=severity,
        severity_over_time=results["severity_over_time"],
        distribution=results["distribution"],
        designs=results["design_comparison"],
        switches=results["switch_reliability"],
        growth=results["growth"],
        last_year=severity.year,
    ))

    converged = faulted == baseline == stream_digest
    accounted = executor.columnar_fallbacks == plan.fired()
    detail = {
        "sites": active,
        "rows": len(store),
        "faults_fired": plan.fired(),
        "fallbacks": executor.columnar_fallbacks,
        "fallbacks_match_fires": accounted,
        "baseline_digest": baseline,
        "faulted_digest": faulted,
        "converged": converged,
        "fault_log_digest": plan.log_digest(),
    }
    return {"name": "columnar", "passed": converged and accounted,
            "detail": detail}


def _grid_drill(seed: int, quick: bool,
                sites: Optional[Sequence[str]]) -> dict:
    """Crash grid cells; the summary digest must not move.

    A fault-free sweep of a tiny lattice fixes the summary digest.
    The same lattice then re-runs under a plan firing ``grid.cell``
    with certainty twice: the first cell crashes, is retried, crashes
    again, and finally re-runs with the site suppressed — exercising
    both halves of the recovery contract.  The drill passes when the
    faulted sweep's summary digest equals the fault-free baseline and
    the runner's retry count equals the number of fired faults.
    """
    from repro.scenarios import GridRunner, GridSpec, preset

    active = _selected(sites, "grid.cell")
    base = preset("paper").with_updates(seed=seed, scale=0.05)
    grid = GridSpec(base=base, axes={"fabric_year": [2015, 2016]})

    baseline = GridRunner(backend="stream").run(grid)

    plan = FaultPlan(seed, [
        FaultSpec(site, probability=1.0, max_fires=2) for site in active
    ])
    runner = GridRunner(backend="stream")
    with hooks.injected(plan):
        faulted = runner.run(grid)

    converged = (faulted["summary_digest"] == baseline["summary_digest"])
    accounted = runner.cell_retries == plan.fired()
    detail = {
        "sites": active,
        "cells": grid.cell_count(),
        "faults_fired": plan.fired(),
        "cell_retries": runner.cell_retries,
        "retries_match_fires": accounted,
        "baseline_digest": baseline["summary_digest"],
        "faulted_digest": faulted["summary_digest"],
        "converged": converged,
        "fault_log_digest": plan.log_digest(),
    }
    return {"name": "grid", "passed": converged and accounted,
            "detail": detail}


def _survivability_drill(seed: int, quick: bool,
                         sites: Optional[Sequence[str]]) -> dict:
    """Crash survivability sweeps; the report digest must not move.

    A fault-free run over a reduced trial corpus fixes the report
    digest.  The same corpus then regenerates under a plan firing
    ``survivability.sweep`` with certainty twice: each design's sweep
    crashes mid-trial and is retried with the site suppressed.  The
    drill passes when the faulted corpus's report digest equals the
    fault-free baseline and the generator's retry count equals the
    number of fired faults — a crashed sweep is re-drawn from the same
    seeded RNG, never resumed from a half-built trial.
    """
    from repro.faultline.oracle import report_digest
    from repro.runtime import RunContext
    from repro.survivability import generate_trials, run_survivability_report

    active = _selected(sites, "survivability.sweep")
    knobs = {"trials": 4 if quick else 8}

    def run(trials):
        context = RunContext(trials=trials, corpus_seed=seed)
        return report_digest(
            run_survivability_report(context, backend="stream")
        )

    baseline_trials = generate_trials(seed=seed, correlated=knobs)
    baseline = run(baseline_trials)

    plan = FaultPlan(seed, [
        FaultSpec(site, probability=1.0, max_fires=2) for site in active
    ])
    with hooks.injected(plan):
        faulted_trials = generate_trials(seed=seed, correlated=knobs)
    faulted = run(faulted_trials)

    converged = faulted == baseline
    accounted = faulted_trials.retries == plan.fired()
    detail = {
        "sites": active,
        "rows": len(faulted_trials),
        "faults_fired": plan.fired(),
        "sweep_retries": faulted_trials.retries,
        "retries_match_fires": accounted,
        "baseline_digest": baseline,
        "faulted_digest": faulted,
        "converged": converged,
        "fault_log_digest": plan.log_digest(),
    }
    return {"name": "survivability", "passed": converged and accounted,
            "detail": detail}


def chaos_suite(
    seed: int = 7,
    quick: bool = False,
    sites: Optional[Sequence[str]] = None,
) -> dict:
    """Run every drill; returns the (deterministic) fault report."""
    if sites is not None:
        unknown = sorted(set(sites) - set(SITES))
        if unknown:
            raise ValueError(
                f"unknown fault sites {unknown}; expected among {SITES}"
            )
    drills = [
        _differential_drill(seed, quick, sites),
        _checkpoint_drill(seed, quick, sites),
        _jsonl_drill(seed, quick, sites),
        _ingest_drill(seed, quick, sites),
        _serve_jobs_drill(seed, quick, sites),
        _storage_drill(seed, quick, sites),
        _columnar_drill(seed, quick, sites),
        _grid_drill(seed, quick, sites),
        _survivability_drill(seed, quick, sites),
    ]
    report = {
        "format": REPORT_FORMAT,
        "seed": seed,
        "quick": quick,
        "sites": list(sites) if sites is not None else list(SITES),
        "drills": drills,
        "passed": all(d["passed"] for d in drills),
    }
    report["report_digest"] = hashlib.sha256(
        json.dumps(report, sort_keys=True).encode()
    ).hexdigest()
    return report


def report_json(report: dict) -> str:
    """The canonical serialization of a fault report."""
    return json.dumps(report, indent=1, sort_keys=True)
