"""The differential-testing oracle.

The runtime's core correctness claim is that every backend — batch,
stream, sharded (serial or process-parallel) — answers the same
analysis set bit-identically.  The oracle re-asserts that claim *under
an active fault plan*: it computes a fault-free baseline report, then
runs every backend with injection enabled and demands each one either
reproduce the baseline exactly (the recovery paths absorbed every
fault) or die with a typed :class:`FaultToleranceError` — never a
silently different answer, never a raw injected exception leaking
through a path that claims to tolerate it.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.faultline import hooks
from repro.faultline.plan import (
    FaultPlan,
    FaultToleranceError,
    InjectedFault,
)

__all__ = [
    "BackendRun",
    "OracleReport",
    "report_digest",
    "run_differential",
]


def _canonical(obj) -> str:
    """A canonical rendering under which ``a == b`` implies equal text.

    Dataclass equality ignores dict insertion order (the batch backend
    builds its counts in SQL-result order, the fold backends in record
    order), so a plain ``repr`` distinguishes reports that compare
    equal.  Canonicalization sorts dict items and set members, renders
    dataclasses field by field, and round-trips floats through
    ``repr`` — bitwise-different values stay different.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        body = ",".join(
            f"{f.name}={_canonical(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"{type(obj).__name__}({body})"
    if isinstance(obj, dict):
        items = sorted(
            (_canonical(k), _canonical(v)) for k, v in obj.items()
        )
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(_canonical(x) for x in obj) + "]"
    if isinstance(obj, (set, frozenset)):
        return "{" + ",".join(sorted(_canonical(x) for x in obj)) + "}"
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    return repr(obj)


def report_digest(report) -> str:
    """A stable content hash of a report dataclass.

    Equal reports — on any backend, in any process — digest equally;
    any bitwise difference in any field digests differently.
    """
    return hashlib.sha256(_canonical(report).encode()).hexdigest()


@dataclass(frozen=True)
class BackendRun:
    """One backend's answer under the plan."""

    backend: str
    digest: str
    use_processes: bool = False

    @property
    def label(self) -> str:
        if self.backend == "sharded" and self.use_processes:
            return "sharded+processes"
        return self.backend


@dataclass
class OracleReport:
    """What the oracle observed: all identical, provably."""

    seed: int
    scale: float
    baseline_digest: str
    runs: List[BackendRun] = field(default_factory=list)
    fault_log_digest: str = ""
    faults_fired: int = 0

    @property
    def identical(self) -> bool:
        return all(r.digest == self.baseline_digest for r in self.runs)

    def summary(self) -> dict:
        """JSON-able record for the chaos fault report."""
        return {
            "seed": self.seed,
            "scale": self.scale,
            "baseline_digest": self.baseline_digest,
            "runs": [
                {"backend": r.label, "digest": r.digest} for r in self.runs
            ],
            "fault_log_digest": self.fault_log_digest,
            "faults_fired": self.faults_fired,
            "identical": self.identical,
        }


def _backend_matrix(use_processes: bool) -> List[Tuple[str, bool]]:
    matrix: List[Tuple[str, bool]] = [
        ("batch", False), ("stream", False), ("sharded", False),
    ]
    if use_processes:
        matrix.append(("sharded", True))
    return matrix


def run_differential(
    seed: int = 1,
    scale: float = 0.25,
    plan: Optional[FaultPlan] = None,
    jobs: int = 4,
    use_processes: bool = False,
    cache_dir=None,
    backends: Optional[Sequence[str]] = None,
) -> OracleReport:
    """Run the intra report on every backend under ``plan``.

    Returns an :class:`OracleReport` whose runs all match the
    fault-free baseline, or raises :class:`FaultToleranceError` — on
    divergence, or on an injected fault escaping a recovery path.
    ``cache_dir`` routes every run through one shared on-disk
    :class:`~repro.runtime.cache.ResultCache`, putting the
    ``cache.store``/``cache.lookup`` fault sites in play.
    """
    from repro.runtime import (
        ResultCache,
        RunContext,
        run_intra_report,
    )
    from repro.simulation.generator import IntraSimulator
    from repro.simulation.scenarios import paper_scenario

    scenario = paper_scenario(seed=seed, scale=scale)
    store = IntraSimulator(scenario).run()
    context = RunContext(
        store=store, fleet=scenario.fleet, corpus_seed=scenario.seed,
    )

    baseline = run_intra_report(context, backend="batch")
    baseline_digest = report_digest(baseline)

    matrix = _backend_matrix(use_processes)
    if backends is not None:
        matrix = [(b, p) for b, p in matrix if b in backends]

    runs: List[BackendRun] = []
    with hooks.injected(plan):
        for backend, processes in matrix:
            # Each run gets a fresh cache *instance* over the shared
            # directory, so disk entries (and their injected tears)
            # actually get read back instead of hitting memory.
            cache = ResultCache(cache_dir) if cache_dir is not None else None
            try:
                report = run_intra_report(
                    context, backend=backend, jobs=jobs, cache=cache,
                    use_processes=processes,
                )
            except InjectedFault as exc:
                raise FaultToleranceError(
                    f"backend {backend!r} died on an injected fault its "
                    f"recovery path should have absorbed: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            runs.append(BackendRun(
                backend, report_digest(report), use_processes=processes,
            ))

    result = OracleReport(
        seed=seed,
        scale=scale,
        baseline_digest=baseline_digest,
        runs=runs,
        fault_log_digest=plan.log_digest() if plan is not None else "",
        faults_fired=plan.fired() if plan is not None else 0,
    )
    if not result.identical:
        divergent = [
            f"{r.label}={r.digest[:12]}" for r in runs
            if r.digest != baseline_digest
        ]
        raise FaultToleranceError(
            "backends diverged under the fault plan: "
            f"baseline={baseline_digest[:12]} vs {', '.join(divergent)} "
            f"(seed={seed}, fault log {result.fault_log_digest[:12]})"
        )
    return result
