"""repro.faultline — deterministic fault injection + differential testing.

Three layers:

:mod:`~repro.faultline.plan`
    :class:`FaultPlan`/:class:`FaultSpec` — seedable, replayable
    decisions about which named injection site fires on which draw,
    with a hashable fault log.
:mod:`~repro.faultline.hooks`
    the registry the instrumented production modules consult (a no-op
    when no plan is active) plus the :func:`~repro.faultline.hooks.injected`
    activation context manager.
:mod:`~repro.faultline.oracle` / :mod:`~repro.faultline.drills`
    the differential-testing oracle (batch == stream == sharded under
    an active plan, or a typed :class:`FaultToleranceError`) and the
    ``python -m repro chaos`` drill suite built on it.

``plan`` and ``hooks`` import only the standard library, so every
runtime layer can depend on them without cycles; the oracle and drills
(which import the runtime) load lazily via module ``__getattr__``.
"""

from repro.faultline.hooks import active_plan, fire, injected, suppressed
from repro.faultline.plan import (
    SITES,
    CheckpointKilled,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    FaultToleranceError,
    FaultlineError,
    GridCellCrash,
    InjectedFault,
    JobWorkerCrash,
    PartitionLost,
    ShardWorkerCrash,
    SurvivabilitySweepCrash,
)

__all__ = [
    "SITES",
    "CheckpointKilled",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "FaultToleranceError",
    "FaultlineError",
    "GridCellCrash",
    "InjectedFault",
    "JobWorkerCrash",
    "OracleReport",
    "PartitionLost",
    "ShardWorkerCrash",
    "SurvivabilitySweepCrash",
    "active_plan",
    "chaos_suite",
    "fire",
    "injected",
    "report_digest",
    "run_differential",
    "suppressed",
]

_LAZY = {
    "OracleReport": "repro.faultline.oracle",
    "report_digest": "repro.faultline.oracle",
    "run_differential": "repro.faultline.oracle",
    "chaos_suite": "repro.faultline.drills",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
