"""Tests for fault injection and disaster recovery drills."""

import pytest

from repro.drtest.drills import DatacenterDrainDrill, StormDrill
from repro.drtest.injector import FaultInjector
from repro.services.catalog import Service, ServiceCatalog, ServiceTier
from repro.services.impact import ImpactKind, ImpactModel
from repro.services.placement import Placement, place_uniform
from repro.topology.devices import DeviceType
from repro.topology.fabric import build_fabric_network
from repro.topology.graph import build_graph


@pytest.fixture()
def world():
    network = build_fabric_network("dc1", "ra", pods=2, racks_per_pod=8,
                                   ssws=4, esws=2, cores=2)
    catalog = ServiceCatalog([
        Service("web", ServiceTier.WEB, replicas=8),
        Service("pet", ServiceTier.MONITORING, replicas=1),
    ])
    placement = place_uniform(catalog, network)
    model = ImpactModel(catalog, placement, build_graph(network))
    return network, catalog, placement, model


class TestFaultInjector:
    def test_single_sweep_covers_fleet(self, world):
        network, _, _, model = world
        injector = FaultInjector(model)
        results = injector.sweep_single(network)
        assert len(results) == len(network.devices)

    def test_sweep_by_type(self, world):
        network, _, _, model = world
        injector = FaultInjector(model)
        results = injector.sweep_single(network, DeviceType.FSW)
        assert len(results) == network.count(DeviceType.FSW)
        assert all(r.survived for r in results)

    def test_unreplicated_service_fails_injection(self, world):
        network, _, placement, model = world
        injector = FaultInjector(model)
        pet_rack = placement.racks_of("pet")[0]
        result = injector.inject([pet_rack])
        assert not result.survived
        assert result.worst_kind is ImpactKind.DOWNTIME

    def test_survival_rate(self, world):
        network, _, _, model = world
        injector = FaultInjector(model)
        injector.sweep_single(network)
        # Only the one rack carrying the unreplicated service can
        # produce downtime.
        assert injector.survival_rate >= 1 - 2 / len(network.devices)

    def test_survival_rate_without_runs(self, world):
        _, _, _, model = world
        with pytest.raises(ValueError):
            _ = FaultInjector(model).survival_rate

    def test_pair_sweep_limited(self, world):
        network, _, _, model = world
        injector = FaultInjector(model)
        results = injector.sweep_pairs(network, DeviceType.FSW, limit=5)
        assert len(results) == 5
        assert all(len(r.failed_devices) == 2 for r in results)

    def test_worst_results_ordering(self, world):
        network, _, placement, model = world
        injector = FaultInjector(model)
        injector.sweep_single(network, DeviceType.RSW)
        worst = injector.worst_results(k=1)[0]
        assert worst.worst_kind in (ImpactKind.DOWNTIME, ImpactKind.RETRIES)

    def test_empty_injection_rejected(self, world):
        _, _, _, model = world
        with pytest.raises(ValueError):
            FaultInjector(model).inject([])


class TestStormDrill:
    def test_small_fsw_storm_passes(self, world):
        network, _, _, model = world
        drill = StormDrill(model, network, seed=1)
        outcome = drill.run(DeviceType.FSW, fraction=0.25)
        assert outcome.passed

    def test_full_rsw_storm_fails(self, world):
        network, _, _, model = world
        drill = StormDrill(model, network, seed=1)
        outcome = drill.run(DeviceType.RSW, fraction=1.0)
        assert not outcome.passed
        assert "web" in outcome.services_down

    def test_fraction_validation(self, world):
        network, _, _, model = world
        drill = StormDrill(model, network)
        with pytest.raises(ValueError):
            drill.run(DeviceType.RSW, fraction=0.0)

    def test_missing_type(self, world):
        network, _, _, model = world
        drill = StormDrill(model, network)
        with pytest.raises(ValueError, match="no csa"):
            drill.run(DeviceType.CSA, fraction=0.5)


class TestDatacenterDrain:
    def make_multi_dc_placement(self):
        catalog = ServiceCatalog([
            Service("spread", ServiceTier.STORAGE, replicas=4,
                    cross_datacenter=True),
            Service("pinned", ServiceTier.WEB, replicas=2),
        ])
        placement = Placement(replica_racks={
            "spread": ["rsw.000.pod0.dc1.ra", "rsw.001.pod0.dc1.ra",
                       "rsw.000.pod0.dc2.ra", "rsw.001.pod0.dc2.ra"],
            "pinned": ["rsw.002.pod0.dc1.ra", "rsw.003.pod0.dc1.ra"],
        })
        return catalog, placement

    def test_drain_spares_spread_services(self):
        catalog, placement = self.make_multi_dc_placement()
        drill = DatacenterDrainDrill(catalog, placement)
        outcome = drill.run("dc2")
        assert outcome.passed
        assert outcome.service_kinds["spread"] is not ImpactKind.DOWNTIME
        assert outcome.service_kinds["pinned"] is ImpactKind.NONE

    def test_drain_finds_pinned_services(self):
        catalog, placement = self.make_multi_dc_placement()
        drill = DatacenterDrainDrill(catalog, placement)
        outcome = drill.run("dc1")
        assert not outcome.passed
        assert outcome.services_down == ["pinned"]

    def test_drain_untouched_datacenter(self):
        catalog, placement = self.make_multi_dc_placement()
        drill = DatacenterDrainDrill(catalog, placement)
        outcome = drill.run("dc9")
        assert outcome.failed_devices == 0
        assert outcome.passed
