"""Tests for MTBF/MTTR estimators."""

import math

import pytest

from repro.stats.intervals import OutageInterval
from repro.stats.mtbf import (
    mean_time_between,
    mtbf_from_intervals,
    mtbi_device_hours,
)
from repro.stats.mttr import mean_time_to_recovery, p75, percentile


class TestMeanTimeBetween:
    def test_regular_events(self):
        assert mean_time_between([0.0, 10.0, 20.0, 30.0]) == pytest.approx(10.0)

    def test_unsorted_input(self):
        assert mean_time_between([20.0, 0.0, 10.0]) == pytest.approx(10.0)

    def test_single_event_uses_window(self):
        assert mean_time_between([5.0], window_h=100.0) == 100.0

    def test_single_event_without_window_raises(self):
        with pytest.raises(ValueError):
            mean_time_between([5.0])

    def test_no_events_raises(self):
        with pytest.raises(ValueError):
            mean_time_between([], window_h=10.0)

    def test_from_intervals_uses_starts(self):
        intervals = [OutageInterval(0, 2), OutageInterval(10, 11)]
        assert mtbf_from_intervals(intervals) == pytest.approx(10.0)


class TestMTBIDeviceHours:
    def test_paper_convention(self):
        # 920 Cores producing 204 incidents in a year: ~39.5k device-hours.
        assert mtbi_device_hours(920, 204) == pytest.approx(39506, rel=1e-3)

    def test_zero_incidents_is_infinite(self):
        assert math.isinf(mtbi_device_hours(100, 0))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mtbi_device_hours(-1, 5)
        with pytest.raises(ValueError):
            mtbi_device_hours(1, -5)


class TestMTTR:
    def test_mean_duration(self):
        intervals = [OutageInterval(0, 4), OutageInterval(10, 12)]
        assert mean_time_to_recovery(intervals) == pytest.approx(3.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_time_to_recovery([])


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 0.5) == 3

    def test_p75_interpolates(self):
        assert p75([0.0, 1.0, 2.0, 3.0]) == pytest.approx(2.25)

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 5.0

    def test_single_value(self):
        assert percentile([7.0], 0.9) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_out_of_range_fraction(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_unsorted_input_ok(self):
        assert percentile([9, 1, 5], 0.5) == 5
