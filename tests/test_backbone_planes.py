"""Tests for the four-plane cross-DC backbone and user traffic routing."""

import pytest

from repro.backbone.planes import (
    PLANE_COUNT,
    CapacityExhausted,
    CrossDCDemand,
    EdgePresence,
    PlanedBackbone,
    route_user_traffic,
)


def demand(name, gbps, src="regionA", dst="regionB"):
    return CrossDCDemand(name=name, source=src, destination=dst, gbps=gbps)


@pytest.fixture()
def backbone():
    return PlanedBackbone(["regionA", "regionB", "regionC"],
                          plane_capacity_gbps=100.0)


class TestConstruction:
    def test_four_planes_by_default(self, backbone):
        assert len(backbone.planes) == PLANE_COUNT == 4

    def test_one_router_per_region_per_plane(self, backbone):
        # "each plane has one backbone router per data center"
        for plane in backbone.planes:
            assert set(plane.routers) == {"regionA", "regionB", "regionC"}
            names = set(plane.routers.values())
            assert len(names) == 3
            assert all(n.startswith("bbr.") for n in names)

    def test_validation(self):
        with pytest.raises(ValueError):
            PlanedBackbone(["only"])
        with pytest.raises(ValueError):
            PlanedBackbone(["a", "b"], planes=0)


class TestDemandValidation:
    def test_same_region_rejected(self):
        with pytest.raises(ValueError, match="one region"):
            demand("x", 10, src="regionA", dst="regionA")

    def test_zero_volume_rejected(self):
        with pytest.raises(ValueError):
            demand("x", 0)


class TestAssignment:
    def test_least_loaded_plane_wins(self, backbone):
        demands = [demand(f"d{i}", 30.0) for i in range(4)]
        assignments = backbone.assign_all(demands)
        # Four equal demands spread across four planes.
        assert sorted(assignments.values()) == [0, 1, 2, 3]

    def test_capacity_respected(self, backbone):
        demands = [demand(f"d{i}", 90.0) for i in range(4)]
        backbone.assign_all(demands)
        with pytest.raises(CapacityExhausted):
            backbone.assign(demand("overflow", 50.0))

    def test_utilization(self, backbone):
        backbone.assign_all([demand("d0", 50.0)])
        util = backbone.utilization()
        assert util[0] == pytest.approx(0.5)
        assert util[1] == 0.0

    def test_duplicate_assignment_rejected(self, backbone):
        backbone.assign(demand("d0", 10.0))
        with pytest.raises(ValueError, match="already assigned"):
            backbone.assign(demand("d0", 10.0))


class TestPlaneFailure:
    def test_failed_plane_not_used(self, backbone):
        backbone.fail_plane(0)
        assignments = backbone.assign_all(
            [demand(f"d{i}", 30.0) for i in range(3)]
        )
        assert 0 not in assignments.values()

    def test_reassignment_drops_excess_bulk(self, backbone):
        demands = [demand(f"d{i}", 80.0) for i in range(4)]
        backbone.assign_all(demands)
        backbone.fail_plane(0)
        backbone.fail_plane(1)
        assignments, dropped = backbone.reassign_after_failures(demands)
        assert len(assignments) == 2
        assert len(dropped) == 2

    def test_restore_plane(self, backbone):
        backbone.fail_plane(2)
        backbone.restore_plane(2)
        assert len(backbone.healthy_planes()) == 4

    def test_surviving_capacity(self, backbone):
        assert backbone.surviving_capacity("regionA", "regionB") == 400.0
        backbone.fail_plane(0)
        assert backbone.surviving_capacity("regionA", "regionB") == 300.0

    def test_unknown_plane(self, backbone):
        with pytest.raises(KeyError):
            backbone.fail_plane(9)


class TestUserTraffic:
    def make_pops(self):
        return [
            EdgePresence("pop-nyc", {"regionA": 10.0, "regionB": 40.0}),
            EdgePresence("pop-ams", {"regionA": 80.0, "regionB": 15.0}),
        ]

    def test_closest_region_wins(self):
        mapping = route_user_traffic(self.make_pops())
        assert mapping == {"pop-nyc": "regionA", "pop-ams": "regionB"}

    def test_failover_on_region_loss(self):
        mapping = route_user_traffic(self.make_pops(),
                                     unavailable_regions={"regionA"})
        assert mapping["pop-nyc"] == "regionB"

    def test_no_reachable_region(self):
        with pytest.raises(ValueError, match="no reachable"):
            route_user_traffic(self.make_pops(),
                               unavailable_regions={"regionA", "regionB"})
